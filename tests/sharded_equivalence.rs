//! Sharded multi-chip execution must compute exactly what the serial
//! engine computes, and its modeled inter-chip traffic must agree with
//! the partitioner's static cut.
//!
//! Three layers of guarantees:
//!
//! * **P = 1 bit-identity** — one chip over a one-slice partition is the
//!   serial engine: identical Property Array *and* identical `Metrics`
//!   (cycles, starvation, fabric counters), on the Twitter stand-in.
//! * **P > 1 result identity** — any chip count yields the serial
//!   Property Array; only the timing model changes.
//! * **Traffic accounting** — over one full-frontier iteration, the
//!   packets carried by the link fabric equal the partitioner's reported
//!   cut-edge count (property-tested across random graphs and chip
//!   counts), and the link delivers every packet it accepts.

use higraph::graph::gen::{erdos_renyi, power_law};
use higraph::graph::slicing::{partition, total_cut_edges};
use higraph::prelude::*;
use proptest::prelude::*;

fn twitter_standin() -> Csr {
    // ÷16 keeps the conflict-heavy shape at integration-test cost.
    Dataset::Twitter.build_scaled(16)
}

#[test]
fn one_chip_is_bit_identical_to_serial_on_twitter() {
    let g = twitter_standin();
    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    let prog = Bfs::from_source(src);
    let serial = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&prog)
        .expect("no stall");
    let sharded = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(1), &g)
        .run(&prog)
        .expect("no stall");
    assert_eq!(sharded.properties, serial.properties);
    assert_eq!(sharded.metrics, serial.metrics, "aggregate == serial");
    assert_eq!(sharded.chips[0], serial.metrics, "chip 0 == serial");
    assert_eq!(sharded.cross_chip_packets, 0);
}

#[test]
fn four_chips_match_serial_results_on_twitter() {
    let g = twitter_standin();
    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    for_programs(&g, src, |name, serial_props, sharded| {
        assert_eq!(sharded.properties, serial_props, "{name}");
        assert!(
            sharded.cross_chip_packets > 0,
            "{name}: 4-way cut is never free"
        );
        assert_eq!(sharded.link.delivered, sharded.link.accepted, "{name}");
    });
}

/// Runs BFS and PR through both engines at P=4 and hands the results to
/// `check`.
fn for_programs<F>(g: &Csr, src: u32, mut check: F)
where
    F: FnMut(&str, Vec<u64>, ShardedRunResult<u64>),
{
    let bfs = Bfs::from_source(src);
    let serial = Engine::new(AcceleratorConfig::higraph(), g)
        .run(&bfs)
        .expect("no stall");
    let sharded = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), g)
        .run(&bfs)
        .expect("no stall");
    check("BFS", serial.properties, sharded);

    let pr = PageRank::new(3);
    let serial = Engine::new(AcceleratorConfig::higraph(), g)
        .run(&pr)
        .expect("no stall");
    let sharded = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), g)
        .run(&pr)
        .expect("no stall");
    check("PR", serial.properties, sharded);
}

#[test]
fn sharded_jobs_match_through_the_batch_runner() {
    let g = power_law(400, 3600, 2.0, 31, 51);
    let make_jobs = || {
        vec![
            BatchJob::new("serial", &g, PageRank::new(4), AcceleratorConfig::higraph()),
            BatchJob::new("p2", &g, PageRank::new(4), AcceleratorConfig::higraph())
                .sharded(ShardConfig::new(2)),
            BatchJob::new("p8", &g, PageRank::new(4), AcceleratorConfig::higraph())
                .sharded(ShardConfig::new(8)),
        ]
    };
    let (par, _) = BatchRunner::parallel().run(make_jobs());
    let (ser, _) = BatchRunner::serial().run(make_jobs());
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(p.properties, s.properties, "{}", p.label);
        assert_eq!(p.metrics, s.metrics, "{}", p.label);
        assert_eq!(p.sharded, s.sharded, "{}", p.label);
    }
    // all three modes agree on the algorithm result
    assert_eq!(par[0].properties, par[1].properties);
    assert_eq!(par[0].properties, par[2].properties);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One full-frontier iteration ships exactly the partitioner's cut:
    /// the link fabric's packet count equals `total_cut_edges`, for any
    /// graph shape and chip count.
    #[test]
    fn cross_shard_packets_equal_cut_edges(
        n in 16u32..200,
        m in 32u64..1600,
        chips in 2usize..9,
        seed in 0u64..50,
    ) {
        let g = erdos_renyi(n, m, 15, seed);
        let cut = total_cut_edges(&partition(&g, chips));
        let mut engine =
            ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(chips), &g);
        prop_assert_eq!(engine.cut_edges(), cut);
        // PageRank's first (and here only) iteration activates every vertex,
        // so each edge is processed exactly once.
        let r = engine.run(&PageRank::new(1)).expect("no stall");
        prop_assert_eq!(r.cross_chip_packets, cut);
        prop_assert_eq!(r.link.accepted, cut);
        prop_assert_eq!(r.link.delivered, cut);
        // and the traversal itself covers every edge exactly once
        prop_assert_eq!(r.metrics.edges_processed, g.num_edges());
    }
}
