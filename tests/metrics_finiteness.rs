//! Degenerate-workload coverage: empty graphs and empty initial
//! frontiers must run to completion on every execution path — serial
//! engine, batch runner, sharded engine — with *finite* metrics and no
//! stall panic, and a mis-sized design point must fail only its own
//! batch entry. The machine-readable report round-trips such runs
//! without emitting `null`.

use higraph::prelude::*;
use higraph::vcpm::programs::Wcc;
use higraph_bench::report::{check_against_baseline, parse_flat_json, Report, DEFAULT_TOLERANCE};

/// Every derived metric quantity, as one vector of floats to audit.
fn derived(m: &Metrics) -> Vec<(&'static str, f64)> {
    vec![
        ("gteps", m.gteps()),
        ("time_ns", m.time_ns()),
        ("speedup_over_self", m.speedup_over(m)),
        ("starvation_per_vpe", m.starvation_per_vpe(32)),
        ("starvation_imbalance", m.starvation_imbalance()),
        ("cache_hit_rate", m.memory.cache_hit_rate()),
        ("row_hit_rate", m.memory.row_hit_rate()),
    ]
}

fn assert_finite(m: &Metrics, context: &str) {
    for (name, value) in derived(m) {
        assert!(value.is_finite(), "{context}: {name} = {value}");
    }
}

fn empty_graph() -> Csr {
    EdgeList::new(0).into_csr()
}

fn edgeless_graph() -> Csr {
    EdgeList::new(8).into_csr()
}

#[test]
fn empty_graph_runs_with_finite_metrics() {
    let g = empty_graph();
    let r = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&Wcc::new())
        .expect("empty graph must not stall");
    assert_eq!(r.metrics.cycles, 0);
    assert_eq!(r.metrics.edges_processed, 0);
    assert_finite(&r.metrics, "empty graph");
}

#[test]
fn empty_frontier_runs_with_finite_metrics() {
    let g = edgeless_graph();
    // out-of-range source → empty initial frontier, zero iterations
    let r = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&Bfs::from_source(9_999))
        .expect("empty frontier must not stall");
    assert_eq!(r.metrics.iterations, 0);
    assert_eq!(r.metrics.cycles, 0);
    assert_finite(&r.metrics, "empty frontier");
    // a frontier over an edgeless graph still applies and terminates
    let r = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&Bfs::from_source(0))
        .expect("edgeless graph must not stall");
    assert_eq!(r.metrics.edges_processed, 0);
    assert_finite(&r.metrics, "edgeless graph");
}

#[test]
fn batch_runner_handles_degenerate_jobs() {
    let empty = empty_graph();
    let edgeless = edgeless_graph();
    let jobs = vec![
        BatchJob::new(
            "empty",
            &empty,
            Bfs::from_source(0),
            AcceleratorConfig::higraph(),
        ),
        BatchJob::new(
            "edgeless",
            &edgeless,
            Bfs::from_source(0),
            AcceleratorConfig::higraph(),
        ),
        BatchJob::new(
            "no-frontier",
            &edgeless,
            Bfs::from_source(9_999),
            AcceleratorConfig::higraph(),
        ),
    ];
    let (results, report) = BatchRunner::serial().run(jobs);
    assert_eq!(report.jobs, 3);
    assert_eq!(report.failed_jobs, 0);
    for r in &results {
        assert!(r.is_ok(), "{}: {:?}", r.label, r.error);
        assert_finite(&r.metrics, &r.label);
    }
    assert!(report.aggregate_gteps().is_finite());
    assert!(report.sims_per_second().is_finite());
    assert!(report.simulated_meps().is_finite());
}

#[test]
fn sharded_engine_handles_degenerate_runs() {
    for (label, g) in [("empty", empty_graph()), ("edgeless", edgeless_graph())] {
        let r = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g)
            .run(&Wcc::new())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_finite(&r.metrics, label);
        assert!(r.cycles_per_edge().is_finite(), "{label}");
        assert_eq!(r.cross_chip_packets, 0, "{label}");
        for (i, chip) in r.chips.iter().enumerate() {
            assert_finite(chip, &format!("{label} chip {i}"));
        }
    }
}

#[test]
fn stalled_entry_fails_alone_not_the_sweep() {
    let g = higraph::graph::gen::erdos_renyi(128, 1024, 31, 7);
    let jobs = vec![
        BatchJob::new("ok", &g, Bfs::from_source(0), AcceleratorConfig::higraph()),
        // a 1-cycle budget cannot drain any real scatter phase
        BatchJob::new(
            "doomed",
            &g,
            Bfs::from_source(0),
            AcceleratorConfig::higraph(),
        )
        .with_stall_guard(1),
        BatchJob::new(
            "also-ok",
            &g,
            Bfs::from_source(0),
            AcceleratorConfig::graphdyns(),
        ),
    ];
    let (results, report) = BatchRunner::serial().run(jobs);
    assert_eq!(report.jobs, 3);
    assert_eq!(report.failed_jobs, 1);
    assert!(results[0].is_ok());
    assert!(results[2].is_ok());
    let err = results[1].error.as_ref().expect("doomed entry fails");
    let diagnostic = err.stall().expect("runtime stall, not a config error");
    assert_eq!(diagnostic.stall.limit, 1);
    assert!(err.to_string().contains("stalled"));
    // failed entries contribute nothing to the aggregate totals
    assert_eq!(
        report.total_edges_processed,
        results[0].metrics.edges_processed + results[2].metrics.edges_processed
    );
}

#[test]
fn invalid_config_fails_its_entry_not_the_sweep() {
    // A zero staging capacity would build a zero-entry FIFO; validation
    // catches it at engine construction, so the batch entry fails with a
    // config error instead of the whole sweep aborting on a panic.
    let g = higraph::graph::gen::erdos_renyi(64, 512, 31, 11);
    let mut zero_staging = AcceleratorConfig::higraph();
    zero_staging.staging_capacity = 0;
    let mut bad_channels = AcceleratorConfig::higraph();
    bad_channels.front_channels = 12;
    let jobs = vec![
        BatchJob::new("ok", &g, Bfs::from_source(0), AcceleratorConfig::higraph()),
        BatchJob::new("zero-staging", &g, Bfs::from_source(0), zero_staging),
        BatchJob::new(
            "bad-channels",
            &g,
            Bfs::from_source(0),
            bad_channels.clone(),
        ),
        BatchJob::new("bad-sharded", &g, Bfs::from_source(0), bad_channels)
            .sharded(ShardConfig::new(2)),
    ];
    let (results, report) = BatchRunner::serial().run(jobs);
    assert_eq!(report.jobs, 4);
    assert_eq!(report.failed_jobs, 3);
    assert!(results[0].is_ok());
    for r in &results[1..] {
        let err = r
            .error
            .as_ref()
            .unwrap_or_else(|| panic!("{} must fail", r.label));
        assert!(err.stall().is_none(), "{}: {err}", r.label);
        assert!(
            err.to_string().contains("invalid configuration"),
            "{}: {err}",
            r.label
        );
        assert!(r.properties.is_empty(), "{}", r.label);
    }
    assert_eq!(
        report.total_edges_processed,
        results[0].metrics.edges_processed
    );
}

#[test]
fn degenerate_metrics_round_trip_through_the_report() {
    // A formerly-NaN metric (gteps of a zero-cycle run) is now 0.0 and
    // must survive writer → parser → perf gate without a `null`.
    let g = empty_graph();
    let r = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&Wcc::new())
        .expect("no stall");
    let mut report = Report::new();
    report.ran("mem");
    report.record("mem.degenerate.gteps", r.metrics.gteps());
    report.record(
        "mem.degenerate.cache_hit_rate",
        r.metrics.memory.cache_hit_rate(),
    );
    let json = report.to_json();
    assert!(
        !json.contains("null"),
        "degenerate metrics must be finite: {json}"
    );
    let metrics_obj = json
        .split("\"metrics\": ")
        .nth(1)
        .expect("metrics key")
        .trim_end()
        .trim_end_matches('}')
        .trim_end();
    let parsed = parse_flat_json(metrics_obj).expect("round trip parses");
    assert_eq!(parsed["mem.degenerate.gteps"], 0.0);
    let violations = check_against_baseline(&parsed, &parsed.clone(), DEFAULT_TOLERANCE);
    assert!(violations.is_empty(), "{violations:?}");
}
