//! End-to-end equivalence: the cycle-level accelerator models must produce
//! Property Arrays **bit-identical** to the software VCPM reference
//! executor, for every algorithm, every design, and every dataset family.
//!
//! This is the correctness backbone of the reproduction: performance
//! numbers mean nothing if the accelerator computes a different answer.

use higraph::prelude::*;
use higraph::vcpm::programs::{MultiSourceBfs, Wcc};
use higraph::vcpm::reference;

fn configs() -> Vec<AcceleratorConfig> {
    let mut cfgs = vec![
        AcceleratorConfig::higraph(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::graphdyns(),
    ];
    cfgs.extend(OptLevel::ALL.map(AcceleratorConfig::higraph_with_opts));
    // a naive-FIFO dataflow variant (Fig. 5 b/c) must also be correct
    let mut naive = AcceleratorConfig::higraph();
    naive.name = "HiGraph[df=naive]".to_string();
    naive.dataflow_network = NetworkKind::NaiveFifo;
    cfgs.push(naive);
    cfgs
}

fn graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("erdos", higraph::graph::gen::erdos_renyi(300, 2400, 63, 11)),
        (
            "power_law",
            higraph::graph::gen::power_law(300, 2400, 2.0, 63, 12),
        ),
        (
            "rmat",
            higraph::graph::gen::rmat(
                &higraph::graph::gen::RmatConfig {
                    scale: 8,
                    edge_factor: 8,
                    ..higraph::graph::gen::RmatConfig::graph500(8)
                },
                13,
            ),
        ),
        ("vote_tiny", Dataset::Vote.build_scaled(16)),
    ]
}

fn source(g: &Csr) -> u32 {
    higraph::graph::stats::hub_vertex(g).expect("non-empty").0
}

#[test]
fn bfs_equivalence_everywhere() {
    for (gname, g) in graphs() {
        let prog = Bfs::from_source(source(&g));
        let expect = reference::execute(&prog, &g);
        for cfg in configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "BFS {gname} on {name}");
            assert_eq!(
                got.metrics.edges_processed, expect.edges_processed,
                "BFS {gname} on {name}: edge count"
            );
            assert_eq!(
                got.metrics.iterations, expect.iterations,
                "BFS {gname} on {name}: iterations"
            );
        }
    }
}

#[test]
fn sssp_equivalence_everywhere() {
    for (gname, g) in graphs() {
        let prog = Sssp::from_source(source(&g));
        let expect = reference::execute(&prog, &g);
        for cfg in configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "SSSP {gname} on {name}");
        }
    }
}

#[test]
fn sswp_equivalence_everywhere() {
    for (gname, g) in graphs() {
        let prog = Sswp::from_source(source(&g));
        let expect = reference::execute(&prog, &g);
        for cfg in configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "SSWP {gname} on {name}");
        }
    }
}

#[test]
fn pagerank_equivalence_everywhere() {
    // PageRank exercises the order-independence of fixed-point reduction:
    // the accelerator folds contributions in dataflow-arrival order, the
    // reference in edge order — results must still be bit-identical.
    for (gname, g) in graphs() {
        let prog = PageRank::new(6);
        let expect = reference::execute(&prog, &g);
        for cfg in configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "PR {gname} on {name}");
        }
    }
}

#[test]
fn wcc_equivalence_everywhere() {
    for (gname, g) in graphs() {
        let prog = Wcc::new();
        let expect = reference::execute(&prog, &g);
        for cfg in configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "WCC {gname} on {name}");
        }
    }
}

#[test]
fn multi_source_bfs_equivalence() {
    // the densest-traffic workload (64-way frontier union, OR reduction)
    for (gname, g) in graphs() {
        let sources: Vec<u32> = (0..16).map(|i| i * 7 % g.num_vertices()).collect();
        let prog = MultiSourceBfs::new(sources).expect("16 landmarks");
        let expect = reference::execute(&prog, &g);
        for cfg in [AcceleratorConfig::higraph(), AcceleratorConfig::graphdyns()] {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(
                got.properties, expect.properties,
                "MS-BFS {gname} on {name}"
            );
        }
    }
}

#[test]
fn sliced_runs_match_unsliced_for_all_algorithms() {
    let g = higraph::graph::gen::power_law(350, 2800, 2.0, 31, 44);
    let src = source(&g);
    macro_rules! check {
        ($prog:expr, $label:expr) => {
            let whole = Engine::new(AcceleratorConfig::higraph(), &g)
                .run(&$prog)
                .expect("no stall");
            let sliced = Engine::new(AcceleratorConfig::higraph(), &g)
                .run_sliced(&$prog, 3, 64)
                .expect("no stall");
            assert_eq!(sliced.properties, whole.properties, $label);
        };
    }
    check!(Bfs::from_source(src), "BFS");
    check!(Sssp::from_source(src), "SSSP");
    check!(Sswp::from_source(src), "SSWP");
    check!(PageRank::new(4), "PR");
    check!(Wcc::new(), "WCC");
}

#[test]
fn scaled_channel_counts_stay_equivalent() {
    // Fig. 11's wide configurations must not change results.
    let g = higraph::graph::gen::power_law(500, 4000, 2.0, 31, 5);
    let prog = Bfs::from_source(source(&g));
    let expect = reference::execute(&prog, &g);
    for channels in [8usize, 64, 128] {
        let cfg = AcceleratorConfig::higraph().scaled_to(channels);
        let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
        assert_eq!(got.properties, expect.properties, "{channels} channels");
    }
}

#[test]
fn radix_variants_stay_equivalent() {
    let g = higraph::graph::gen::erdos_renyi(256, 2048, 15, 3);
    let prog = Sssp::from_source(source(&g));
    let expect = reference::execute(&prog, &g);
    for radix in [2usize, 4, 64] {
        // 64-channel geometry divides evenly by all three radices
        let mut cfg = AcceleratorConfig::higraph().scaled_to(64);
        cfg.radix = radix;
        let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
        assert_eq!(got.properties, expect.properties, "radix {radix}");
    }
}
