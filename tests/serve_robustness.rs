//! Robustness properties of the job-service front door and the
//! memoization key (`docs/robustness.md`, ROADMAP item 5 hardening).
//!
//! * **Line-parser fuzz**: arbitrary bytes and adversarial structured
//!   lines fed to [`ServeSession::handle_line`] must yield an `error`
//!   event or a valid parse — never a panic — and every emitted event
//!   must itself be well-formed flat JSON (the service's output is
//!   consumed line-by-line by scripts; one malformed event corrupts the
//!   stream for everything after it).
//! * **Canonical-encoding round-trip**: [`AcceleratorConfig::canonical_encoding`]
//!   is the memo key for serve and the DSE — two configurations collide
//!   if and only if they are behaviourally identical, and the free-form
//!   `name` label never leaks in. There is deliberately no decoder, so
//!   the round-trip property is injectivity: the encoding must uniquely
//!   determine every behavioural field it covers.
//! * **End-to-end survivability**: one session absorbs a panicking job,
//!   a deadline-parked job, and a mid-run cancellation, then keeps
//!   serving (the ISSUE's acceptance scenario, at the library level —
//!   CI drives the same scenario through the `higraph-serve` binary).

use higraph::prelude::*;
use higraph_bench::report::parse_flat_json_values;
use higraph_bench::serve::JobEvent;
use higraph_bench::ServeSession;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Every event the session emits must be parseable flat JSON with an
/// identifying key — consumers dispatch on `"event"` or `"id"`.
fn assert_well_formed(events: &[String]) -> Result<(), TestCaseError> {
    for event in events {
        let fields = match parse_flat_json_values(event) {
            Ok(f) => f,
            Err(e) => {
                return Err(fail(&format!("emitted malformed event {event:?}: {e}")));
            }
        };
        prop_assert!(
            fields.contains_key("event") || fields.contains_key("id"),
            "event {event:?} has neither an \"event\" nor an \"id\" key"
        );
    }
    Ok(())
}

fn fail(msg: &str) -> TestCaseError {
    TestCaseError::Fail(msg.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Raw-bytes fuzz: whatever arrives on stdin, the session answers
    /// with well-formed events and survives. Inputs that are not valid
    /// flat JSON must be answered with an `error` event.
    #[test]
    fn arbitrary_bytes_never_panic_the_line_parser(
        bytes in proptest::collection::vec(0u8..=255, 0..160),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let mut session = ServeSession::new();
        let events = session.handle_line(&line);
        prop_assert!(!events.is_empty(), "input {line:?} was swallowed silently");
        assert_well_formed(&events)?;
        if parse_flat_json_values(&line).is_err() {
            prop_assert!(
                events[0].contains("\"event\": \"error\""),
                "malformed input {line:?} answered with {:?} instead of an error event",
                events[0]
            );
        }
    }

    /// Structured fuzz: syntactically valid operations with adversarial
    /// field values (hostile ids, wrong types, out-of-range counts,
    /// unknown enum strings). Submissions are queued, not executed, so
    /// every spec-level rejection path runs without simulating anything.
    #[test]
    fn adversarial_operations_never_panic_the_session(
        ops in proptest::collection::vec(
            (0usize..6, 0usize..6, 0u64..40, proptest::collection::vec(32u8..127, 0..12)),
            1..12,
        ),
    ) {
        let mut session = ServeSession::new();
        for (op_idx, field_idx, num, id_bytes) in ops {
            let op = ["submit", "cancel", "resume", "stats", "shutdown", "nonsense"][op_idx];
            let id = String::from_utf8_lossy(&id_bytes).into_owned();
            let mut line = String::from("{\"op\": ");
            higraph_bench::report::write_json_string(&mut line, op);
            line.push_str(", \"id\": ");
            higraph_bench::report::write_json_string(&mut line, &id);
            // One adversarial extra field per line: wrong types, zeros
            // where positives are required, unknown enum strings, and a
            // divisor that is usually not a power of two.
            match field_idx {
                0 => line.push_str(&format!(", \"divisor\": {num}")),
                1 => line.push_str(&format!(", \"budget_cycles\": {num}")),
                2 => line.push_str(", \"algo\": \"quantum\""),
                3 => line.push_str(&format!(", \"chips\": {}", num % 3)),
                4 => line.push_str(", \"divisor\": \"sixteen\""),
                _ => line.push_str(&format!(", \"pr_iters\": {}.5", num)),
            }
            line.push('}');
            assert_well_formed(&session.handle_line(&line))?;
        }
    }
}

/// One proptest draw: `(front, staging, wheel, cache_kb)` knobs, a
/// fault-plan on/off flag, and the plan's `(seed, events, dur, horizon)`.
type ConfigDraw = ((usize, usize, usize, usize), bool, (u64, u32, u64, u64));

/// The draw normalized into behavioural identity: the knobs plus the
/// fault plan only when enabled.
type ConfigKey = (usize, usize, usize, usize, Option<(u64, u32, u64, u64)>);

/// The behavioural knobs the encoding property varies. Kept alongside
/// the draw so equality of the draw tuple is equality of behaviour.
fn config_from(
    front: usize,
    staging: usize,
    wheel: usize,
    cache_kb: usize,
    faults: Option<(u64, u32, u64, u64)>,
    name: &str,
) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::higraph_mini();
    cfg.name = name.to_string();
    cfg.front_channels = front;
    cfg.staging_capacity = staging;
    cfg.wheel_horizon = wheel;
    cfg.memory = (cache_kb > 0).then(|| MemoryConfig::hbm2().with_cache_kb(cache_kb));
    cfg.fault_plan = faults.map(|(seed, events, max_duration, horizon)| FaultPlan {
        seed,
        events,
        max_duration,
        horizon,
    });
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The canonical encoding is a *key*: stable under re-encoding and
    /// renaming, and injective over the behavioural fields — two draws
    /// collide exactly when their parameters are equal. `validate` must
    /// answer every draw (including invalid ones) with `Ok`/`Err`,
    /// never a panic.
    #[test]
    fn canonical_encoding_uniquely_determines_behaviour(
        a in ((1usize..9, 1usize..9, 1usize..4097, 0usize..9),
              proptest::bool::ANY, (0u64..4, 0u32..4, 0u64..4, 0u64..4)),
        b in ((1usize..9, 1usize..9, 1usize..4097, 0usize..9),
              proptest::bool::ANY, (0u64..4, 0u32..4, 0u64..4, 0u64..4)),
    ) {
        let key = |((front, staging, wheel, cache), faulty, plan): ConfigDraw| {
            (front, staging, wheel, cache, faulty.then_some(plan))
        };
        let build = |params: ConfigKey, name: &str| {
            config_from(params.0, params.1, params.2, params.3, params.4, name)
        };
        let (ka, kb) = (key(a), key(b));
        let ca = build(ka, "alpha");
        let cb = build(kb, "omega");

        // Stability: re-encoding and renaming never move the key.
        prop_assert_eq!(ca.canonical_encoding(), ca.canonical_encoding());
        prop_assert_eq!(
            ca.canonical_encoding(),
            build(ka, "renamed before the memo lookup").canonical_encoding()
        );

        // Injectivity: equal keys iff equal behaviour.
        prop_assert_eq!(
            ca.canonical_encoding() == cb.canonical_encoding(),
            ka == kb,
            "configs {:?} vs {:?} — encodings {:?} vs {:?}",
            ka,
            kb,
            ca.canonical_encoding(),
            cb.canonical_encoding()
        );

        // Validation answers, it never panics — invalid draws (e.g. a
        // fault plan with events > 0 but zero duration) yield an Err.
        let _ = ca.validate();
        let _ = cb.validate();
    }
}

/// The acceptance scenario in one session: a panicking job is isolated
/// to a `failed` event, a deadline-exceeding job parks on a checkpoint
/// (and later resumes to completion), a running job is cancelled
/// cooperatively mid-drain, and a healthy job still completes — then
/// `stats` accounts for all four.
#[test]
fn one_session_survives_panic_deadline_and_midrun_cancel() {
    let mut session = ServeSession::new();
    // Cancel "doomed" the moment it *starts* running: the observer sees
    // the Started event on the session thread and trips the cooperative
    // token, which the engine observes at its next drain boundary.
    session.set_observer(Box::new(|event| {
        if let JobEvent::Started {
            id: "doomed",
            control,
            ..
        } = event
        {
            control.request_cancel();
        }
    }));

    for line in [
        r#"{"op": "submit", "id": "boom", "algo": "wcc", "divisor": 64, "inject": "panic"}"#,
        r#"{"op": "submit", "id": "slow", "algo": "wcc", "divisor": 64, "budget_ms": 0}"#,
        r#"{"op": "submit", "id": "doomed", "algo": "pr", "divisor": 64}"#,
        r#"{"op": "submit", "id": "keep", "algo": "bfs", "divisor": 64}"#,
    ] {
        let events = session.handle_line(line);
        assert!(
            events[0].contains("\"event\": \"queued\""),
            "submission rejected: {events:?}"
        );
    }

    let events = session.handle_line(r#"{"op": "run"}"#);
    let find = |needle: &str| {
        events
            .iter()
            .find(|e| e.contains(needle))
            .unwrap_or_else(|| panic!("no event matching {needle:?} in {events:?}"))
    };
    let failed = find("\"event\": \"failed\", \"id\": \"boom\"");
    assert!(
        failed.contains("injected panic"),
        "panic payload missing from {failed:?}"
    );
    find("\"event\": \"parked\", \"id\": \"slow\"");
    let cancelled = find("\"event\": \"cancelled\", \"id\": \"doomed\"");
    assert!(
        cancelled.contains("\"stage\": \"running\""),
        "cancel was not observed mid-run: {cancelled:?}"
    );
    find("\"id\": \"keep\", \"status\": \"ok\"");

    let stats = session.handle_line(r#"{"op": "stats"}"#).remove(0);
    for expect in [
        "\"completed\": 1",
        "\"parked\": 1",
        "\"failed\": 1",
        "\"cancelled\": 1",
    ] {
        assert!(stats.contains(expect), "{expect} missing from {stats}");
    }

    // The parked job is not lost: resuming grants a fresh lease and it
    // runs to completion.
    let events = [
        session.handle_line(r#"{"op": "resume", "id": "slow"}"#),
        session.handle_line(r#"{"op": "run"}"#),
    ]
    .concat();
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"id\": \"slow\", \"status\": \"ok\"")),
        "resumed job did not complete: {events:?}"
    );
}
