//! Intra-run parallelism determinism: a sharded run's cycles, metrics,
//! properties, and link counters are bit-identical whether the chips are
//! ticked by the serial drain or by 2 or 8 worker threads, with
//! fast-forward on or off. The worker count is a host-performance knob,
//! never a results knob — see `docs/performance.md`.

use higraph::prelude::*;
use higraph::sim::NetworkStats;

/// A P=4 sharded run of `prog` with an explicit worker-thread setting.
fn run_with_threads<Prog>(
    cfg: &AcceleratorConfig,
    graph: &Csr,
    prog: &Prog,
    threads: usize,
    fast_forward: bool,
) -> (Vec<Prog::Prop>, Metrics, Vec<Metrics>, u64, NetworkStats)
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send,
{
    let mut engine = ShardedEngine::new(cfg.clone(), ShardConfig::new(4), graph);
    engine.set_threads(Some(threads));
    engine.set_fast_forward(fast_forward);
    let r = engine.run(prog).expect("well-sized config");
    (
        r.properties,
        r.metrics,
        r.chips,
        r.cross_chip_packets,
        r.link,
    )
}

fn assert_identical_across_thread_counts<Prog>(cfg: &AcceleratorConfig, graph: &Csr, prog: &Prog)
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send + std::fmt::Debug + PartialEq,
{
    for fast_forward in [true, false] {
        let serial = run_with_threads(cfg, graph, prog, 1, fast_forward);
        for threads in [2usize, 8] {
            let parallel = run_with_threads(cfg, graph, prog, threads, fast_forward);
            let label = format!("{} threads, fast_forward={fast_forward}", threads);
            assert_eq!(parallel.0, serial.0, "properties differ ({label})");
            assert_eq!(parallel.1, serial.1, "aggregate metrics differ ({label})");
            assert_eq!(parallel.2, serial.2, "per-chip metrics differ ({label})");
            assert_eq!(parallel.3, serial.3, "cross-chip packets differ ({label})");
            assert_eq!(parallel.4, serial.4, "link stats differ ({label})");
        }
    }
}

#[test]
fn sharded_run_is_bit_identical_across_worker_threads() {
    let g = higraph::graph::gen::power_law(300, 2700, 2.0, 31, 91);
    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    assert_identical_across_thread_counts(
        &AcceleratorConfig::higraph(),
        &g,
        &Sssp::from_source(src),
    );
}

#[test]
fn parallel_drain_is_bit_identical_under_modeled_memory() {
    // Memory-stalled drains exercise the fast-forward window path (bulk
    // skip + commit_idle) on the worker side.
    let g = higraph::graph::gen::power_law(300, 2400, 2.0, 31, 93);
    let mut cfg = AcceleratorConfig::higraph();
    cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
    assert_identical_across_thread_counts(&cfg, &g, &PageRank::new(2));
}

#[test]
fn parallel_drain_matches_reference_results() {
    let g = higraph::graph::gen::erdos_renyi(256, 2048, 31, 95);
    let prog = Bfs::from_source(0);
    let expect = higraph::vcpm::reference::execute(&prog, &g);
    for threads in [2usize, 4, 8] {
        let (properties, metrics, ..) =
            run_with_threads(&AcceleratorConfig::higraph(), &g, &prog, threads, true);
        assert_eq!(properties, expect.properties, "{threads} threads");
        assert_eq!(
            metrics.edges_processed, expect.edges_processed,
            "{threads} threads"
        );
    }
}

#[test]
fn parallel_drain_reports_stalls_like_serial() {
    let g = higraph::graph::gen::erdos_renyi(128, 1024, 31, 97);
    let run = |threads: usize| {
        let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g);
        engine.set_threads(Some(threads));
        engine.set_stall_guard(Some(2));
        engine.run(&Bfs::from_source(0)).expect_err("must stall")
    };
    let serial = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        assert_eq!(parallel, serial, "{threads} threads");
    }
}

// ---------------------------------------------------------------------
// Pool stress suite: the shared work-stealing CorePool under
// oversubscription, randomized injection order, and mid-run
// cancellation. The invariant is always the same — every completed
// job's results are bit-identical to a serial (one-thread) run of that
// job alone, no matter how the host cores were contended for.
// ---------------------------------------------------------------------

/// One stress job: SSSP from `source` on `graphs[graph]`, P = 4 chips,
/// with the drain's lease policy chosen by `threads`.
fn stress_job(
    graphs: &[Csr],
    (graph, source): (usize, u32),
    threads: Option<usize>,
) -> (Vec<u64>, Metrics, u64) {
    let mut engine = ShardedEngine::new(
        AcceleratorConfig::higraph(),
        ShardConfig::new(4),
        &graphs[graph],
    );
    engine.set_threads(threads);
    let r = engine
        .run(&Sssp::from_source(source))
        .expect("well-sized config");
    (r.properties, r.metrics, r.cross_chip_packets)
}

fn stress_graphs() -> Vec<Csr> {
    (0..3u64)
        .map(|i| higraph::graph::gen::power_law(220, 1700 + 100 * i, 2.0, 31, 111 + i))
        .collect()
}

fn stress_jobs(graphs: &[Csr]) -> Vec<(usize, u32)> {
    (0..12u32)
        .map(|j| {
            let graph = j as usize % graphs.len();
            (graph, j % graphs[graph].num_vertices())
        })
        .collect()
}

#[test]
fn oversubscribed_job_batch_is_bit_identical_to_serial() {
    // 12 jobs x 4 chips on a laptop-sized host: batch tasks and drain
    // teams vastly outnumber cores, so every lease path (full grant,
    // partial grant, empty grant -> serial fallback) gets exercised.
    let graphs = stress_graphs();
    let jobs = stress_jobs(&graphs);
    let serial: Vec<_> = jobs
        .iter()
        .map(|&job| stress_job(&graphs, job, Some(1)))
        .collect();
    let pool = higraph::pool::CorePool::global();
    let concurrent = pool.run_ordered(jobs.len(), |i| stress_job(&graphs, jobs[i], None));
    for (i, (got, want)) in concurrent.iter().zip(&serial).enumerate() {
        assert_eq!(got, want, "job {i} ({:?}) diverged from serial", jobs[i]);
    }
}

#[test]
fn seeded_injection_order_does_not_change_results() {
    // Shuffling the submission order perturbs which worker deque each
    // job lands on and therefore the steal interleaving; results must
    // not notice. (Fisher-Yates over a seeded StdRng keeps the
    // permutations themselves reproducible.)
    use rand::{Rng, SeedableRng};
    let graphs = stress_graphs();
    let jobs = stress_jobs(&graphs);
    let serial: Vec<_> = jobs
        .iter()
        .map(|&job| stress_job(&graphs, job, Some(1)))
        .collect();
    let pool = higraph::pool::CorePool::global();
    for seed in [7u64, 19, 83] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let shuffled = pool.run_ordered(order.len(), |i| stress_job(&graphs, jobs[order[i]], None));
        for (slot, result) in order.iter().zip(&shuffled) {
            assert_eq!(
                *result, serial[*slot],
                "seed {seed}: job {slot} diverged under shuffled injection"
            );
        }
    }
}

#[test]
fn cancellation_mid_run_leaves_completed_jobs_bit_identical() {
    // Drive the job service a step at a time: cancel a queued job while
    // another is already done, then check each *completed* job against a
    // pinned-serial run of the same specification.
    use higraph_bench::{Algo, ServeSession};
    let mut session = ServeSession::new();
    let submit = |algo: &str, id: &str, priority: i64| {
        format!(
            "{{\"op\": \"submit\", \"id\": \"{id}\", \"algo\": \"{algo}\", \
             \"chips\": 2, \"divisor\": 32, \"priority\": {priority}}}"
        )
    };
    for line in [
        submit("wcc", "keep-1", 5),
        submit("bfs", "doomed", 1),
        submit("sssp", "keep-2", 3),
    ] {
        let out = session.handle_line(&line);
        assert!(out[0].contains("\"event\": \"queued\""), "{out:?}");
    }
    let first = session.step().expect("three jobs queued");
    assert!(
        first.contains("\"id\": \"keep-1\""),
        "highest priority first"
    );
    let out = session.handle_line("{\"op\": \"cancel\", \"id\": \"doomed\"}");
    assert!(out[0].contains("\"event\": \"cancelled\""), "{out:?}");
    let mut results = vec![first];
    while let Some(line) = session.step() {
        results.push(line);
    }
    assert_eq!(results.len(), 2, "cancelled job never ran: {results:?}");
    let cycles_of = |line: &str| {
        line.split("\"cycles\": ")
            .nth(1)
            .expect("result line has cycles")
            .split([',', '}'])
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap()
    };
    let graph = Dataset::Vote.build_scaled(32);
    for (algo, id, line) in [
        (Algo::Wcc, "keep-1", &results[0]),
        (Algo::Sssp, "keep-2", &results[1]),
    ] {
        assert!(line.contains(&format!("\"id\": \"{id}\"")), "{line}");
        let reference = algo
            .run_sharded_threads(
                &AcceleratorConfig::higraph(),
                ShardConfig::new(2),
                &graph,
                3,
                Some(1),
            )
            .expect("well-sized config");
        assert_eq!(
            cycles_of(line),
            reference.metrics.cycles,
            "{id}: service run diverged from pinned-serial"
        );
    }
}

#[test]
fn auto_thread_count_is_capped_by_chips() {
    let g = higraph::graph::gen::erdos_renyi(64, 256, 15, 99);
    let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(2), &g);
    assert!(engine.worker_threads() >= 1);
    assert!(engine.worker_threads() <= 2, "capped at the chip count");
    engine.set_threads(Some(64));
    assert_eq!(engine.worker_threads(), 2);
    engine.set_threads(Some(1));
    assert_eq!(engine.worker_threads(), 1);
}
