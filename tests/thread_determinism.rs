//! Intra-run parallelism determinism: a sharded run's cycles, metrics,
//! properties, and link counters are bit-identical whether the chips are
//! ticked by the serial drain or by 2 or 8 worker threads, with
//! fast-forward on or off. The worker count is a host-performance knob,
//! never a results knob — see `docs/performance.md`.

use higraph::prelude::*;
use higraph::sim::NetworkStats;

/// A P=4 sharded run of `prog` with an explicit worker-thread setting.
fn run_with_threads<Prog>(
    cfg: &AcceleratorConfig,
    graph: &Csr,
    prog: &Prog,
    threads: usize,
    fast_forward: bool,
) -> (Vec<Prog::Prop>, Metrics, Vec<Metrics>, u64, NetworkStats)
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send,
{
    let mut engine = ShardedEngine::new(cfg.clone(), ShardConfig::new(4), graph);
    engine.set_threads(Some(threads));
    engine.set_fast_forward(fast_forward);
    let r = engine.run(prog).expect("well-sized config");
    (
        r.properties,
        r.metrics,
        r.chips,
        r.cross_chip_packets,
        r.link,
    )
}

fn assert_identical_across_thread_counts<Prog>(cfg: &AcceleratorConfig, graph: &Csr, prog: &Prog)
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send + std::fmt::Debug + PartialEq,
{
    for fast_forward in [true, false] {
        let serial = run_with_threads(cfg, graph, prog, 1, fast_forward);
        for threads in [2usize, 8] {
            let parallel = run_with_threads(cfg, graph, prog, threads, fast_forward);
            let label = format!("{} threads, fast_forward={fast_forward}", threads);
            assert_eq!(parallel.0, serial.0, "properties differ ({label})");
            assert_eq!(parallel.1, serial.1, "aggregate metrics differ ({label})");
            assert_eq!(parallel.2, serial.2, "per-chip metrics differ ({label})");
            assert_eq!(parallel.3, serial.3, "cross-chip packets differ ({label})");
            assert_eq!(parallel.4, serial.4, "link stats differ ({label})");
        }
    }
}

#[test]
fn sharded_run_is_bit_identical_across_worker_threads() {
    let g = higraph::graph::gen::power_law(300, 2700, 2.0, 31, 91);
    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    assert_identical_across_thread_counts(
        &AcceleratorConfig::higraph(),
        &g,
        &Sssp::from_source(src),
    );
}

#[test]
fn parallel_drain_is_bit_identical_under_modeled_memory() {
    // Memory-stalled drains exercise the fast-forward window path (bulk
    // skip + commit_idle) on the worker side.
    let g = higraph::graph::gen::power_law(300, 2400, 2.0, 31, 93);
    let mut cfg = AcceleratorConfig::higraph();
    cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
    assert_identical_across_thread_counts(&cfg, &g, &PageRank::new(2));
}

#[test]
fn parallel_drain_matches_reference_results() {
    let g = higraph::graph::gen::erdos_renyi(256, 2048, 31, 95);
    let prog = Bfs::from_source(0);
    let expect = higraph::vcpm::reference::execute(&prog, &g);
    for threads in [2usize, 4, 8] {
        let (properties, metrics, ..) =
            run_with_threads(&AcceleratorConfig::higraph(), &g, &prog, threads, true);
        assert_eq!(properties, expect.properties, "{threads} threads");
        assert_eq!(
            metrics.edges_processed, expect.edges_processed,
            "{threads} threads"
        );
    }
}

#[test]
fn parallel_drain_reports_stalls_like_serial() {
    let g = higraph::graph::gen::erdos_renyi(128, 1024, 31, 97);
    let run = |threads: usize| {
        let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g);
        engine.set_threads(Some(threads));
        engine.set_stall_guard(Some(2));
        engine.run(&Bfs::from_source(0)).expect_err("must stall")
    };
    let serial = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        assert_eq!(parallel, serial, "{threads} threads");
    }
}

#[test]
fn auto_thread_count_is_capped_by_chips() {
    let g = higraph::graph::gen::erdos_renyi(64, 256, 15, 99);
    let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(2), &g);
    assert!(engine.worker_threads() >= 1);
    assert!(engine.worker_threads() <= 2, "capped at the chip count");
    engine.set_threads(Some(64));
    assert_eq!(engine.worker_threads(), 2);
    engine.set_threads(Some(1));
    assert_eq!(engine.worker_threads(), 1);
}
