//! Structural golden tests of the automatic Verilog generator — the
//! paper's open-source artifact equivalent.

use higraph::mdp::verilog::{generate, VerilogOptions};
use higraph::mdp::Topology;

fn rtl(n: usize, radix: usize) -> String {
    generate(
        &Topology::new(n, radix).expect("valid"),
        &VerilogOptions::default(),
    )
}

#[test]
fn generator_is_deterministic_across_sizes() {
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        assert_eq!(rtl(n, 2), rtl(n, 2), "n={n}");
    }
}

#[test]
fn instance_count_matches_topology() {
    for (n, radix) in [(4usize, 2usize), (16, 2), (64, 2), (16, 4), (64, 8)] {
        let topo = Topology::new(n, radix).expect("valid");
        let v = generate(&topo, &VerilogOptions::default());
        let instances = v.matches(" u_s").count();
        assert_eq!(
            instances,
            topo.num_stages() * topo.num_channels(),
            "n={n} radix={radix}"
        );
        assert_eq!(v.matches("endmodule").count(), 2);
    }
}

#[test]
fn paper_toy_example_wiring_appears() {
    // Fig. 5(d): 4 channels — stage 0 pairs {0,2}/{1,3} on addr[1],
    // stage 1 pairs {0,1}/{2,3} on addr[0].
    let v = rtl(4, 2);
    assert!(v.contains("stage 0: routing on dest[1:1]"), "{v}");
    assert!(v.contains("stage 1: routing on dest[0:0]"));
    // instance names: stage 0 writes FIFOs for channels 0..3, stage 1 too
    for s in 0..2 {
        for ch in 0..4 {
            assert!(v.contains(&format!("u_s{s}_c{ch}")), "missing u_s{s}_c{ch}");
        }
    }
}

#[test]
fn options_control_emission() {
    let topo = Topology::new(8, 2).expect("valid");
    let opts = VerilogOptions {
        data_width: 19, // one quantized vertex ID
        fifo_depth: 32,
        module_prefix: "edge_net".to_string(),
    };
    let v = generate(&topo, &opts);
    assert!(v.contains("module edge_net_network_n8_r2"));
    assert!(v.contains("parameter WIDTH = 19"));
    assert!(v.contains("parameter DEPTH = 32"));
}

#[test]
fn every_stage_connects_full_lane_widths() {
    // the lane carries data + dest bits; spot-check the widest config
    let v = rtl(256, 2);
    // 38-bit default payload + 8 dest bits = 46-bit lanes
    assert!(v.contains("in_lane"), "top ports present");
    assert!(v.contains("[256*46-1:0]"), "lane width must be 46 bits");
    // 8 stages of 256 channels
    assert_eq!(v.matches(" u_s").count(), 8 * 256);
}

#[test]
fn generated_rtl_has_no_placeholder_text() {
    let v = rtl(32, 2);
    for forbidden in ["TODO", "FIXME", "unimplemented", "placeholder"] {
        assert!(!v.contains(forbidden), "found {forbidden}");
    }
}
