//! The batch runner's contract: parallel execution is an optimization,
//! never a semantic change. Every batched simulation must be bit-identical
//! to the same job run serially through `Engine::run` / `Engine::run_sliced`,
//! including on hosts where the parallel path genuinely crosses threads
//! (pinned via the rayon thread pool, so this holds on single-core CI too).

use higraph::prelude::*;
use higraph_bench::Scale;

/// Runs `jobs` through the parallel batch runner on a 4-worker pool, so
/// the threaded path is exercised regardless of host core count.
fn run_on_pool<Prog>(jobs: Vec<BatchJob<'_, Prog>>) -> Vec<BatchResult<Prog::Prop>>
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send,
{
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool builds");
    pool.install(|| BatchRunner::parallel().run(jobs)).0
}

#[test]
fn parallel_batch_is_bit_identical_to_serial_engine_runs() {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let source = higraph::graph::stats::hub_vertex(&graph)
        .map(|v| v.0)
        .unwrap_or(0);

    // ≥ 4 (program × config) points: one program across four designs…
    let configs = [
        AcceleratorConfig::higraph(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::graphdyns(),
        AcceleratorConfig::higraph_with_opts(OptLevel::OE),
    ];
    let jobs: Vec<_> = configs
        .iter()
        .map(|c| BatchJob::new(&c.name, &graph, Bfs::from_source(source), c.clone()))
        .collect();
    let batched = run_on_pool(jobs);
    assert_eq!(batched.len(), configs.len());
    for (result, config) in batched.iter().zip(&configs) {
        let serial = Engine::new(config.clone(), &graph)
            .run(&Bfs::from_source(source))
            .expect("no stall");
        assert_eq!(result.label, config.name);
        assert_eq!(result.properties, serial.properties, "{}", config.name);
        assert_eq!(result.metrics, serial.metrics, "{}", config.name);
    }

    // …and a second program over two designs, so the sweep covers
    // multiple (program × config) combinations end to end.
    let pr_configs = [AcceleratorConfig::higraph(), AcceleratorConfig::graphdyns()];
    let pr_jobs: Vec<_> = pr_configs
        .iter()
        .map(|c| BatchJob::new(&c.name, &graph, PageRank::new(scale.pr_iters), c.clone()))
        .collect();
    for (result, config) in run_on_pool(pr_jobs).iter().zip(&pr_configs) {
        let serial = Engine::new(config.clone(), &graph)
            .run(&PageRank::new(scale.pr_iters))
            .expect("no stall");
        assert_eq!(result.properties, serial.properties, "PR {}", config.name);
        assert_eq!(result.metrics, serial.metrics, "PR {}", config.name);
    }
}

#[test]
fn batched_sliced_runs_match_serial_run_sliced() {
    let graph = Dataset::Vote.build_scaled(16);
    let jobs: Vec<_> = [2usize, 4]
        .into_iter()
        .map(|slices| {
            BatchJob::new(
                &format!("sliced×{slices}"),
                &graph,
                PageRank::new(3),
                AcceleratorConfig::higraph(),
            )
            .sliced(slices, 64)
        })
        .collect();
    let batched = run_on_pool(jobs);
    for (result, slices) in batched.iter().zip([2usize, 4]) {
        let serial = Engine::new(AcceleratorConfig::higraph(), &graph)
            .run_sliced(&PageRank::new(3), slices, 64)
            .expect("no stall");
        assert_eq!(result.properties, serial.properties, "{slices} slices");
        assert_eq!(result.metrics, serial.metrics, "{slices} slices");
        let timing = result.sliced.expect("sliced timing reported");
        assert_eq!(timing.num_slices, slices);
        assert_eq!(timing.swap_cycles_sequential, serial.swap_cycles_sequential);
        assert_eq!(timing.swap_cycles_overlapped, serial.swap_cycles_overlapped);
    }
}

#[test]
fn report_aggregates_and_preserves_job_order() {
    let graph = Dataset::Vote.build_scaled(16);
    let jobs: Vec<_> = (0..6)
        .map(|i| {
            BatchJob::new(
                &format!("job{i}"),
                &graph,
                Bfs::from_source(i),
                AcceleratorConfig::higraph_mini(),
            )
        })
        .collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool builds");
    let (results, report) = pool.install(|| BatchRunner::parallel().run(jobs));
    let labels: Vec<_> = results.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["job0", "job1", "job2", "job3", "job4", "job5"]);
    assert_eq!(report.jobs, 6);
    assert_eq!(
        report.total_simulated_cycles,
        results.iter().map(|r| r.metrics.cycles).sum::<u64>()
    );
    assert!(report.total_edges_processed > 0);
    assert!(report.sims_per_second() > 0.0);
}
