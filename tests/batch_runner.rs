//! The batch runner's contract: parallel execution is an optimization,
//! never a semantic change. Every batched simulation must be bit-identical
//! to the same job run serially through `Engine::run` / `Engine::run_sliced`,
//! including on hosts where the parallel path genuinely crosses threads
//! (the shared `CorePool` is pinned to 4 resident workers via
//! `HIGRAPH_POOL_THREADS` before its first use, so this holds on
//! single-core CI too).
//!
//! The last section fuzzes the configuration surface: invalid arena
//! capacities and wheel horizons must come back as [`BatchError::Config`]
//! with a diagnostic that names the valid values — never as a panic.

use higraph::prelude::*;
use higraph_bench::Scale;
use proptest::prelude::*;

/// Pins the shared `CorePool` to 4 resident workers. Must run before
/// anything touches `CorePool::global()` in this process — every test
/// in this binary that uses the parallel runner goes through here, so
/// the first one to execute wins and the rest agree.
fn pin_pool_workers() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var_os("HIGRAPH_POOL_THREADS").is_none() {
            std::env::set_var("HIGRAPH_POOL_THREADS", "4");
        }
    });
}

/// Runs `jobs` through the parallel batch runner on a 4-worker pool, so
/// the threaded path is exercised regardless of host core count.
fn run_on_pool<Prog>(jobs: Vec<BatchJob<'_, Prog>>) -> Vec<BatchResult<Prog::Prop>>
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send,
{
    pin_pool_workers();
    BatchRunner::parallel().run(jobs).0
}

#[test]
fn parallel_batch_is_bit_identical_to_serial_engine_runs() {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let source = higraph::graph::stats::hub_vertex(&graph)
        .map(|v| v.0)
        .unwrap_or(0);

    // ≥ 4 (program × config) points: one program across four designs…
    let configs = [
        AcceleratorConfig::higraph(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::graphdyns(),
        AcceleratorConfig::higraph_with_opts(OptLevel::OE),
    ];
    let jobs: Vec<_> = configs
        .iter()
        .map(|c| BatchJob::new(&c.name, &graph, Bfs::from_source(source), c.clone()))
        .collect();
    let batched = run_on_pool(jobs);
    assert_eq!(batched.len(), configs.len());
    for (result, config) in batched.iter().zip(&configs) {
        let serial = Engine::new(config.clone(), &graph)
            .run(&Bfs::from_source(source))
            .expect("no stall");
        assert_eq!(result.label, config.name);
        assert_eq!(result.properties, serial.properties, "{}", config.name);
        assert_eq!(result.metrics, serial.metrics, "{}", config.name);
    }

    // …and a second program over two designs, so the sweep covers
    // multiple (program × config) combinations end to end.
    let pr_configs = [AcceleratorConfig::higraph(), AcceleratorConfig::graphdyns()];
    let pr_jobs: Vec<_> = pr_configs
        .iter()
        .map(|c| BatchJob::new(&c.name, &graph, PageRank::new(scale.pr_iters), c.clone()))
        .collect();
    for (result, config) in run_on_pool(pr_jobs).iter().zip(&pr_configs) {
        let serial = Engine::new(config.clone(), &graph)
            .run(&PageRank::new(scale.pr_iters))
            .expect("no stall");
        assert_eq!(result.properties, serial.properties, "PR {}", config.name);
        assert_eq!(result.metrics, serial.metrics, "PR {}", config.name);
    }
}

#[test]
fn batched_sliced_runs_match_serial_run_sliced() {
    let graph = Dataset::Vote.build_scaled(16);
    let jobs: Vec<_> = [2usize, 4]
        .into_iter()
        .map(|slices| {
            BatchJob::new(
                &format!("sliced×{slices}"),
                &graph,
                PageRank::new(3),
                AcceleratorConfig::higraph(),
            )
            .sliced(slices, 64)
        })
        .collect();
    let batched = run_on_pool(jobs);
    for (result, slices) in batched.iter().zip([2usize, 4]) {
        let serial = Engine::new(AcceleratorConfig::higraph(), &graph)
            .run_sliced(&PageRank::new(3), slices, 64)
            .expect("no stall");
        assert_eq!(result.properties, serial.properties, "{slices} slices");
        assert_eq!(result.metrics, serial.metrics, "{slices} slices");
        let timing = result.sliced.expect("sliced timing reported");
        assert_eq!(timing.num_slices, slices);
        assert_eq!(timing.swap_cycles_sequential, serial.swap_cycles_sequential);
        assert_eq!(timing.swap_cycles_overlapped, serial.swap_cycles_overlapped);
    }
}

#[test]
fn report_aggregates_and_preserves_job_order() {
    let graph = Dataset::Vote.build_scaled(16);
    let jobs: Vec<_> = (0..6)
        .map(|i| {
            BatchJob::new(
                &format!("job{i}"),
                &graph,
                Bfs::from_source(i),
                AcceleratorConfig::higraph_mini(),
            )
        })
        .collect();
    pin_pool_workers();
    let (results, report) = BatchRunner::parallel().run(jobs);
    let labels: Vec<_> = results.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["job0", "job1", "job2", "job3", "job4", "job5"]);
    assert_eq!(report.jobs, 6);
    assert_eq!(
        report.total_simulated_cycles,
        results.iter().map(|r| r.metrics.cycles).sum::<u64>()
    );
    assert!(report.total_edges_processed > 0);
    assert!(report.sims_per_second() > 0.0);
}

/// Wheel horizons `AcceleratorConfig::validate` must reject: zero,
/// non-powers-of-two, and anything past the 4096-cycle ring maximum.
fn invalid_horizon() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        (3usize..=4096).prop_filter("must not be a power of two", |h| !h.is_power_of_two()),
        4097usize..1_000_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed invalid hot-path knobs surface as [`BatchError::Config`]
    /// whose message names the valid values (the same idiom as every
    /// other `validate` diagnostic) — and never panic, whichever layer
    /// (batch runner or `Engine::try_new`) meets them first.
    #[test]
    fn invalid_arena_and_wheel_configs_error_instead_of_panicking(
        horizon in invalid_horizon(),
        corrupt_arena in proptest::bool::ANY,
    ) {
        let graph = Dataset::Vote.build_scaled(4);
        let mut cfg = AcceleratorConfig::higraph_mini();
        if corrupt_arena {
            cfg.arena_capacity = 0;
        } else {
            cfg.wheel_horizon = horizon;
        }

        // Direct construction refuses with the enumerating diagnostic…
        let reason = Engine::try_new(cfg.clone(), &graph)
            .expect_err("invalid config must not construct an engine");
        if corrupt_arena {
            prop_assert!(reason.contains("valid capacities"), "got: {reason}");
        } else {
            prop_assert!(reason.contains("valid horizons"), "got: {reason}");
            prop_assert!(reason.contains("power"), "got: {reason}");
        }

        // …and the batch runner converts it to a per-job Config error
        // instead of poisoning the sweep.
        let jobs = vec![BatchJob::new("bad-config", &graph, Bfs::from_source(0), cfg)];
        let (results, _) = BatchRunner::serial().run(jobs);
        prop_assert_eq!(results.len(), 1);
        match &results[0].error {
            Some(BatchError::Config(message)) => {
                let expected = if corrupt_arena { "valid capacities" } else { "valid horizons" };
                prop_assert!(message.contains(expected), "got: {message}");
            }
            other => prop_assert!(false, "expected a Config error, got {other:?}"),
        }
    }

    /// The flip side: every in-range capacity and power-of-two horizon
    /// validates, so the rejection above is precise, not conservative.
    #[test]
    fn valid_arena_and_wheel_configs_pass_validation(
        capacity in 1usize..10_000,
        log_horizon in 0u32..13,
    ) {
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.arena_capacity = capacity;
        cfg.wheel_horizon = 1usize << log_horizon;
        prop_assert!(cfg.validate().is_ok());
    }
}
