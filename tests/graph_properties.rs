//! Property-based tests of the graph substrate (proptest): generator
//! invariants, CSR structural soundness, slicing losslessness, and I/O
//! round trips under randomized shapes.

use higraph::graph::builder::EdgeList;
use higraph::graph::gen::{erdos_renyi, grid, power_law, rmat, small_world, RmatConfig};
use higraph::graph::io::{read_edge_list, write_edge_list};
use higraph::graph::slicing::{partition, reassemble};
use higraph::graph::stats::DegreeStats;
use higraph::graph::{Csr, VertexId};
use proptest::prelude::*;
use std::io::Cursor;

/// Structural CSR invariants every generator must uphold.
fn assert_valid(g: &Csr) {
    let offsets = g.offsets_raw();
    assert_eq!(offsets.len(), g.num_vertices() as usize + 1);
    assert_eq!(*offsets.last().unwrap(), g.num_edges());
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    for (_, e) in g.edges() {
        assert!(e.dst.0 < g.num_vertices());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn erdos_invariants(n in 2u32..300, m in 0u64..2000, seed in 0u64..100) {
        let g = erdos_renyi(n, m, 7, seed);
        assert_valid(&g);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn power_law_invariants(n in 2u32..300, m in 1u64..3000, seed in 0u64..100) {
        let g = power_law(n, m, 2.0, 15, seed);
        assert_valid(&g);
        prop_assert_eq!(g.num_edges(), m);
        // hot-vertex cap: no vertex owns more than target/128 + slack
        let s = DegreeStats::of(&g);
        // mirror the generator's cap formula (f64 mean, then floor)
        let mean = (m as f64 / f64::from(n)).max(1.0);
        let cap = (m / 128).max((4.0 * mean) as u64).max(1);
        prop_assert!(s.max <= cap + 2, "max {} cap {cap}", s.max);
    }

    #[test]
    fn rmat_invariants(scale in 2u32..9, ef in 1u32..16, seed in 0u64..100) {
        let g = rmat(
            &RmatConfig { scale, edge_factor: ef, ..RmatConfig::graph500(scale) },
            seed,
        );
        assert_valid(&g);
        prop_assert_eq!(g.num_vertices(), 1 << scale);
        prop_assert_eq!(g.num_edges(), u64::from(ef) << scale);
    }

    #[test]
    fn small_world_invariants(n in 3u32..200, k in 1u32..5, beta in 0.0f64..1.0, seed in 0u64..50) {
        prop_assume!(k < n);
        let g = small_world(n, k, beta, 9, seed);
        assert_valid(&g);
        let s = DegreeStats::of(&g);
        prop_assert_eq!(s.min, u64::from(k));
        prop_assert_eq!(s.max, u64::from(k));
    }

    #[test]
    fn grid_invariants(rows in 1u32..20, cols in 1u32..20, wrap in proptest::bool::ANY) {
        let g = grid(rows, cols, wrap, 3, 0);
        assert_valid(&g);
        prop_assert_eq!(g.num_vertices(), rows * cols);
        if wrap && rows > 1 && cols > 1 {
            let s = DegreeStats::of(&g);
            prop_assert_eq!(s.min, 4);
            prop_assert_eq!(s.max, 4);
        }
    }

    #[test]
    fn transpose_is_involutive_on_edge_multisets(n in 2u32..100, m in 0u64..600, seed in 0u64..50) {
        let g = erdos_renyi(n, m, 31, seed);
        let tt = g.transpose().transpose();
        for u in g.vertices() {
            let mut a: Vec<_> = g.neighbors(u).to_vec();
            let mut b: Vec<_> = tt.neighbors(u).to_vec();
            a.sort_by_key(|e| (e.dst, e.weight));
            b.sort_by_key(|e| (e.dst, e.weight));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn slicing_is_lossless(n in 2u32..150, m in 1u64..900, slices in 1usize..9, seed in 0u64..50) {
        let g = erdos_renyi(n, m, 7, seed);
        let parts = partition(&g, slices);
        prop_assert_eq!(parts.len(), slices);
        let total: u64 = parts.iter().map(|s| s.graph.num_edges()).sum();
        prop_assert_eq!(total, m);
        let r = reassemble(&parts).expect("non-empty");
        for u in g.vertices() {
            let mut a: Vec<_> = g.neighbors(u).to_vec();
            let mut b: Vec<_> = r.neighbors(u).to_vec();
            a.sort_by_key(|e| (e.dst, e.weight));
            b.sort_by_key(|e| (e.dst, e.weight));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn io_round_trip(n in 2u32..100, m in 1u64..400, seed in 0u64..50) {
        let g = erdos_renyi(n, m, 31, seed);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(Cursor::new(buf), 31, 0).expect("read");
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for u in back.vertices() {
            prop_assert_eq!(back.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn edge_list_builder_agrees_with_manual_counting(
        edges in proptest::collection::vec((0u32..40, 0u32..40, 1u32..9), 0..200),
    ) {
        let mut list = EdgeList::new(40);
        for &(s, d, w) in &edges {
            list.push(s, d, w).expect("in range");
        }
        let g = list.into_csr();
        assert_valid(&g);
        for v in 0..40u32 {
            let expected = edges.iter().filter(|&&(s, _, _)| s == v).count() as u64;
            prop_assert_eq!(g.out_degree(VertexId(v)), expected, "vertex {}", v);
        }
    }
}
