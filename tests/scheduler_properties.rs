//! Property-based tests of the cycle scheduler (`higraph_sim::clock`).
//!
//! The invariants under randomized traffic and shapes:
//!
//! * driven through the shared [`ClockedComponent`] protocol, a packet
//!   crosses an MDP-network in no fewer cycles than its inter-stage hop
//!   count — "trading latency for throughput" means at most one stage
//!   per cycle, never a same-cycle shortcut;
//! * the scheduler's drain delivers every packet exactly once (no loss,
//!   no duplication) and its cycle accounting matches the fabric's own
//!   cycle counter;
//! * the stall guard converts backpressure deadlocks into errors instead
//!   of hangs.
//!
//! The tests compose a packet source with the fabric into one
//! [`ClockedComponent`] — the same pattern the accelerator engine uses
//! for its scatter pipeline — so `Scheduler::drain` owns the whole loop.
//!
//! The second half covers the event-driven fast-forward path
//! (`docs/simulation.md`): on random graphs, across serial / sliced /
//! sharded execution with the memory model on and off, the
//! fast-forward scheduler must drain in exactly the same cycle count
//! and produce bit-identical [`Metrics`] as the naive per-cycle loop —
//! and a component advertising an over-optimistic `next_activity`
//! window must be caught by a debug assertion, not silently corrupt
//! timing.
//!
//! The third section proves the cycle-exact checkpoint/restore
//! contract (`docs/robustness.md`): at a randomized cycle budget the
//! serial and sharded engines park into a serialized checkpoint, and a
//! fresh engine restored from those bytes must finish with properties
//! and [`Metrics`] bit-identical to an uninterrupted run — across the
//! memory model on/off and fast-forward on/off.
//!
//! The final section pins the event wheel to its legacy oracle: the
//! indexed window selection (`higraph_sim::wheel`) must return exactly
//! the minimum the retired O(components) poll would have folded, at
//! every selection of a drain, under randomized traffic and wheel
//! horizons — directly on a [`DramSystem`], and (via the debug-build
//! oracle asserts embedded in `DramSystem::next_activity` and the
//! multi-chip executor) across all execution modes.

use higraph::mdp::{MdpNetwork, Topology};
use higraph::prelude::*;
use higraph::sim::{ClockedComponent, DramTiming, MemoryChannel, Network, Packet, Scheduler};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct P {
    dest: usize,
    input: usize,
    tag: u64,
}

impl Packet for P {
    fn dest(&self) -> usize {
        self.dest
    }
}

/// A packet source composed with the fabric under test: drained only when
/// every pending packet has been injected *and* the fabric is empty.
struct Harness {
    net: MdpNetwork<P>,
    pending: Vec<P>,
    cursor: usize,
}

impl ClockedComponent for Harness {
    fn tick(&mut self) {
        self.net.tick();
    }

    fn in_flight(&self) -> usize {
        self.net.in_flight() + (self.pending.len() - self.cursor)
    }
}

impl Harness {
    fn new(net: MdpNetwork<P>, pending: Vec<P>) -> Self {
        Harness {
            net,
            pending,
            cursor: 0,
        }
    }

    /// Offers the next pending packet; returns it on acceptance.
    fn inject(&mut self) -> Option<P> {
        let p = *self.pending.get(self.cursor)?;
        if self.net.push(p.input, p).is_ok() {
            self.cursor += 1;
            Some(p)
        } else {
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packets_advance_at_most_one_stage_per_cycle(
        log_n in 1usize..6,
        cap in 1usize..6,
        traffic in proptest::collection::vec((0usize..32, 0usize..32), 1..120),
    ) {
        let n = 1 << log_n;
        let topo = Topology::new(n, 2).expect("valid shape");
        let stages = topo.num_stages() as u64;
        let to_send: Vec<P> = traffic
            .iter()
            .enumerate()
            .map(|(i, &(input, dest))| P { dest: dest % n, input: input % n, tag: i as u64 })
            .collect();
        let total = to_send.len();
        let mut harness = Harness::new(MdpNetwork::new(topo, cap), to_send);

        // tag → cycle the packet was accepted
        let mut pushed_at: HashMap<u64, u64> = HashMap::new();
        let mut received: Vec<(u64, u64)> = Vec::new(); // (tag, arrival cycle)

        let mut scheduler = Scheduler::new().with_stall_guard(200_000);
        let spent = scheduler
            .drain(&mut harness, |h, cycle| {
                for o in 0..n {
                    if let Some(p) = h.net.pop(o) {
                        assert_eq!(p.dest, o, "misrouted packet");
                        received.push((p.tag, cycle));
                    }
                }
                if let Some(p) = h.inject() {
                    pushed_at.insert(p.tag, cycle);
                }
            })
            .expect("bounded traffic must drain");
        prop_assert_eq!(scheduler.cycles(), spent);

        // every packet was injected and arrived exactly once…
        prop_assert_eq!(received.len(), total, "lost or duplicated packets");
        // …and no packet beat the stage latency. A push is the write into
        // the stage-0 FIFO; each of the remaining `stages - 1` hops costs
        // one tick, and the final output read happens on a later cycle's
        // combinational phase — so at-most-one-stage-per-cycle means a
        // crossing can never take fewer than max(stages - 1, 1) cycles.
        let min_latency = (stages - 1).max(1);
        for &(tag, arrived) in &received {
            let pushed = pushed_at[&tag];
            prop_assert!(
                arrived >= pushed + min_latency,
                "tag {tag} crossed a {stages}-stage fabric in {} cycles (min {min_latency})",
                arrived - pushed
            );
        }
    }

    #[test]
    fn drain_cycle_accounting_matches_fabric_stats(
        log_n in 1usize..5,
        count in 1usize..40,
    ) {
        let n = 1 << log_n;
        let topo = Topology::new(n, 2).expect("valid");
        let to_send: Vec<P> = (0..count)
            .map(|i| P { dest: (i * 7) % n, input: i % n, tag: i as u64 })
            .collect();
        let mut harness = Harness::new(MdpNetwork::new(topo, 4), to_send);
        let mut got = 0usize;
        let mut scheduler = Scheduler::new().with_stall_guard(100_000);
        let spent = scheduler
            .drain(&mut harness, |h, _| {
                for o in 0..n {
                    if h.net.pop(o).is_some() {
                        got += 1;
                    }
                }
                h.inject();
            })
            .expect("drains");
        prop_assert_eq!(got, count);
        // the fabric saw exactly the cycles the scheduler drove
        prop_assert_eq!(harness.net.stats().cycles, spent);
        prop_assert_eq!(
            ClockedComponent::network_stats(&harness.net)
                .expect("fabric keeps stats")
                .delivered,
            count as u64
        );
    }
}

/// The memory configurations the equivalence properties sweep: off
/// (infinite bandwidth) and a deliberately small, slow model so DRAM
/// waits, retries, and rejections all occur on tiny graphs.
fn memory_variants() -> [Option<MemoryConfig>; 2] {
    [
        None,
        Some(MemoryConfig {
            channels: 2,
            banks_per_channel: 2,
            queue_depth: 4,
            ..MemoryConfig::hbm2().with_cache_kb(4)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fast_forward_is_bit_identical_serial_and_sliced(
        num_v in 48u32..160,
        edge_factor in 4u32..10,
        seed in 0u64..1_000,
        mem_idx in 0usize..2,
    ) {
        let g = higraph::graph::gen::erdos_renyi(num_v, u64::from(num_v * edge_factor), 31, seed);
        let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.memory = memory_variants()[mem_idx];
        // serial
        let run = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run(&prog).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        prop_assert_eq!(&fast.properties, &naive.properties);
        prop_assert_eq!(&fast.metrics, &naive.metrics);
        // sliced (the Sec. 5.3 large-graph schedule shares the drains)
        let run_sliced = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run_sliced(&prog, 3, 32).expect("no stall")
        };
        let naive = run_sliced(false);
        let fast = run_sliced(true);
        prop_assert_eq!(&fast.properties, &naive.properties);
        prop_assert_eq!(&fast.metrics, &naive.metrics);
        prop_assert_eq!(fast.swap_cycles_sequential, naive.swap_cycles_sequential);
        prop_assert_eq!(fast.swap_cycles_overlapped, naive.swap_cycles_overlapped);
    }

    #[test]
    fn fast_forward_is_bit_identical_sharded(
        num_v in 48u32..140,
        edge_factor in 4u32..9,
        seed in 0u64..1_000,
        chips in 2usize..5,
        mem_idx in 0usize..2,
    ) {
        let g = higraph::graph::gen::erdos_renyi(num_v, u64::from(num_v * edge_factor), 31, seed);
        let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.memory = memory_variants()[mem_idx];
        let run = |fast: bool| {
            let mut engine = ShardedEngine::new(cfg.clone(), ShardConfig::new(chips), &g);
            engine.set_fast_forward(fast);
            engine.run(&prog).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        prop_assert_eq!(&fast.properties, &naive.properties);
        prop_assert_eq!(&fast.metrics, &naive.metrics);
        prop_assert_eq!(&fast.chips, &naive.chips);
        prop_assert_eq!(&fast.link, &naive.link);
        prop_assert_eq!(fast.cross_chip_packets, naive.cross_chip_packets);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The wheel-vs-poll oracle, checked at every drain step: drive a
    /// [`higraph::sim::DramSystem`] through the exact fast-forward
    /// discipline `Scheduler::drain_with` uses (select a window, skip it
    /// in bulk when positive, tick otherwise), and at every selection
    /// assert the wheel's `next_activity` equals the legacy
    /// `poll_next_activity` fold it replaced. Randomized traffic shapes
    /// exercise dirty re-registration (accepts), due wakes, bulk
    /// `advance`, and overflow migration (small horizons force wakes
    /// beyond the ring).
    #[test]
    fn wheel_window_matches_legacy_poll_at_every_step(
        channels in 1usize..5,
        banks in 1usize..4,
        depth in 1usize..5,
        log_horizon in 0u32..13, // horizons 1 ..= 4096, all powers of two
        lines in proptest::collection::vec(0u64..512, 1..160),
    ) {
        use higraph::sim::DramSystem;
        let mut dram = DramSystem::new(channels, banks, depth, 4, DramTiming::default());
        dram.set_wheel_horizon(1usize << log_horizon);
        let mut cursor = 0usize;
        let mut spent = 0u64;
        while cursor < lines.len() || dram.in_flight() > 0 {
            prop_assert_eq!(
                dram.next_activity(),
                dram.poll_next_activity(),
                "wheel diverged from the poll oracle at cycle {}",
                spent
            );
            while cursor < lines.len() && dram.try_request(lines[cursor]) {
                cursor += 1;
            }
            // Re-select after the accepts (they dirty the wheel) and
            // fast-forward pure waits the way the scheduler would.
            let window = dram.next_activity();
            prop_assert_eq!(window, dram.poll_next_activity());
            match window {
                Some(w) if w > 0 && cursor >= lines.len() => {
                    dram.skip(w);
                    spent += w;
                }
                _ => {
                    dram.tick();
                    spent += 1;
                }
            }
            while dram.pop_ready().is_some() {}
            prop_assert!(spent < 1_000_000, "stalled: {} lines undelivered", lines.len() - cursor);
        }
        // Quiescent at the end: both sides must agree on `None`.
        prop_assert_eq!(dram.next_activity(), None);
        prop_assert_eq!(dram.poll_next_activity(), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same oracle across execution modes: serial, sliced, and
    /// sharded drains with fast-forward on (the wheel-indexed path) and
    /// the memory model on and off. The step-level comparison lives in
    /// debug asserts inside `DramSystem::next_activity` and the
    /// multi-chip executor's window selection — this property runs under
    /// `cargo test` (debug), so any divergence at any selection of any
    /// drain panics here.
    #[test]
    fn wheel_oracle_holds_across_execution_modes(
        num_v in 48u32..120,
        seed in 0u64..1_000,
        chips in 2usize..4,
        mem_idx in 0usize..2,
    ) {
        let g = higraph::graph::gen::erdos_renyi(num_v, u64::from(num_v * 6), 31, seed);
        let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.memory = memory_variants()[mem_idx];

        let mut engine = Engine::new(cfg.clone(), &g);
        engine.set_fast_forward(true);
        let serial = engine.run(&prog).expect("serial drains");

        let mut engine = Engine::new(cfg.clone(), &g);
        engine.set_fast_forward(true);
        let sliced = engine.run_sliced(&prog, 3, 32).expect("sliced drains");
        prop_assert_eq!(&sliced.properties, &serial.properties);

        let mut engine = ShardedEngine::new(cfg, ShardConfig::new(chips), &g);
        engine.set_fast_forward(true);
        let sharded = engine.run(&prog).expect("sharded drains");
        prop_assert_eq!(&sharded.properties, &serial.properties);
    }
}

/// Early-exit failure for outcome-shape mismatches the `prop_assert*!`
/// macros cannot express (wrong enum variant).
fn fail(msg: &str) -> proptest::test_runner::TestCaseError {
    proptest::test_runner::TestCaseError::Fail(msg.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint/restore bit-identity on the serial engine
    /// (`docs/robustness.md`): park an otherwise-identical run at a
    /// randomized cycle budget, serialize the checkpoint, restore it
    /// into a *fresh* engine, and require the continuation to finish
    /// with the exact properties and [`Metrics`] of the uninterrupted
    /// reference — across the memory model on/off and fast-forward
    /// on/off. An unbudgeted controlled run must also be
    /// indistinguishable from a plain `run`.
    #[test]
    fn checkpoint_restore_is_bit_identical_serial(
        num_v in 48u32..140,
        edge_factor in 4u32..9,
        seed in 0u64..1_000,
        mem_idx in 0usize..2,
        fast in proptest::bool::ANY,
        budget_pct in 1u64..100,
    ) {
        let g = higraph::graph::gen::erdos_renyi(num_v, u64::from(num_v * edge_factor), 31, seed);
        let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.memory = memory_variants()[mem_idx];
        let fresh = || {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine
        };

        let reference = fresh().run(&prog).expect("no stall");

        // Unbudgeted controlled run: completes, bit-identical to `run`.
        let outcome = fresh()
            .run_controlled(&prog, &RunControl::new())
            .expect("no stall");
        let RunOutcome::Done(done) = outcome else {
            return Err(fail("unbudgeted run must complete"));
        };
        prop_assert_eq!(&done.properties, &reference.properties);
        prop_assert_eq!(&done.metrics, &reference.metrics);

        // Budgeted run parks at a committed boundary once the randomized
        // budget is spent; the restored continuation must be exact. A
        // budget landing past the last boundary legitimately completes
        // instead — then the result itself must already be exact.
        let budget = (reference.metrics.cycles * budget_pct / 100).max(1);
        let control = RunControl::new();
        control.set_budget_cycles(Some(budget));
        match fresh().run_controlled(&prog, &control).expect("no stall") {
            RunOutcome::Parked(ck) => {
                prop_assert!(
                    ck.cycles < reference.metrics.cycles,
                    "parked at cycle {} but the full run only takes {}",
                    ck.cycles,
                    reference.metrics.cycles
                );
                let resumed = match fresh()
                    .resume_controlled(&prog, &RunControl::new(), &ck.bytes)
                    .expect("checkpoint must restore")
                {
                    RunOutcome::Done(r) => r,
                    _ => return Err(fail("resume must complete")),
                };
                prop_assert_eq!(&resumed.properties, &reference.properties);
                prop_assert_eq!(&resumed.metrics, &reference.metrics);
            }
            RunOutcome::Done(done) => {
                prop_assert_eq!(&done.properties, &reference.properties);
                prop_assert_eq!(&done.metrics, &reference.metrics);
            }
            RunOutcome::Cancelled => {
                return Err(fail("nobody requested a cancel"));
            }
        }
    }

    /// The same round-trip on the multi-chip engine: a parked
    /// [`ShardedEngine`] continuation must reproduce the uninterrupted
    /// run bit-for-bit — aggregate and per-chip [`Metrics`], link
    /// stats, and cross-chip packet counts included.
    #[test]
    fn checkpoint_restore_is_bit_identical_sharded(
        num_v in 48u32..120,
        edge_factor in 4u32..9,
        seed in 0u64..1_000,
        chips in 2usize..5,
        mem_idx in 0usize..2,
        fast in proptest::bool::ANY,
        budget_pct in 1u64..100,
    ) {
        let g = higraph::graph::gen::erdos_renyi(num_v, u64::from(num_v * edge_factor), 31, seed);
        let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.memory = memory_variants()[mem_idx];
        let fresh = || {
            let mut engine = ShardedEngine::new(cfg.clone(), ShardConfig::new(chips), &g);
            engine.set_fast_forward(fast);
            engine
        };

        let reference = fresh().run(&prog).expect("no stall");

        let budget = (reference.metrics.cycles * budget_pct / 100).max(1);
        let control = RunControl::new();
        control.set_budget_cycles(Some(budget));
        match fresh().run_controlled(&prog, &control).expect("no stall") {
            ShardedOutcome::Parked(ck) => {
                let resumed = match fresh()
                    .resume_controlled(&prog, &RunControl::new(), &ck.bytes)
                    .expect("checkpoint must restore")
                {
                    ShardedOutcome::Done(r) => r,
                    _ => return Err(fail("resume must complete")),
                };
                prop_assert_eq!(&resumed.properties, &reference.properties);
                prop_assert_eq!(&resumed.metrics, &reference.metrics);
                prop_assert_eq!(&resumed.chips, &reference.chips);
                prop_assert_eq!(&resumed.link, &reference.link);
                prop_assert_eq!(resumed.cross_chip_packets, reference.cross_chip_packets);
            }
            ShardedOutcome::Done(done) => {
                prop_assert_eq!(&done.properties, &reference.properties);
                prop_assert_eq!(&done.metrics, &reference.metrics);
                prop_assert_eq!(&done.chips, &reference.chips);
            }
            ShardedOutcome::Cancelled => {
                return Err(fail("nobody requested a cancel"));
            }
        }
    }
}

/// A wrapper that lies about its activity window: it claims more idle
/// cycles than the wrapped DRAM channel really has. The channel's own
/// `skip` debug-asserts the window, so the corruption is caught instead
/// of silently shifting timing.
struct OverOptimistic(MemoryChannel);

impl ClockedComponent for OverOptimistic {
    fn tick(&mut self) {
        self.0.tick();
    }

    fn in_flight(&self) -> usize {
        self.0.in_flight()
    }

    fn next_activity(&mut self) -> Option<u64> {
        self.0.activity_window().map(|w| w + 50)
    }

    fn skip(&mut self, cycles: u64) {
        self.0.skip(cycles);
    }
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "overran the channel's activity window")]
fn over_optimistic_next_activity_is_caught_in_debug_builds() {
    let mut lying = OverOptimistic(MemoryChannel::new(2, 4, DramTiming::default()));
    lying.0.try_request(0, 0, 0);
    lying.tick(); // service in flight: the true window is miss_cycles - 1
    let mut scheduler = Scheduler::new()
        .with_stall_guard(10_000)
        .with_fast_forward(true);
    let _ = scheduler.drain(&mut lying, |ch, _| while ch.0.pop_ready().is_some() {});
}

#[test]
fn stall_guard_surfaces_deadlock_instead_of_hanging() {
    // Nobody pops: the fabric can never drain its delivered-but-unread
    // output, so the guard must fire.
    let topo = Topology::new(4, 2).expect("valid");
    let mut net: MdpNetwork<P> = MdpNetwork::new(topo, 2);
    net.push(
        0,
        P {
            dest: 1,
            input: 0,
            tag: 9,
        },
    )
    .expect("accepts");
    let mut scheduler = Scheduler::new().with_stall_guard(100);
    let err = scheduler.drain(&mut net, |_, _| {}).expect_err("deadlock");
    assert_eq!(err.limit, 100);
    assert_eq!(err.cycles, 100);
    assert!(!net.is_empty(), "packet still inside the fabric");
}
