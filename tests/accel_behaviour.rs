//! Behavioural tests of the accelerator models: the qualitative claims of
//! the paper's evaluation must hold on representative workloads.

use higraph::prelude::*;
use higraph_bench::{Algo, Scale};

#[test]
fn higraph_outperforms_graphdyns_on_conflict_heavy_workloads() {
    // Fig. 8's direction: on irregular low-degree graphs (front-end and
    // dataflow conflicts), HiGraph must beat GraphDynS clearly.
    let g = Dataset::Epinions.build_scaled(16);
    for algo in [Algo::Bfs, Algo::Pr] {
        let hi = algo
            .run(&AcceleratorConfig::higraph(), &g, 4)
            .expect("well-sized config");
        let gd = algo
            .run(&AcceleratorConfig::graphdyns(), &g, 4)
            .expect("well-sized config");
        let speedup = hi.speedup_over(&gd);
        assert!(
            speedup > 1.1,
            "{}: speedup {speedup:.2} too small",
            algo.label()
        );
    }
}

#[test]
fn higraph_mini_sits_between_baseline_and_full() {
    let g = Dataset::Vote.build_scaled(4);
    let gd = Algo::Pr
        .run(&AcceleratorConfig::graphdyns(), &g, 5)
        .expect("well-sized config");
    let mini = Algo::Pr
        .run(&AcceleratorConfig::higraph_mini(), &g, 5)
        .expect("well-sized config");
    let hi = Algo::Pr
        .run(&AcceleratorConfig::higraph(), &g, 5)
        .expect("well-sized config");
    assert!(
        mini.speedup_over(&gd) > 1.05,
        "mini {:.2}",
        mini.speedup_over(&gd)
    );
    assert!(hi.speedup_over(&mini) >= 0.98, "full below mini");
    assert!(hi.speedup_over(&gd) > mini.speedup_over(&gd) * 0.98);
}

#[test]
fn full_opts_reduce_vpe_starvation() {
    // Fig. 10b: starvation must drop substantially from Baseline to
    // OPT-O+OPT-E+OPT-D (the paper reports up to 58%). A scaled-down
    // power-law workload shows the effect clearly (scaled-down RMAT is
    // hot-vertex-capped — see EXPERIMENTS.md's scale notes).
    let g = Dataset::Epinions.build_scaled(8);
    let base = Algo::Pr
        .run(
            &AcceleratorConfig::higraph_with_opts(OptLevel::BASELINE),
            &g,
            3,
        )
        .expect("well-sized config");
    let full = Algo::Pr
        .run(&AcceleratorConfig::higraph_with_opts(OptLevel::OED), &g, 3)
        .expect("well-sized config");
    let reduction =
        1.0 - full.vpe_starvation_cycles as f64 / base.vpe_starvation_cycles.max(1) as f64;
    assert!(
        reduction > 0.30,
        "starvation reduction only {:.0}%",
        reduction * 100.0
    );
}

#[test]
fn frontend_opts_do_nothing_for_in_order_pr() {
    // Fig. 10a, observation 2: on RMAT PR the Offset/Edge arrays are read
    // in order, so the front-end optimizations alone gain (almost)
    // nothing.
    let g = Dataset::Rmat14.build_scaled(8);
    let runs: Vec<Metrics> = OptLevel::ALL
        .iter()
        .map(|&o| {
            Algo::Pr
                .run(&AcceleratorConfig::higraph_with_opts(o), &g, 3)
                .expect("well-sized config")
        })
        .collect();
    let gteps: Vec<f64> = runs.iter().map(Metrics::gteps).collect();
    assert!((gteps[1] - gteps[0]).abs() / gteps[0] < 0.05, "{gteps:?}");
    assert!((gteps[2] - gteps[0]).abs() / gteps[0] < 0.05, "{gteps:?}");
    // and the full design never loses to the baseline
    assert!(gteps[3] >= gteps[0] * 0.99, "{gteps:?}");
}

#[test]
fn opt_d_gains_most_on_conflict_heavy_traffic() {
    // Fig. 10a, observation 1: adding Opt-D brings the largest gain, on a
    // workload whose dataflow propagation actually conflicts. The Twitter
    // stand-in (mean degree 22) keeps the dataflow fabric saturated; the
    // low-degree Epinions stand-in is front-end-bound and shows only a
    // marginal Opt-D effect.
    let g = Dataset::Twitter.build_scaled(8);
    let oe = Algo::Pr
        .run(&AcceleratorConfig::higraph_with_opts(OptLevel::OE), &g, 3)
        .expect("well-sized config");
    let oed = Algo::Pr
        .run(&AcceleratorConfig::higraph_with_opts(OptLevel::OED), &g, 3)
        .expect("well-sized config");
    assert!(
        oed.gteps() > oe.gteps() * 1.05,
        "Opt-D gain too small: {:.2} -> {:.2}",
        oe.gteps(),
        oed.gteps()
    );
}

#[test]
fn scalability_follows_fig11() {
    // HiGraph holds 1 GHz out to 256 channels and throughput grows with
    // channel count; GraphDynS loses its clock past 32 channels.
    let g = Dataset::Rmat14.build_scaled(16);
    let hi32 = Algo::Pr
        .run(&AcceleratorConfig::higraph().scaled_to(32), &g, 3)
        .expect("well-sized config");
    let hi128 = Algo::Pr
        .run(&AcceleratorConfig::higraph().scaled_to(128), &g, 3)
        .expect("well-sized config");
    assert_eq!(hi32.frequency_ghz, 1.0);
    assert_eq!(hi128.frequency_ghz, 1.0);
    assert!(
        hi128.gteps() > hi32.gteps() * 1.2,
        "128ch {:.1} vs 32ch {:.1}",
        hi128.gteps(),
        hi32.gteps()
    );
    let gd64 = AcceleratorConfig::graphdyns().scaled_to(64);
    assert!(gd64.effective_frequency_ghz() < 1.0);
}

#[test]
fn mdp_beats_fifo_plus_crossbar_at_every_buffer_size() {
    // Fig. 12's claim, on a conflict-heavy workload (see
    // `opt_d_gains_most_on_conflict_heavy_traffic` for the dataset choice).
    let g = Dataset::Twitter.build_scaled(8);
    for buffer in [20usize, 80, 160] {
        let mut mdp = AcceleratorConfig::higraph();
        mdp.dataflow_buffer_per_channel = buffer;
        let mut xbar = mdp.clone();
        xbar.dataflow_network = NetworkKind::Crossbar;
        let m = Algo::Pr.run(&mdp, &g, 4).expect("well-sized config");
        let x = Algo::Pr.run(&xbar, &g, 4).expect("well-sized config");
        assert!(
            m.gteps() >= x.gteps() * 0.98,
            "buffer {buffer}: MDP {:.2} vs crossbar {:.2}",
            m.gteps(),
            x.gteps()
        );
    }
}

#[test]
fn pagerank_frontend_in_order_has_few_offset_conflicts() {
    // "the Offset Array and Edge Array are read in order on the PR
    // algorithm, so that no datapath conflict arises in front-end"
    let g = Dataset::Rmat14.build_scaled(16);
    let pr = Algo::Pr
        .run(&AcceleratorConfig::higraph(), &g, 3)
        .expect("well-sized config");
    let bfs = Algo::Bfs
        .run(&AcceleratorConfig::higraph(), &g, 3)
        .expect("well-sized config");
    let pr_rate = pr.offset_conflicts as f64 / pr.scatter_cycles.max(1) as f64;
    let bfs_rate = bfs.offset_conflicts as f64 / bfs.scatter_cycles.max(1) as f64;
    assert!(
        pr_rate < bfs_rate + 0.05,
        "PR conflict rate {pr_rate:.3} should not exceed BFS {bfs_rate:.3}"
    );
    assert!(
        pr_rate < 0.5,
        "PR offset conflicts too frequent: {pr_rate:.3}"
    );
}

#[test]
fn throughput_never_exceeds_ideal() {
    let scale = Scale::tiny();
    for ds in [Dataset::Vote, Dataset::Rmat14] {
        let g = scale.build(ds);
        for algo in Algo::ALL {
            let m = algo
                .run(&AcceleratorConfig::higraph(), &g, scale.pr_iters)
                .expect("well-sized config");
            assert!(
                m.gteps() <= 32.0,
                "{} {}: {:.1} GTEPS exceeds the 32 GTEPS ideal",
                algo.label(),
                ds,
                m.gteps()
            );
        }
    }
}

#[test]
fn metrics_accounting_is_consistent() {
    let g = Dataset::Vote.build_scaled(8);
    let m = Algo::Sssp
        .run(&AcceleratorConfig::higraph_mini(), &g, 3)
        .expect("well-sized config");
    assert_eq!(m.cycles, m.scatter_cycles + m.apply_cycles);
    assert_eq!(m.dataflow_net.delivered, m.edges_processed);
    assert!(m.offset_net.accepted >= 1);
    assert!(m.time_ns() > 0.0);
    // per-channel starvation vector is populated and sums to the total
    assert_eq!(m.vpe_starvation_per_channel.len(), 32);
    assert_eq!(
        m.vpe_starvation_per_channel.iter().sum::<u64>(),
        m.vpe_starvation_cycles
    );
    assert!(m.starvation_imbalance() >= 1.0);
}

#[test]
fn locality_reduces_dataflow_conflicts() {
    // Watts-Strogatz locality dial: with beta = 0 every destination is
    // bank-adjacent to its source, so the baseline crossbar sees far less
    // head-of-line blocking than with uniform-random rewiring.
    use higraph::graph::gen::small_world;
    let run = |beta: f64| {
        let g = small_world(4096, 8, beta, 15, 3);
        let mut engine = Engine::new(AcceleratorConfig::graphdyns(), &g);
        engine.run(&PageRank::new(3)).expect("no stall").metrics
    };
    let local = run(0.0);
    let random = run(1.0);
    let rate = |m: &Metrics| m.dataflow_net.hol_blocked as f64 / m.scatter_cycles.max(1) as f64;
    assert!(
        rate(&local) < rate(&random) * 0.7,
        "local {:.2} vs random {:.2} HoL/cycle",
        rate(&local),
        rate(&random)
    );
}

#[test]
fn dispatcher_read_ports_never_hurt() {
    // the design-choice ablation: extra dispatcher read ports may help,
    // must never hurt (they only add issue opportunities)
    let g = Dataset::Epinions.build_scaled(16);
    let mut one = AcceleratorConfig::higraph_mini();
    one.dispatcher_read_ports = 1;
    let mut two = AcceleratorConfig::higraph_mini();
    two.dispatcher_read_ports = 2;
    let m1 = Algo::Pr.run(&one, &g, 3).expect("well-sized config");
    let m2 = Algo::Pr.run(&two, &g, 3).expect("well-sized config");
    assert!(
        m2.cycles <= m1.cycles + m1.cycles / 50,
        "2R {} vs 1R {}",
        m2.cycles,
        m1.cycles
    );
}
