//! Graph slicing (Sec. 5.3 discussion): processing a graph slice by slice
//! must compute exactly what whole-graph processing computes.
//!
//! Slices partition edges by destination interval, so within one VCPM
//! iteration the scatter phases of all slices can run back to back: each
//! slice only touches its own tProperty interval, and reduction is
//! commutative. We verify the full multi-iteration algorithm matches,
//! both functionally and through the cycle-level engine.

use higraph::graph::slicing::{partition, reassemble};
use higraph::prelude::*;
use higraph::vcpm::reference;

/// Runs a vertex program iteration-by-iteration, executing the scatter
/// phase slice by slice (the on-chip slicing schedule), and returns the
/// final properties.
fn execute_sliced<Prog: VertexProgram>(
    program: &Prog,
    whole: &Csr,
    num_slices: usize,
) -> Vec<Prog::Prop> {
    let slices = partition(whole, num_slices);
    let n = whole.num_vertices() as usize;
    let mut properties: Vec<Prog::Prop> = whole
        .vertices()
        .map(|v| program.init_prop(v, whole))
        .collect();
    let mut active = program.initial_frontier(whole);
    let mut iterations = 0u32;

    while !active.is_empty() {
        if let Some(cap) = program.max_iterations() {
            if iterations >= cap {
                break;
            }
        }
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); n];
        // scatter: one pass per slice over the (shared) active list
        for slice in &slices {
            for &u in &active {
                let u_prop = properties[u.index()];
                for e in slice.graph.neighbors(u) {
                    let imm = program.process_edge(u_prop, e.weight);
                    let t = &mut t_props[e.dst.index()];
                    *t = program.reduce(*t, imm);
                }
            }
        }
        // apply: whole-graph scan (degrees come from the whole graph)
        active.clear();
        for v in whole.vertices() {
            let res = program.apply(v, properties[v.index()], t_props[v.index()], whole);
            if properties[v.index()] != res {
                properties[v.index()] = res;
                active.push(v);
            }
        }
        iterations += 1;
    }
    properties
}

#[test]
fn sliced_execution_matches_whole_graph() {
    let g = higraph::graph::gen::power_law(600, 6000, 2.0, 31, 21);
    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    for slices in [2usize, 3, 7] {
        let bfs = Bfs::from_source(src);
        assert_eq!(
            execute_sliced(&bfs, &g, slices),
            reference::execute(&bfs, &g).properties,
            "BFS with {slices} slices"
        );
        let pr = PageRank::new(5);
        assert_eq!(
            execute_sliced(&pr, &g, slices),
            reference::execute(&pr, &g).properties,
            "PR with {slices} slices"
        );
    }
}

#[test]
fn engine_on_reassembled_partition_matches() {
    // The destination-interval partition is lossless: reassembling it and
    // running the cycle-level engine gives identical results and edge
    // counts (edge order within a vertex changes; reduction commutes).
    let g = higraph::graph::gen::erdos_renyi(400, 3200, 63, 9);
    let slices = partition(&g, 4);
    let r = reassemble(&slices).expect("non-empty partition");
    assert_eq!(r.num_edges(), g.num_edges());

    let src = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
    let prog = Sssp::from_source(src);
    let a = Engine::new(AcceleratorConfig::higraph(), &g)
        .run(&prog)
        .expect("no stall");
    let b = Engine::new(AcceleratorConfig::higraph(), &r)
        .run(&prog)
        .expect("no stall");
    assert_eq!(a.properties, b.properties);
    assert_eq!(a.metrics.edges_processed, b.metrics.edges_processed);
}

#[test]
fn per_slice_engine_runs_cover_all_edges() {
    // Run the engine on each slice independently with everything active
    // once (a single PR power iteration per slice) and check the edge
    // totals — the throughput accounting basis for sliced processing.
    let g = higraph::graph::gen::power_law(512, 4096, 2.0, 15, 33);
    let slices = partition(&g, 4);
    let mut total = 0;
    for s in &slices {
        let m = Engine::new(AcceleratorConfig::higraph(), &s.graph)
            .run(&PageRank::new(1))
            .expect("no stall")
            .metrics;
        total += m.edges_processed;
    }
    assert_eq!(total, g.num_edges());
}
