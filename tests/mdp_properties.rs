//! Property-based tests of the MDP-network invariants (proptest).
//!
//! The invariants under randomized traffic and shapes:
//!
//! * Algorithm 1 routes every (input, destination) pair to its destination
//!   in exactly `log_radix(n)` hops;
//! * the cycle-level network neither loses nor duplicates packets and
//!   preserves per-flow FIFO order;
//! * the range-splitting variant covers every requested edge exactly once;
//! * the replay engine's chunks tile `{Off, nOff}` without gaps/overlap.

use higraph::mdp::{EdgeRange, MdpNetwork, RangeMdpNetwork, ReplayEngine, Topology};
use higraph::sim::{ClockedComponent, Network, Packet};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct P {
    dest: usize,
    tag: u64,
}

impl Packet for P {
    fn dest(&self) -> usize {
        self.dest
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_routes_all_pairs(log_n in 1usize..7, radix_log in 1usize..3) {
        prop_assume!(log_n % radix_log == 0);
        let n = 1 << log_n;
        let radix = 1 << radix_log;
        let topo = Topology::new(n, radix).expect("valid shape");
        prop_assert_eq!(topo.num_stages(), log_n / radix_log);
        for input in 0..n {
            for dest in 0..n {
                let path = topo.route(input, dest);
                prop_assert_eq!(*path.last().expect("non-empty"), dest);
            }
        }
    }

    #[test]
    fn stage_modules_partition_channels(log_n in 1usize..8) {
        let n = 1 << log_n;
        let topo = Topology::new(n, 2).expect("valid");
        for stage in topo.stages() {
            let mut seen = vec![false; n];
            for module in &stage.modules {
                prop_assert_eq!(module.channels.len(), 2);
                for &c in &module.channels {
                    prop_assert!(!seen[c]);
                    seen[c] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn network_no_loss_no_duplication(
        log_n in 1usize..6,
        cap in 1usize..6,
        dests in proptest::collection::vec((0usize..1 << 5, 0usize..1 << 5), 1..200),
        seed in 0u64..1000,
    ) {
        let n = 1 << log_n;
        let topo = Topology::new(n, 2).expect("valid");
        let mut net: MdpNetwork<P> = MdpNetwork::new(topo, cap);
        let mut to_send: Vec<P> = dests
            .iter()
            .enumerate()
            .map(|(i, &(input, dest))| P { dest: dest % n, tag: (i as u64) << 8 | (input % n) as u64 })
            .collect();
        let mut received: Vec<P> = Vec::new();
        let mut cursor = 0usize;
        let mut rng = seed;
        for _ in 0..10_000 {
            for o in 0..n {
                if let Some(p) = net.pop(o) {
                    prop_assert_eq!(p.dest, o);
                    received.push(p);
                }
            }
            // push the next pending packet at a pseudo-random input
            if cursor < to_send.len() {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let input = (to_send[cursor].tag & 0xff) as usize;
                if net.push(input, to_send[cursor]).is_ok() {
                    cursor += 1;
                }
            }
            net.tick();
            if cursor == to_send.len() && net.is_empty() {
                break;
            }
        }
        prop_assert_eq!(received.len(), to_send.len(), "lost or stuck packets");
        received.sort_by_key(|p| p.tag);
        to_send.sort_by_key(|p| p.tag);
        prop_assert_eq!(received, to_send);
    }

    #[test]
    fn network_preserves_per_flow_order(
        log_n in 1usize..6,
        count in 1usize..40,
        input in 0usize..32,
        dest in 0usize..32,
    ) {
        let n = 1 << log_n;
        let (input, dest) = (input % n, dest % n);
        let topo = Topology::new(n, 2).expect("valid");
        let mut net: MdpNetwork<P> = MdpNetwork::new(topo, 4);
        let mut sent = 0u64;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            if let Some(p) = net.pop(dest) {
                got.push(p.tag);
            }
            if (sent as usize) < count
                && net.push(input, P { dest, tag: sent }).is_ok() {
                    sent += 1;
                }
            net.tick();
            if got.len() == count {
                break;
            }
        }
        prop_assert_eq!(got, (0..count as u64).collect::<Vec<_>>());
    }

    #[test]
    fn replay_chunks_tile_the_request(
        off in 0u64..10_000,
        len in 0u64..200,
        banks in 1usize..64,
    ) {
        let mut re = ReplayEngine::new(banks);
        prop_assert!(re.load(off, off + len, ()));
        let mut covered = Vec::new();
        while let Some(chunk) = re.emit() {
            // chunks never wrap the interleaving
            let b0 = chunk.off % banks as u64;
            prop_assert!(b0 + u64::from(chunk.len) <= banks as u64);
            covered.extend(chunk.off..chunk.end());
        }
        prop_assert_eq!(covered, (off..off + len).collect::<Vec<_>>());
        prop_assert!(re.is_idle());
    }

    #[test]
    fn range_network_covers_exactly(
        log_n in 1usize..4,
        width_log in 0usize..3,
        requests in proptest::collection::vec((0u64..50, 0usize..32), 1..40),
    ) {
        let n = 1 << log_n;
        let banks = n << width_log;
        let topo = Topology::new(n, 2).expect("valid");
        let mut net: RangeMdpNetwork<u32> = RangeMdpNetwork::new(topo, banks, 4).expect("valid");
        // convert requests into non-wrapping ranges
        let ranges: Vec<EdgeRange<u32>> = requests
            .iter()
            .map(|&(row, start)| {
                let start = start % banks;
                let len = 1 + (row as usize + start) % (banks - start).max(1);
                EdgeRange { off: row * banks as u64 + start as u64, len: len as u32, payload: 7 }
            })
            .collect();
        let expected: u64 = ranges.iter().map(|r| u64::from(r.len)).sum();
        let mut covered: Vec<u64> = Vec::new();
        let mut cursor = 0usize;
        for step in 0..20_000u64 {
            for o in 0..n {
                if let Some(r) = net.pop(o) {
                    prop_assert_eq!(r.payload, 7);
                    covered.extend(r.off..r.end());
                }
            }
            if cursor < ranges.len() {
                let input = (step as usize) % n;
                if net.push(input, ranges[cursor]).is_ok() {
                    cursor += 1;
                }
            }
            net.tick();
            if cursor == ranges.len() && net.is_empty() {
                break;
            }
        }
        prop_assert_eq!(covered.len() as u64, expected);
        let mut sorted_expected: Vec<u64> = ranges.iter().flat_map(|r| r.off..r.end()).collect();
        sorted_expected.sort_unstable();
        covered.sort_unstable();
        prop_assert_eq!(covered, sorted_expected);
    }
}

#[test]
fn fifo_capacity_invariant_under_stress() {
    // deterministic stress: the network never exceeds its buffer budget
    let topo = Topology::new(16, 2).expect("valid");
    let mut net = MdpNetwork::new(topo, 2);
    let budget = net.total_buffer_entries();
    let mut rng = 1u64;
    for cycle in 0..3000u64 {
        for o in 0..16 {
            if cycle % 3 == 0 {
                let _ = net.pop(o);
            }
        }
        for i in 0..16 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let _ = net.push(
                i,
                P {
                    dest: (rng >> 33) as usize % 16,
                    tag: cycle,
                },
            );
        }
        net.tick();
        assert!(net.in_flight() <= budget);
    }
}
