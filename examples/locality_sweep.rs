//! Conflict-sensitivity sweep: how much of HiGraph's advantage comes from
//! destination *irregularity*?
//!
//! Watts–Strogatz graphs dial locality continuously: at rewiring
//! probability `beta = 0` every edge lands on a bank-adjacent neighbour
//! (conflict-free, like a mesh), at `beta = 1` destinations are uniform
//! random (maximum dataflow conflicts). The paper's thesis predicts the
//! HiGraph-over-GraphDynS gap should *grow* with `beta` — regular
//! workloads don't need an MDP-network, irregular ones do.
//!
//! ```sh
//! cargo run --release --example locality_sweep
//! ```

use higraph::graph::gen::small_world;
use higraph::prelude::*;

fn main() {
    println!(
        "{:>5} {:>12} {:>12} {:>9}   (PR, Watts-Strogatz 16K x deg 8)",
        "beta", "GraphDynS", "HiGraph", "speedup"
    );
    for beta in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let graph = small_world(16_384, 8, beta, 63, 7);
        let prog = PageRank::new(5);
        let gd = Engine::new(AcceleratorConfig::graphdyns(), &graph)
            .run(&prog)
            .expect("no stall")
            .metrics;
        let hi = Engine::new(AcceleratorConfig::higraph(), &graph)
            .run(&prog)
            .expect("no stall")
            .metrics;
        println!(
            "{beta:>5.2} {:>7.1} GTEPS {:>7.1} GTEPS {:>8.2}x",
            gd.gteps(),
            hi.gteps(),
            hi.speedup_over(&gd)
        );
    }
    println!(
        "\nThe gap widens monotonically with irregularity: GraphDynS is pinned\n\
         by its centralized 4-channel front-end and conflict-prone crossbar\n\
         regardless of beta, while HiGraph's decentralized fabrics convert\n\
         added randomness into bank-level parallelism — the paper's\n\
         datapath-conflict story in one dial."
    );
}
