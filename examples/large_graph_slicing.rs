//! Processing a graph larger than on-chip memory via destination-interval
//! slicing (the paper's Sec. 5.3 discussion, following Graphicionado),
//! using the engine's cycle-accurate sliced schedule with single- vs
//! double-buffered slice replacement.
//!
//! ```sh
//! cargo run --release --example large_graph_slicing
//! ```

use higraph::graph::slicing::partition;
use higraph::model::MemoryLayout;
use higraph::prelude::*;

fn main() {
    // A graph exceeding the Fig. 7 on-chip vertex/edge budget would take a
    // while to simulate cycle by cycle, so this example demonstrates the
    // machinery on a mid-sized graph with an artificially reduced budget.
    let graph = higraph::graph::gen::power_law(30_000, 360_000, 2.0, 63, 9);
    let layout = MemoryLayout::higraph();
    println!(
        "graph: {} vertices, {} edges (on-chip budget: {} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges(),
        layout.max_vertices(),
        layout.max_edges()
    );

    // Pretend the edge budget is 1/4 of the graph → 4 slices.
    let num_slices = 4usize;
    let slices = partition(&graph, num_slices);
    for s in &slices {
        println!(
            "  slice {}: dst [{:>6}, {:>6})  {:>7} edges",
            s.index,
            s.dst_start,
            s.dst_end,
            s.graph.num_edges()
        );
    }

    // HBM-class off-chip bandwidth: 64 bytes/cycle at 1 GHz.
    let memory_bw = 64;
    let prog = PageRank::new(5);
    let mut engine = Engine::new(AcceleratorConfig::higraph(), &graph);
    let sliced = engine
        .run_sliced(&prog, num_slices, memory_bw)
        .expect("no stall");

    // Same answer as unsliced execution (also checked by integration
    // tests): slicing is a schedule, not an approximation.
    let whole = Engine::new(AcceleratorConfig::higraph(), &graph)
        .run(&prog)
        .expect("no stall");
    assert_eq!(sliced.properties, whole.properties);

    println!("\ncompute cycles            : {}", sliced.metrics.cycles);
    println!(
        "slice swaps (sequential)  : {} cycles",
        sliced.swap_cycles_sequential
    );
    println!(
        "slice swaps (double-buf)  : {} cycles exposed",
        sliced.swap_cycles_overlapped
    );
    let single = sliced.total_cycles_single_buffered();
    let double = sliced.total_cycles_double_buffered();
    println!("end-to-end single-buffered: {single} cycles");
    println!(
        "end-to-end double-buffered: {double} cycles ({:.1}% saved — Sec. 5.3's overlap)",
        100.0 * (single - double) as f64 / single as f64
    );
    println!(
        "sliced vs unsliced compute overhead: {:+.1}%",
        100.0 * (sliced.metrics.cycles as f64 / whole.metrics.cycles as f64 - 1.0)
    );
}
