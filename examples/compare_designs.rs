//! Head-to-head comparison of the three Table 1 designs (HiGraph,
//! HiGraph-mini, GraphDynS) across the four paper algorithms on one
//! dataset — a minature of the paper's Fig. 8/9 experiment.
//!
//! ```sh
//! cargo run --release --example compare_designs [dataset] [divisor]
//! ```
//!
//! `dataset` is one of VT, EP, SL, TW, R14, R16 (default EP); `divisor`
//! scales the dataset down (default 4; use 1 for the full Table 2 size).

use higraph::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .map(|s| {
            Dataset::ALL
                .into_iter()
                .find(|d| d.abbrev().eq_ignore_ascii_case(s))
                .unwrap_or_else(|| panic!("unknown dataset {s}; use VT/EP/SL/TW/R14/R16"))
        })
        .unwrap_or(Dataset::Epinions);
    let divisor: u32 = args
        .get(2)
        .map(|s| s.parse().expect("divisor"))
        .unwrap_or(4);

    let graph = dataset.build_scaled(divisor);
    let source = higraph::graph::stats::hub_vertex(&graph)
        .expect("non-empty")
        .0;
    println!(
        "{dataset} (÷{divisor}): {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let configs = [
        AcceleratorConfig::graphdyns(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::higraph(),
    ];

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "design", "BFS", "SSSP", "SSWP", "PR"
    );
    let mut baseline: Option<[Metrics; 4]> = None;
    for cfg in configs {
        let run = |name: &str| -> Metrics {
            let mut engine = Engine::new(cfg.clone(), &graph);
            match name {
                "BFS" => {
                    engine
                        .run(&Bfs::from_source(source))
                        .expect("no stall")
                        .metrics
                }
                "SSSP" => {
                    engine
                        .run(&Sssp::from_source(source))
                        .expect("no stall")
                        .metrics
                }
                "SSWP" => {
                    engine
                        .run(&Sswp::from_source(source))
                        .expect("no stall")
                        .metrics
                }
                _ => engine.run(&PageRank::new(5)).expect("no stall").metrics,
            }
        };
        let all = [run("BFS"), run("SSSP"), run("SSWP"), run("PR")];
        print!("{:<14}", cfg.name);
        for (i, m) in all.iter().enumerate() {
            match &baseline {
                None => print!(" {:>6.2} GT/s", m.gteps()),
                Some(base) => print!(" {:>5.2}x ({:4.1})", m.speedup_over(&base[i]), m.gteps()),
            }
        }
        println!();
        if baseline.is_none() {
            baseline = Some(all);
        }
    }
    println!("\n(speedups are over GraphDynS, as in the paper's Fig. 8)");
}
