//! Quickstart: run BFS on the cycle-accurate HiGraph model and check it
//! against the software reference executor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use higraph::prelude::*;

fn main() {
    // 1. Build a workload: a synthetic social network with a heavy-tailed
    //    degree distribution (the kind of graph the paper targets).
    let graph = higraph::graph::gen::power_law(10_000, 120_000, 2.0, 63, 42);
    let source = higraph::graph::stats::hub_vertex(&graph)
        .expect("graph is non-empty")
        .0;
    println!(
        "graph: {} vertices, {} edges, mean degree {:.1}; BFS source v{source}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.mean_degree(),
    );

    // 2. Run BFS on the Table 1 HiGraph configuration (32 front-end and 32
    //    back-end channels, MDP-networks at all three interaction points).
    let program = Bfs::from_source(source);
    let mut engine = Engine::new(AcceleratorConfig::higraph(), &graph);
    let result = engine.run(&program).expect("no stall");

    // 3. Validate against the paper's VCPM pseudocode executed in software.
    let reference = higraph::vcpm::execute(&program, &graph);
    assert_eq!(
        result.properties, reference.properties,
        "accelerator must match the reference bit-exactly"
    );

    // 4. Report the paper's metrics.
    let m = &result.metrics;
    println!("cycles            : {}", m.cycles);
    println!("edges processed   : {}", m.edges_processed);
    println!("iterations        : {}", m.iterations);
    println!("clock             : {:.2} GHz", m.frequency_ghz);
    println!("throughput        : {:.2} GTEPS (ideal: 32)", m.gteps());
    println!(
        "vPE starvation    : {} cycles (summed over 32 vPEs)",
        m.vpe_starvation_cycles
    );
    let reached = result
        .properties
        .iter()
        .filter(|&&p| p != higraph::vcpm::INF)
        .count();
    println!("vertices reached  : {reached}/{}", graph.num_vertices());
}
