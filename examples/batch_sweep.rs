//! Batch-runner walkthrough: sweep one workload across design points in
//! parallel and read the aggregate report.
//!
//! ```sh
//! cargo run --release -p higraph --example batch_sweep
//! ```

use higraph::prelude::*;

fn main() {
    // One synthetic social graph shared by every job.
    let graph = higraph::graph::gen::power_law(20_000, 160_000, 2.0, 63, 7);
    let source = higraph::graph::stats::hub_vertex(&graph)
        .expect("non-empty")
        .0;

    // A (program × config) batch: the three Table 1 designs, a narrow
    // dataflow-buffer variant, and a sliced large-graph schedule.
    let mut narrow = AcceleratorConfig::higraph();
    narrow.name = "HiGraph[buf=40]".to_string();
    narrow.dataflow_buffer_per_channel = 40;
    let jobs = vec![
        BatchJob::new(
            "GraphDynS",
            &graph,
            Sssp::from_source(source),
            AcceleratorConfig::graphdyns(),
        ),
        BatchJob::new(
            "HiGraph-mini",
            &graph,
            Sssp::from_source(source),
            AcceleratorConfig::higraph_mini(),
        ),
        BatchJob::new(
            "HiGraph",
            &graph,
            Sssp::from_source(source),
            AcceleratorConfig::higraph(),
        ),
        BatchJob::new("HiGraph[buf=40]", &graph, Sssp::from_source(source), narrow),
        BatchJob::new(
            "HiGraph/6 slices",
            &graph,
            Sssp::from_source(source),
            AcceleratorConfig::higraph(),
        )
        .sliced(6, 64),
    ];

    let (results, report) = BatchRunner::parallel().run(jobs);

    println!(
        "SSSP on a 20k-vertex power-law graph, {} parallel jobs:\n",
        report.jobs
    );
    for r in &results {
        print!(
            "{:<18} {:>6.2} GTEPS  {:>9} cycles",
            r.label,
            r.metrics.gteps(),
            r.metrics.cycles
        );
        match r.sliced {
            Some(t) => println!(
                "  (+{} swap cycles double-buffered)",
                t.swap_cycles_overlapped
            ),
            None => println!(),
        }
    }
    // All design points computed the same answer — the sweep varies
    // timing, never results.
    assert!(results
        .windows(2)
        .all(|w| w[0].properties == w[1].properties));

    println!(
        "\n{} workers, {:.2}s wall — {:.2} sims/s, {:.1}M simulated edges/s",
        report.workers,
        report.wall_seconds,
        report.sims_per_second(),
        report.simulated_meps()
    );
}
