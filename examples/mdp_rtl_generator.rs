//! The automatic MDP-network generator (the paper's open-source artifact):
//! runs Algorithm 1 for a requested channel count and radix, prints the
//! stage/pairing structure, and emits synthesizable Verilog.
//!
//! ```sh
//! cargo run --release --example mdp_rtl_generator [channels] [radix] [out.v]
//! ```

use higraph::mdp::verilog::{self, VerilogOptions};
use higraph::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let channels: usize = args
        .get(1)
        .map(|s| s.parse().expect("channels"))
        .unwrap_or(16);
    let radix: usize = args.get(2).map(|s| s.parse().expect("radix")).unwrap_or(2);

    let topo = match Topology::new(channels, radix) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot generate MDP-network: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "MDP-network: {channels} channels, radix {radix}, {} stages",
        topo.num_stages()
    );
    for (i, stage) in topo.stages().iter().enumerate() {
        let pairs: Vec<String> = stage
            .modules
            .iter()
            .map(|m| format!("{:?}", m.channels))
            .collect();
        println!(
            "  stage {i}: routes on addr bits >>{}, modules {}",
            stage.shift,
            pairs.join(" ")
        );
    }

    // Sanity: every (input, destination) pair reaches its destination.
    for input in 0..channels {
        for dest in 0..channels {
            assert_eq!(*topo.route(input, dest).last().expect("stages"), dest);
        }
    }
    println!(
        "routing check: all {0}x{0} paths deliver correctly",
        channels
    );

    let rtl = verilog::generate(&topo, &VerilogOptions::default());
    let tb = verilog::generate_testbench(&topo, &VerilogOptions::default());
    match args.get(3) {
        Some(path) => {
            std::fs::write(path, &rtl).expect("write RTL file");
            let tb_path = format!("{path}.tb.v");
            std::fs::write(&tb_path, &tb).expect("write testbench file");
            println!(
                "wrote {} lines of Verilog to {path} (+ self-checking testbench {tb_path})",
                rtl.lines().count()
            );
        }
        None => {
            println!(
                "\n// ---- generated RTL ({} lines) ----",
                rtl.lines().count()
            );
            // print just the headline module to keep stdout readable
            for line in rtl.lines().take(24) {
                println!("{line}");
            }
            println!("// … (pass an output path as the 3rd argument for the full file)");
        }
    }
}
