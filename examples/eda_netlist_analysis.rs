//! Graph analytics on an EDA netlist — the application domain the paper's
//! introduction motivates (placement, partitioning, technology mapping).
//!
//! We synthesize a gate-level netlist graph (fan-in bounded, locality
//! biased, with a clock-tree-like hub), then use the accelerator to run:
//!
//! * **BFS** from the primary inputs — logic *levelization*, the first
//!   step of static timing analysis;
//! * **SSSP** with wire-length weights — a min-delay path estimate;
//! * **PageRank** — a congestion/criticality proxy ranking nets by how
//!   much signal flow converges on them.
//!
//! ```sh
//! cargo run --release --example eda_netlist_analysis
//! ```

use higraph::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a synthetic gate-level netlist: `gates` vertices in placement
/// order, each driven by up to `max_fanin` earlier gates (mostly nearby —
/// locality bias — with occasional long wires), plus a high-fanout clock
/// buffer, mirroring the structure placement tools see.
fn synthesize_netlist(gates: u32, max_fanin: u32, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = EdgeList::new(gates);
    let clock_buffer = 0u32;
    for g in 1..gates {
        let fanin = rng.gen_range(1..=max_fanin);
        for _ in 0..fanin {
            // locality: 85% of nets connect within a 64-gate window
            let driver = if g > 1 && rng.gen_bool(0.85) {
                let window = 64.min(g - 1).max(1);
                g - rng.gen_range(1..=window)
            } else {
                rng.gen_range(0..g)
            };
            // weight = estimated wirelength (placement distance)
            let wirelength = (g - driver).clamp(1, 1000);
            edges
                .push(driver, g, wirelength)
                .expect("endpoints in range");
        }
        // every 16th gate is sequential: gets a clock pin
        if g % 16 == 0 {
            edges.push(clock_buffer, g, 1).expect("in range");
        }
    }
    edges.into_csr()
}

fn main() {
    let netlist = synthesize_netlist(20_000, 4, 7);
    println!(
        "netlist: {} gates, {} nets (mean fan-out {:.1})",
        netlist.num_vertices(),
        netlist.num_edges(),
        netlist.mean_degree()
    );

    let cfg = AcceleratorConfig::higraph();

    // Levelization: BFS depth from the clock/primary-input root.
    let bfs = Engine::new(cfg.clone(), &netlist)
        .run(&Bfs::from_source(0))
        .expect("no stall");
    let max_level = bfs
        .properties
        .iter()
        .filter(|&&p| p != INF)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "levelization : {} logic levels, {:.2} GTEPS, {} cycles",
        max_level,
        bfs.metrics.gteps(),
        bfs.metrics.cycles
    );

    // Min-wirelength arrival estimate.
    let sssp = Engine::new(cfg.clone(), &netlist)
        .run(&Sssp::from_source(0))
        .expect("no stall");
    let worst = sssp
        .properties
        .iter()
        .filter(|&&p| p != INF)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "arrival est. : worst path weight {}, {:.2} GTEPS",
        worst,
        sssp.metrics.gteps()
    );

    // Congestion proxy: PageRank highlights convergence points.
    let pr_prog = PageRank::new(10);
    let pr = Engine::new(cfg, &netlist).run(&pr_prog).expect("no stall");
    let mut hot: Vec<(u32, f64)> = netlist
        .vertices()
        .map(|v| (v.0, pr_prog.rank_of(pr.properties[v.index()], &netlist, v)))
        .collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
    println!(
        "congestion   : hottest gates {:?} ({:.2} GTEPS)",
        &hot[..5.min(hot.len())]
            .iter()
            .map(|(g, _)| *g)
            .collect::<Vec<_>>(),
        pr.metrics.gteps()
    );

    // Cross-check one run against the reference executor.
    let reference = higraph::vcpm::execute(&Bfs::from_source(0), &netlist);
    assert_eq!(bfs.properties, reference.properties);
    println!("validated against the software reference ✓");
}
