//! Benchmark dataset registry (Table 2 of the paper).
//!
//! The paper evaluates on four SNAP graphs (Vote, Epinions, Slashdot,
//! Twitter) and two Graph500 R-MAT graphs (R14, R16). This environment has
//! no network access, so the SNAP graphs are *synthesized stand-ins*:
//! power-law graphs with the same vertex count, edge count, and mean degree
//! as the originals (see `DESIGN.md` for the substitution argument). The
//! R-MAT graphs are generated exactly as in the paper.

use crate::csr::Csr;
use crate::gen::{power_law, rmat, RmatConfig};
use crate::stats::DegreeStats;
use std::fmt;

/// The six benchmark datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// Wikipedia who-votes-on-whom (VT): 7K vertices, 0.10M edges, degree 15.
    Vote,
    /// Epinions who-trusts-whom (EP): 76K vertices, 0.51M edges, degree 7.
    Epinions,
    /// Slashdot social network (SL): 82K vertices, 0.95M edges, degree 12.
    Slashdot,
    /// Twitter social circles (TW): 81K vertices, 1.77M edges, degree 22.
    Twitter,
    /// Synthetic Graph500 R-MAT scale 14 (R14): 16K vertices, 1.05M edges.
    Rmat14,
    /// Synthetic Graph500 R-MAT scale 16 (R16): 66K vertices, 4.19M edges.
    Rmat16,
}

impl Dataset {
    /// All datasets in Table 2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Vote,
        Dataset::Epinions,
        Dataset::Slashdot,
        Dataset::Twitter,
        Dataset::Rmat14,
        Dataset::Rmat16,
    ];

    /// The real-world (SNAP stand-in) subset.
    pub const REAL_WORLD: [Dataset; 4] = [
        Dataset::Vote,
        Dataset::Epinions,
        Dataset::Slashdot,
        Dataset::Twitter,
    ];

    /// Two-letter abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::Vote => "VT",
            Dataset::Epinions => "EP",
            Dataset::Slashdot => "SL",
            Dataset::Twitter => "TW",
            Dataset::Rmat14 => "R14",
            Dataset::Rmat16 => "R16",
        }
    }

    /// The Table 2 row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Vote => DatasetSpec {
                dataset: self,
                name: "Vote",
                num_vertices: 7_115,
                num_edges: 103_689,
                mean_degree: 15,
                description: "Wikipedia who-votes-on-whom (synthetic stand-in)",
                synthetic: false,
            },
            Dataset::Epinions => DatasetSpec {
                dataset: self,
                name: "Epinions",
                num_vertices: 75_879,
                num_edges: 508_837,
                mean_degree: 7,
                description: "Epinions who-trusts-whom (synthetic stand-in)",
                synthetic: false,
            },
            Dataset::Slashdot => DatasetSpec {
                dataset: self,
                name: "Slashdot",
                num_vertices: 82_168,
                num_edges: 948_464,
                mean_degree: 12,
                description: "Slashdot social network (synthetic stand-in)",
                synthetic: false,
            },
            Dataset::Twitter => DatasetSpec {
                dataset: self,
                name: "Twitter",
                num_vertices: 81_306,
                num_edges: 1_768_149,
                mean_degree: 22,
                description: "Twitter social circles (synthetic stand-in)",
                synthetic: false,
            },
            Dataset::Rmat14 => DatasetSpec {
                dataset: self,
                name: "RMAT14",
                num_vertices: 1 << 14,
                num_edges: 64 << 14,
                mean_degree: 64,
                description: "Synthetic Graph500 R-MAT, scale 14",
                synthetic: true,
            },
            Dataset::Rmat16 => DatasetSpec {
                dataset: self,
                name: "RMAT16",
                num_vertices: 1 << 16,
                num_edges: 64 << 16,
                mean_degree: 64,
                description: "Synthetic Graph500 R-MAT, scale 16",
                synthetic: true,
            },
        }
    }

    /// Builds the dataset at full Table 2 scale.
    ///
    /// Deterministic: the same dataset is produced on every call.
    pub fn build(self) -> Csr {
        self.build_scaled(1)
    }

    /// Builds the dataset with vertex and edge counts divided by
    /// `divisor` (R-MAT scale reduced by `log2(divisor)`), preserving mean
    /// degree and distribution shape. `divisor = 1` is full scale.
    ///
    /// Scaled-down builds keep experiments fast in CI while the `--full`
    /// mode of the reproduction harness uses `divisor = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or not a power of two, or if scaling
    /// would eliminate the whole graph.
    pub fn build_scaled(self, divisor: u32) -> Csr {
        // lint:allow(panic-freedom): internal helper contract: divisors are the compile-time constants below
        assert!(divisor > 0 && divisor.is_power_of_two());
        let spec = self.spec();
        let seed = 0xD0C5 ^ (self as u64);
        match self {
            Dataset::Rmat14 | Dataset::Rmat16 => {
                let scale = if self == Dataset::Rmat14 { 14 } else { 16 };
                let scale = scale - divisor.trailing_zeros();
                // lint:allow(panic-freedom): documented panic: a scaled-down dataset must keep a usable vertex count
                assert!(scale >= 4, "divisor too large for {self}");
                rmat(&RmatConfig::graph500(scale), seed)
            }
            _ => {
                let n = (spec.num_vertices / divisor).max(16);
                let m = (spec.num_edges / u64::from(divisor)).max(64);
                power_law(n, m, 2.0, 63, seed)
            }
        }
    }

    /// Verifies a built graph against its spec (used in tests and the
    /// `repro table2` harness).
    pub fn verify(self, graph: &Csr) -> bool {
        let spec = self.spec();
        let stats = DegreeStats::of(graph);
        graph.num_vertices() == spec.num_vertices
            && graph.num_edges() == spec.num_edges
            && (stats.mean - spec.mean_degree as f64).abs() / spec.mean_degree as f64 <= 0.55
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// The dataset this row describes.
    pub dataset: Dataset,
    /// Full name.
    pub name: &'static str,
    /// `#Vertices`.
    pub num_vertices: u32,
    /// `#Edges`.
    pub num_edges: u64,
    /// `#Degree` (mean out-degree, rounded as in the paper).
    pub mean_degree: u32,
    /// Description column.
    pub description: &'static str,
    /// Whether the paper itself lists this row as synthetic.
    pub synthetic: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2() {
        assert_eq!(Dataset::Vote.spec().num_vertices, 7_115);
        assert_eq!(Dataset::Rmat14.spec().num_vertices, 16_384);
        assert_eq!(Dataset::Rmat14.spec().num_edges, 1_048_576);
        assert_eq!(Dataset::Rmat16.spec().num_edges, 4_194_304);
        assert_eq!(Dataset::Twitter.spec().mean_degree, 22);
    }

    #[test]
    fn abbrevs_are_paper_labels() {
        let labels: Vec<_> = Dataset::ALL.iter().map(|d| d.abbrev()).collect();
        assert_eq!(labels, ["VT", "EP", "SL", "TW", "R14", "R16"]);
    }

    #[test]
    fn scaled_build_preserves_mean_degree() {
        let g = Dataset::Twitter.build_scaled(16);
        let spec = Dataset::Twitter.spec();
        let stats = DegreeStats::of(&g);
        let expected = spec.num_edges as f64 / f64::from(spec.num_vertices);
        assert!((stats.mean - expected).abs() / expected < 0.2);
    }

    #[test]
    fn vote_full_build_verifies() {
        // Vote is the smallest real-world graph; full-scale build is cheap.
        let g = Dataset::Vote.build();
        assert!(Dataset::Vote.verify(&g));
    }

    #[test]
    fn rmat14_scaled_is_rmat() {
        let g = Dataset::Rmat14.build_scaled(16); // scale 10
        assert_eq!(g.num_vertices(), 1 << 10);
        assert_eq!(g.num_edges(), 64 << 10);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::Vote.build_scaled(8);
        let b = Dataset::Vote.build_scaled(8);
        assert_eq!(a, b);
    }
}
