//! Construction of [`Csr`] graphs from edge lists.

use crate::csr::{Csr, Edge, VertexId, Weight};
use crate::GraphError;

/// An in-memory edge list that can be converted into a [`Csr`].
///
/// Edges may be pushed in any order; conversion performs a counting sort by
/// source vertex, so the resulting CSR keeps each vertex's edges in push
/// order (stable).
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(2, 0, 5)?;
/// list.push(0, 1, 1)?;
/// let g = list.into_csr();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    num_vertices: u32,
    edges: Vec<(u32, u32, Weight)>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an empty edge list with capacity for `cap` edges.
    pub fn with_capacity(num_vertices: u32, cap: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(cap),
        }
    }

    /// Number of vertices this list was declared over.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges pushed so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been pushed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends the directed edge `src -> dst` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is out of
    /// range.
    pub fn push(&mut self, src: u32, dst: u32, weight: Weight) -> Result<(), GraphError> {
        for v in [src, dst] {
            if v >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges.push((src, dst, weight));
        Ok(())
    }

    /// Appends both directions of an undirected edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is out of
    /// range.
    pub fn push_undirected(&mut self, a: u32, b: u32, weight: Weight) -> Result<(), GraphError> {
        self.push(a, b, weight)?;
        if a != b {
            self.push(b, a, weight)?;
        }
        Ok(())
    }

    /// Converts the list into a [`Csr`] via counting sort on source vertex.
    pub fn into_csr(self) -> Csr {
        let n = self.num_vertices as usize;
        let mut counts = vec![0u64; n + 1];
        for &(src, _, _) in &self.edges {
            counts[src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut edges = vec![Edge::default(); self.edges.len()];
        for (src, dst, weight) in self.edges {
            let slot = cursor[src as usize];
            edges[slot as usize] = Edge {
                dst: VertexId(dst),
                weight,
            };
            cursor[src as usize] += 1;
        }
        Csr::from_raw_parts(offsets, edges)
            // lint:allow(panic-freedom): infallible: EdgeList enforces every invariant this CSR constructor checks
            .expect("EdgeList invariants guarantee a structurally valid CSR")
    }
}

impl Extend<(u32, u32, Weight)> for EdgeList {
    fn extend<T: IntoIterator<Item = (u32, u32, Weight)>>(&mut self, iter: T) {
        for (s, d, w) in iter {
            self.push(s, d, w)
                // lint:allow(panic-freedom): Extend cannot return a Result; out-of-range endpoints are a documented panic
                .expect("extended edge endpoints must be in range");
        }
    }
}

/// Incremental CSR builder for callers that already stream edges grouped by
/// source vertex in ascending order (e.g. the generators).
///
/// Compared to [`EdgeList`] this avoids buffering `(src, dst, w)` triples.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_vertices: u32,
    offsets: Vec<u64>,
    edges: Vec<Edge>,
}

impl CsrBuilder {
    /// Creates a builder over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        let mut offsets = Vec::with_capacity(num_vertices as usize + 1);
        offsets.push(0);
        CsrBuilder {
            num_vertices,
            offsets,
            edges: Vec::new(),
        }
    }

    /// Appends all outgoing edges of the *next* vertex in ID order.
    ///
    /// Must be called exactly `num_vertices` times before [`finish`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedCsr`] if called more than
    /// `num_vertices` times, or [`GraphError::VertexOutOfRange`] if a
    /// destination is out of range.
    ///
    /// [`finish`]: CsrBuilder::finish
    pub fn push_vertex<I>(&mut self, neighbors: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (u32, Weight)>,
    {
        if self.offsets.len() > self.num_vertices as usize {
            return Err(GraphError::MalformedCsr {
                detail: "push_vertex called more times than there are vertices".to_string(),
            });
        }
        for (dst, weight) in neighbors {
            if dst >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: dst,
                    num_vertices: self.num_vertices,
                });
            }
            self.edges.push(Edge {
                dst: VertexId(dst),
                weight,
            });
        }
        self.offsets.push(self.edges.len() as u64);
        Ok(())
    }

    /// Finalizes the CSR.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedCsr`] if fewer than `num_vertices`
    /// calls to [`CsrBuilder::push_vertex`] were made.
    pub fn finish(self) -> Result<Csr, GraphError> {
        if self.offsets.len() != self.num_vertices as usize + 1 {
            return Err(GraphError::MalformedCsr {
                detail: format!(
                    "expected {} vertices, got {}",
                    self.num_vertices,
                    self.offsets.len() - 1
                ),
            });
        }
        Csr::from_raw_parts(self.offsets, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let mut list = EdgeList::new(3);
        list.push(2, 0, 5).unwrap();
        list.push(0, 1, 1).unwrap();
        list.push(0, 2, 2).unwrap();
        let g = list.into_csr();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(1)), 0);
        assert_eq!(g.out_degree(VertexId(2)), 1);
        // push order preserved within a vertex
        assert_eq!(g.neighbors(VertexId(0))[0].dst, VertexId(1));
        assert_eq!(g.neighbors(VertexId(0))[1].dst, VertexId(2));
    }

    #[test]
    fn edge_list_rejects_out_of_range() {
        let mut list = EdgeList::new(2);
        assert!(list.push(0, 2, 1).is_err());
        assert!(list.push(2, 0, 1).is_err());
        assert!(list.push(1, 0, 1).is_ok());
    }

    #[test]
    fn undirected_push_adds_both_directions() {
        let mut list = EdgeList::new(3);
        list.push_undirected(0, 1, 9).unwrap();
        list.push_undirected(2, 2, 4).unwrap(); // self loop: only one copy
        let g = list.into_csr();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(VertexId(0)), 1);
        assert_eq!(g.out_degree(VertexId(1)), 1);
        assert_eq!(g.out_degree(VertexId(2)), 1);
    }

    #[test]
    fn extend_works() {
        let mut list = EdgeList::new(4);
        list.extend(vec![(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        assert_eq!(list.len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn csr_builder_streams_by_vertex() {
        let mut b = CsrBuilder::new(3);
        b.push_vertex([(1, 10), (2, 20)]).unwrap();
        b.push_vertex([]).unwrap();
        b.push_vertex([(0, 30)]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.offset_pair(VertexId(1)), (2, 2));
    }

    #[test]
    fn csr_builder_detects_wrong_vertex_count() {
        let mut b = CsrBuilder::new(2);
        b.push_vertex([(0, 1)]).unwrap();
        assert!(b.finish().is_err());

        let mut b = CsrBuilder::new(1);
        b.push_vertex([]).unwrap();
        assert!(b.push_vertex([]).is_err());
    }
}
