//! Recursive-MATrix (R-MAT) graph generator.
//!
//! This is the generator behind the paper's synthetic datasets R14 and R16
//! (Table 2 cites "Introducing the Graph 500"); we use the standard Graph500
//! partition probabilities `a = 0.57, b = 0.19, c = 0.19, d = 0.05` by
//! default. The generated graphs have a heavily skewed degree distribution,
//! which is what makes dataflow-propagation conflicts interesting.

// lint:allow-file(panic-freedom): generator argument checks are the documented public-API panic contract (cold construction, never per-cycle), and every EdgeList::push endpoint is in range by those same bounds
use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::weights::assign_random_weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an R-MAT generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the vertex count (Graph500 "scale"). R14 → 14, R16 → 16.
    pub scale: u32,
    /// Average number of directed edges per vertex (Graph500 "edgefactor").
    /// The paper's R14/R16 have mean degree 64.
    pub edge_factor: u32,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// Maximum edge weight (inclusive); weights are uniform in `1..=max_weight`.
    pub max_weight: u32,
}

impl RmatConfig {
    /// Graph500-style config at the given scale with mean degree 64
    /// (matching R14/R16 in Table 2).
    pub fn graph500(scale: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor: 64,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            max_weight: 63,
        }
    }

    /// Number of vertices this config generates.
    pub fn num_vertices(&self) -> u32 {
        1 << self.scale
    }

    /// Number of directed edges this config generates.
    pub fn num_edges(&self) -> u64 {
        u64::from(self.num_vertices()) * u64::from(self.edge_factor)
    }
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig::graph500(14)
    }
}

/// Generates an R-MAT graph.
///
/// Self-loops are permitted (as in the reference Graph500 kernel); duplicate
/// edges are kept, mirroring multigraph behaviour of the raw generator.
///
/// As required by the Graph500 specification, vertex labels are passed
/// through a random permutation after sampling. Without this step the
/// recursive sampling biases *every* ID bit toward zero (probability
/// `a + b` per bit), which would concentrate a large constant fraction of
/// all traffic on interleaved bank 0 of any `id % k` partitioned memory —
/// an artifact no real-world dataset exhibits.
///
/// # Panics
///
/// Panics if `scale` ≥ 32 or the quadrant probabilities exceed 1.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::{rmat, RmatConfig};
///
/// let g = rmat(&RmatConfig { scale: 6, edge_factor: 8, ..RmatConfig::graph500(6) }, 7);
/// assert_eq!(g.num_vertices(), 64);
/// assert_eq!(g.num_edges(), 64 * 8);
/// ```
pub fn rmat(config: &RmatConfig, seed: u64) -> Csr {
    assert!(config.scale < 32, "scale must stay below 32");
    let d = 1.0 - config.a - config.b - config.c;
    assert!(d >= 0.0, "quadrant probabilities must sum to at most 1");

    let n = config.num_vertices();
    let m = config.num_edges();
    let mut rng = StdRng::seed_from_u64(seed);

    // Graph500 step 2: random vertex relabeling.
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }

    let mut list = EdgeList::with_capacity(n, m as usize);
    for _ in 0..m {
        let (src, dst) = sample_cell(config, &mut rng);
        list.push(perm[src as usize], perm[dst as usize], 0)
            .expect("rmat endpoints are in range by construction");
    }
    let csr = list.into_csr();
    assign_random_weights(csr, 1..=config.max_weight.max(1), seed ^ 0x5eed)
}

/// Samples one (row, column) cell of the recursive adjacency matrix.
fn sample_cell(config: &RmatConfig, rng: &mut StdRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for level in (0..config.scale).rev() {
        let r: f64 = rng.gen();
        let (src_bit, dst_bit) = if r < config.a {
            (0, 0)
        } else if r < config.a + config.b {
            (0, 1)
        } else if r < config.a + config.b + config.c {
            (1, 0)
        } else {
            (1, 1)
        };
        src |= src_bit << level;
        dst |= dst_bit << level;
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig {
            scale: 8,
            edge_factor: 4,
            ..RmatConfig::graph500(8)
        };
        let a = rmat(&cfg, 42);
        let b = rmat(&cfg, 42);
        assert_eq!(a, b);
        let c = rmat(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_match_config() {
        let cfg = RmatConfig {
            scale: 7,
            edge_factor: 16,
            ..RmatConfig::graph500(7)
        };
        let g = rmat(&cfg, 1);
        assert_eq!(g.num_vertices(), 128);
        assert_eq!(g.num_edges(), 128 * 16);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT with Graph500 params has max degree far above the mean.
        let g = rmat(&RmatConfig::graph500(10), 3);
        let stats = DegreeStats::of(&g);
        assert!(stats.max as f64 > 4.0 * stats.mean);
    }

    #[test]
    fn weights_are_in_range() {
        let cfg = RmatConfig {
            scale: 6,
            edge_factor: 4,
            max_weight: 9,
            ..RmatConfig::graph500(6)
        };
        let g = rmat(&cfg, 5);
        for (_, e) in g.edges() {
            assert!((1..=9).contains(&e.weight));
        }
    }
}
