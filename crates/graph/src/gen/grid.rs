//! 2-D mesh (grid) generator.
//!
//! Regular meshes are the opposite extreme from power-law graphs: perfectly
//! balanced degrees and maximal locality. They model EDA-style workloads
//! (placement grids, FPGA routing fabrics, systolic arrays) — the domain
//! the paper's introduction motivates — and serve as the conflict-free
//! control case in experiments: on a mesh, an ideal accelerator should be
//! near its peak throughput.

// lint:allow-file(panic-freedom): generator argument checks are the documented public-API panic contract (cold construction, never per-cycle), and every EdgeList::push endpoint is in range by those same bounds
use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::weights::assign_random_weights;

/// Generates a `rows × cols` 4-neighbour mesh with edges in both
/// directions and uniform random weights in `1..=max_weight`.
///
/// Vertex `(r, c)` has ID `r * cols + c`. With `wrap = true` the mesh
/// becomes a torus (every vertex has degree 4); otherwise border vertices
/// have degree 2–3.
///
/// # Panics
///
/// Panics if either dimension is zero or `max_weight` is zero.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::grid;
///
/// let g = grid(4, 5, false, 7, 1);
/// assert_eq!(g.num_vertices(), 20);
/// // interior vertex (1,1) = ID 6 has 4 neighbours
/// assert_eq!(g.out_degree(higraph_graph::VertexId(6)), 4);
/// ```
pub fn grid(rows: u32, cols: u32, wrap: bool, max_weight: u32, seed: u64) -> Csr {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    assert!(max_weight > 0, "max_weight must be positive");
    let n = rows * cols;
    let mut list = EdgeList::with_capacity(n, 4 * n as usize);
    let id = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let u = id(r, c);
            // east
            if c + 1 < cols {
                list.push(u, id(r, c + 1), 0).expect("in range");
            } else if wrap && cols > 1 {
                list.push(u, id(r, 0), 0).expect("in range");
            }
            // west
            if c > 0 {
                list.push(u, id(r, c - 1), 0).expect("in range");
            } else if wrap && cols > 1 {
                list.push(u, id(r, cols - 1), 0).expect("in range");
            }
            // south
            if r + 1 < rows {
                list.push(u, id(r + 1, c), 0).expect("in range");
            } else if wrap && rows > 1 {
                list.push(u, id(0, c), 0).expect("in range");
            }
            // north
            if r > 0 {
                list.push(u, id(r - 1, c), 0).expect("in range");
            } else if wrap && rows > 1 {
                list.push(u, id(rows - 1, c), 0).expect("in range");
            }
        }
    }
    assign_random_weights(list.into_csr(), 1..=max_weight, seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::VertexId;
    use crate::stats::DegreeStats;

    #[test]
    fn open_mesh_degrees() {
        let g = grid(3, 3, false, 1, 0);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.out_degree(VertexId(4)), 4); // center
        assert_eq!(g.out_degree(VertexId(0)), 2); // corner
        assert_eq!(g.out_degree(VertexId(1)), 3); // edge
        assert_eq!(g.num_edges(), 24); // 12 undirected mesh edges, both ways
    }

    #[test]
    fn torus_is_4_regular() {
        let g = grid(4, 8, true, 3, 1);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(g.num_edges(), 4 * 4 * 8);
    }

    #[test]
    fn single_row_grid() {
        let g = grid(1, 5, false, 1, 0);
        assert_eq!(g.out_degree(VertexId(0)), 1);
        assert_eq!(g.out_degree(VertexId(2)), 2);
    }

    #[test]
    fn mesh_is_symmetric() {
        let g = grid(5, 5, false, 1, 2);
        let t = g.transpose();
        for u in g.vertices() {
            let mut a: Vec<_> = g.neighbors(u).iter().map(|e| e.dst).collect();
            let mut b: Vec<_> = t.neighbors(u).iter().map(|e| e.dst).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(grid(6, 7, true, 9, 3), grid(6, 7, true, 9, 3));
    }
}
