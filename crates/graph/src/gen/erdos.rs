//! Uniform Erdős–Rényi G(n, m) generator.

// lint:allow-file(panic-freedom): generator argument checks are the documented public-API panic contract (cold construction, never per-cycle), and every EdgeList::push endpoint is in range by those same bounds
use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::weights::assign_random_weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random directed graph with `num_vertices` vertices
/// and exactly `num_edges` edges (endpoints i.i.d. uniform; duplicates and
/// self-loops allowed, as in sparse uniform traffic models).
///
/// Weights are uniform in `1..=max_weight`.
///
/// # Panics
///
/// Panics if `num_vertices == 0` and `num_edges > 0`, or `max_weight == 0`.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::erdos_renyi;
///
/// let g = erdos_renyi(100, 500, 63, 11);
/// assert_eq!(g.num_vertices(), 100);
/// assert_eq!(g.num_edges(), 500);
/// ```
pub fn erdos_renyi(num_vertices: u32, num_edges: u64, max_weight: u32, seed: u64) -> Csr {
    assert!(
        num_vertices > 0 || num_edges == 0,
        "cannot place edges in an empty graph"
    );
    assert!(max_weight > 0, "max_weight must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = EdgeList::with_capacity(num_vertices, num_edges as usize);
    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_vertices);
        let dst = rng.gen_range(0..num_vertices);
        list.push(src, dst, 0).expect("endpoints in range");
    }
    assign_random_weights(list.into_csr(), 1..=max_weight, seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 200, 7, 9), erdos_renyi(50, 200, 7, 9));
    }

    #[test]
    fn counts_and_weights() {
        let g = erdos_renyi(64, 256, 5, 2);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 256);
        assert!(g.edges().all(|(_, e)| (1..=5).contains(&e.weight)));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(256, 256 * 16, 3, 4);
        let stats = DegreeStats::of(&g);
        // Binomial(4096, 1/256): mean 16, stdev ~4; max should stay modest.
        assert!(stats.max < 64, "max degree {} too skewed", stats.max);
    }

    #[test]
    fn empty_graph_allowed() {
        let g = erdos_renyi(0, 0, 1, 0);
        assert_eq!(g.num_vertices(), 0);
    }
}
