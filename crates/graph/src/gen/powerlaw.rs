//! Heavy-tailed (power-law) graph generator.
//!
//! SNAP social graphs (Vote, Epinions, Slashdot, Twitter in Table 2) have
//! skewed in- *and* out-degree distributions, but even their hottest
//! vertex receives well under ~2% of all edges (e.g. Epinions' largest
//! in-degree is ≈3 000 of 508 837 edges). This generator therefore draws
//! *both* degree sequences from a truncated discrete power law, caps the
//! hottest vertex at `target_edges / 128` (≈0.8%, matching e.g. Epinions' 0.6%), and pairs sources with a
//! shuffled destination pool — giving exact edge counts, a realistic hot
//! set, and no single vertex that would serialize an entire accelerator
//! bank (an artifact no SNAP graph exhibits).

// lint:allow-file(panic-freedom): generator argument checks are the documented public-API panic contract (cold construction, never per-cycle), and every EdgeList::push endpoint is in range by those same bounds
use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::weights::assign_random_weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed power-law graph with `num_vertices` vertices and
/// exactly `target_edges` edges.
///
/// `alpha` is the power-law exponent of both degree distributions
/// (typical social networks: 1.8–2.5; lower = heavier tail). Out-degrees
/// decide how many edges each source emits; destinations are drawn from an
/// independent in-degree sequence via a shuffled pool, so in-degrees are
/// exact as well. Self-loops and parallel edges may occur, as in raw SNAP
/// exports.
///
/// # Panics
///
/// Panics if `num_vertices == 0`, `alpha <= 1.0`, or `max_weight == 0`.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::power_law;
///
/// let g = power_law(1000, 8000, 2.0, 63, 1);
/// assert_eq!(g.num_vertices(), 1000);
/// assert_eq!(g.num_edges(), 8000);
/// ```
pub fn power_law(
    num_vertices: u32,
    target_edges: u64,
    alpha: f64,
    max_weight: u32,
    seed: u64,
) -> Csr {
    assert!(num_vertices > 0, "need at least one vertex");
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    assert!(max_weight > 0, "max_weight must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    let out_degrees = degree_sequence(&mut rng, num_vertices, target_edges, alpha);
    let in_degrees = degree_sequence(&mut rng, num_vertices, target_edges, alpha);

    // Destination pool: vertex v appears in_degrees[v] times, shuffled.
    let mut pool: Vec<u32> = Vec::with_capacity(target_edges as usize);
    for (v, &d) in in_degrees.iter().enumerate() {
        pool.extend(std::iter::repeat_n(v as u32, d as usize));
    }
    debug_assert_eq!(pool.len() as u64, target_edges);
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.gen_range(0..=i));
    }

    let mut list = EdgeList::with_capacity(num_vertices, target_edges as usize);
    let mut cursor = 0usize;
    for (src, &deg) in out_degrees.iter().enumerate() {
        for _ in 0..deg {
            list.push(src as u32, pool[cursor], 0)
                .expect("endpoints in range");
            cursor += 1;
        }
    }
    assign_random_weights(list.into_csr(), 1..=max_weight, seed ^ 0x5eed)
}

/// Samples a power-law degree sequence summing to exactly `target`, with
/// the hottest vertex capped at `max(target/64, 4·mean)` so no vertex
/// dominates the edge set.
fn degree_sequence(rng: &mut StdRng, n: u32, target: u64, alpha: f64) -> Vec<u64> {
    let mean = (target as f64 / f64::from(n)).max(1.0);
    let cap = ((target / 128).max((4.0 * mean) as u64)).max(1) as f64;
    let max_sample = (f64::from(n)).max(2.0);

    let raw: Vec<f64> = (0..n)
        .map(|_| sample_power(rng, alpha, max_sample))
        .collect();
    let total: f64 = raw.iter().sum();
    let scale = target as f64 / total.max(1.0);
    let scaled: Vec<f64> = raw.iter().map(|d| (d * scale).min(cap)).collect();

    // Largest-remainder rounding to hit `target` exactly.
    let mut assigned: Vec<u64> = scaled.iter().map(|d| *d as u64).collect();
    let mut remaining = target.saturating_sub(assigned.iter().sum::<u64>());
    let mut order: Vec<usize> = (0..n as usize).collect();
    order.sort_by(|&a, &b| {
        let fa = scaled[a] - scaled[a].floor();
        let fb = scaled[b] - scaled[b].floor();
        fb.partial_cmp(&fa).expect("degrees are finite")
    });
    'outer: loop {
        let mut progressed = false;
        for &i in &order {
            if remaining == 0 {
                break 'outer;
            }
            // keep honoring the hot-vertex cap while distributing remainder
            if (assigned[i] as f64) < cap {
                assigned[i] += 1;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            // every vertex is at the cap (tiny graphs): spill round-robin
            for &i in &order {
                if remaining == 0 {
                    break 'outer;
                }
                assigned[i] += 1;
                remaining -= 1;
            }
        }
    }
    assigned
}

/// Samples from a power law on `[1, max)` with exponent `alpha` via
/// inverse transform sampling.
fn sample_power(rng: &mut StdRng, alpha: f64, max: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let exp = 1.0 - alpha;
    let x = (1.0 - u * (1.0 - max.powf(exp))).powf(1.0 / exp);
    x.clamp(1.0, max - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic() {
        assert_eq!(
            power_law(200, 1000, 2.1, 15, 5),
            power_law(200, 1000, 2.1, 15, 5)
        );
    }

    #[test]
    fn exact_edge_count() {
        for seed in 0..5 {
            let g = power_law(333, 2500, 2.0, 63, seed);
            assert_eq!(g.num_edges(), 2500, "seed {seed}");
        }
    }

    #[test]
    fn tail_is_heavy_but_capped() {
        let g = power_law(2000, 20_000, 1.9, 63, 7);
        let out = DegreeStats::of(&g);
        assert!(
            out.max as f64 > 5.0 * out.mean,
            "max {} mean {}",
            out.max,
            out.mean
        );
        // hottest vertex must stay a small fraction of all edges
        assert!(out.max <= 20_000 / 128 + 1, "out max {}", out.max);
        let ind = DegreeStats::of(&g.transpose());
        assert!(ind.max as f64 > 5.0 * ind.mean);
        assert!(ind.max <= 20_000 / 128 + 1, "in max {}", ind.max);
    }

    #[test]
    fn most_vertices_participate() {
        // with mean degree 10, nearly every vertex should have in- and
        // out-edges (reachable core), unlike a rank-1-dominated graph
        let g = power_law(1000, 10_000, 2.0, 3, 11);
        let out = DegreeStats::of(&g);
        let ind = DegreeStats::of(&g.transpose());
        assert!(out.zeros < 100, "out zeros {}", out.zeros);
        assert!(ind.zeros < 100, "in zeros {}", ind.zeros);
    }

    #[test]
    fn hub_source_reaches_most_of_the_graph() {
        let g = power_law(500, 5000, 2.0, 3, 3);
        let hub = g
            .vertices()
            .max_by_key(|&v| g.out_degree(v))
            .expect("non-empty");
        // plain BFS reachability from the hub
        let mut seen = vec![false; 500];
        let mut stack = vec![hub];
        seen[hub.index()] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for e in g.neighbors(u) {
                if !seen[e.dst.index()] {
                    seen[e.dst.index()] = true;
                    stack.push(e.dst);
                }
            }
        }
        assert!(count > 350, "hub reaches only {count}/500");
    }
}
