//! Watts–Strogatz small-world generator.
//!
//! Small-world graphs interpolate between the mesh and the random graph:
//! a ring lattice (every vertex linked to its `k` nearest neighbours on
//! each side) with a fraction `beta` of edges rewired to uniform random
//! endpoints. For the accelerator this dials *locality* continuously —
//! at `beta = 0` dataflow destinations are bank-adjacent (minimal
//! conflicts), at `beta = 1` they are uniform random — which makes the
//! generator useful for conflict-sensitivity sweeps beyond the paper's
//! dataset list.

// lint:allow-file(panic-freedom): generator argument checks are the documented public-API panic contract (cold construction, never per-cycle), and every EdgeList::push endpoint is in range by those same bounds
use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::weights::assign_random_weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed Watts–Strogatz graph: `num_vertices` vertices on
/// a ring, each with edges to its `k` clockwise neighbours, each edge
/// rewired to a uniform random destination with probability `beta`.
///
/// Weights are uniform in `1..=max_weight`.
///
/// # Panics
///
/// Panics if `num_vertices < 2`, `k == 0`, `k >= num_vertices`,
/// `!(0.0..=1.0).contains(&beta)`, or `max_weight == 0`.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::small_world;
///
/// let g = small_world(100, 4, 0.1, 7, 3);
/// assert_eq!(g.num_vertices(), 100);
/// assert_eq!(g.num_edges(), 400); // out-degree exactly k
/// ```
pub fn small_world(num_vertices: u32, k: u32, beta: f64, max_weight: u32, seed: u64) -> Csr {
    assert!(num_vertices >= 2, "need at least two vertices");
    assert!(k > 0 && k < num_vertices, "k must be in 1..num_vertices");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!(max_weight > 0, "max_weight must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = EdgeList::with_capacity(num_vertices, (num_vertices * k) as usize);
    for u in 0..num_vertices {
        for j in 1..=k {
            let dst = if rng.gen_bool(beta) {
                rng.gen_range(0..num_vertices)
            } else {
                (u + j) % num_vertices
            };
            list.push(u, dst, 0).expect("in range");
        }
    }
    assign_random_weights(list.into_csr(), 1..=max_weight, seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn beta_zero_is_a_ring_lattice() {
        let g = small_world(10, 2, 0.0, 3, 0);
        for u in g.vertices() {
            let dsts: Vec<u32> = g.neighbors(u).iter().map(|e| e.dst.0).collect();
            assert_eq!(dsts, vec![(u.0 + 1) % 10, (u.0 + 2) % 10]);
        }
    }

    #[test]
    fn out_degree_is_always_k() {
        for beta in [0.0, 0.3, 1.0] {
            let g = small_world(64, 3, beta, 7, 5);
            let s = DegreeStats::of(&g);
            assert_eq!(s.min, 3, "beta {beta}");
            assert_eq!(s.max, 3, "beta {beta}");
        }
    }

    #[test]
    fn rewiring_breaks_locality() {
        let local = small_world(1000, 4, 0.0, 3, 2);
        let random = small_world(1000, 4, 1.0, 3, 2);
        let spread = |g: &Csr| -> f64 {
            let mut total = 0u64;
            for (u, e) in g.edges() {
                let d = (i64::from(e.dst.0) - i64::from(u.0)).rem_euclid(1000);
                total += d.min(1000 - d) as u64;
            }
            total as f64 / g.num_edges() as f64
        };
        assert!(spread(&local) < 3.0);
        assert!(spread(&random) > 100.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(small_world(50, 2, 0.5, 9, 1), small_world(50, 2, 0.5, 9, 1));
    }
}
