//! Deterministic synthetic graph generators.
//!
//! All generators are seeded explicitly and use [`rand::rngs::StdRng`], so a
//! given `(parameters, seed)` pair always produces the same graph on every
//! platform — a requirement for reproducible experiment tables.
//!
//! * [`rmat()`] — Recursive-MATrix generator with the Graph500 parameters,
//!   used for the paper's R14/R16 datasets (Table 2).
//! * [`erdos`] — uniform Erdős–Rényi G(n, m) graphs.
//! * [`powerlaw`] — heavy-tailed out-degree graphs used as stand-ins for the
//!   SNAP social-network datasets,
//! * [`grid()`] — regular 2-D meshes/tori (EDA placement-style workloads and
//!   the conflict-free control case),
//! * [`smallworld`] — Watts–Strogatz graphs whose rewiring probability
//!   dials destination locality continuously (conflict-sensitivity
//!   sweeps).

pub mod erdos;
pub mod grid;
pub mod powerlaw;
pub mod rmat;
pub mod smallworld;

pub use erdos::erdos_renyi;
pub use grid::grid;
pub use powerlaw::power_law;
pub use rmat::{rmat, RmatConfig};
pub use smallworld::small_world;
