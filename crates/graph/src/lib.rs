//! Graph substrate for the HiGraph reproduction.
//!
//! This crate provides everything the accelerator models need on the data
//! side of the house:
//!
//! * [`Csr`] — the Compressed Sparse Row representation from Fig. 1 of the
//!   paper (Offset / Edge / Property arrays),
//! * [`builder::CsrBuilder`] / [`builder::EdgeList`] — construction from edge
//!   lists,
//! * [`gen`] — deterministic synthetic generators (RMAT as used for the
//!   paper's R14/R16, Erdős–Rényi, power-law),
//! * [`datasets`] — the Table 2 benchmark registry with synthetic stand-ins
//!   for the SNAP graphs,
//! * [`hash`] — a stable FNV-1a content hash over the CSR arrays, the
//!   graph half of every memoization key,
//! * [`io`] — SNAP-format edge-list reading/writing (drop in the real
//!   datasets when you have them),
//! * [`slicing`] — graph slicing for graphs larger than on-chip memory
//!   (Sec. 5.3 discussion),
//! * [`stats`] — degree statistics used to validate generator output.
//!
//! # Example
//!
//! ```
//! use higraph_graph::{builder::EdgeList, VertexId};
//!
//! # fn main() -> Result<(), higraph_graph::GraphError> {
//! let mut edges = EdgeList::new(4);
//! edges.push(0, 1, 3)?;
//! edges.push(0, 2, 1)?;
//! edges.push(2, 3, 7)?;
//! let graph = edges.into_csr();
//! assert_eq!(graph.num_vertices(), 4);
//! assert_eq!(graph.out_degree(VertexId(0)), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod hash;
pub mod io;
pub mod slicing;
pub mod stats;
pub mod weights;

pub use builder::{CsrBuilder, EdgeList};
pub use csr::{Csr, Edge, EdgeId, VertexId, Weight};
pub use datasets::{Dataset, DatasetSpec};

use std::error::Error;
use std::fmt;

/// Number of bits used to quantize vertex IDs and property data on chip.
///
/// Sec. 5.1: "The ID and property data of each vertex are quantified to 19
/// bits to fully use on-chip memory capacity."
pub const ID_BITS: u32 = 19;

/// Largest vertex ID representable in the on-chip 19-bit encoding.
pub const MAX_VERTEX_ID: u32 = (1 << ID_BITS) - 1;

/// Errors produced while constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was at least the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// The declared number of vertices.
        num_vertices: u32,
    },
    /// The graph exceeds the on-chip 19-bit ID encoding.
    TooManyVertices {
        /// The declared number of vertices.
        num_vertices: u64,
    },
    /// CSR arrays are structurally inconsistent.
    MalformedCsr {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::TooManyVertices { num_vertices } => write!(
                f,
                "{num_vertices} vertices exceed the {ID_BITS}-bit on-chip ID encoding",
            ),
            GraphError::MalformedCsr { detail } => write!(f, "malformed CSR: {detail}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::TooManyVertices {
            num_vertices: 1 << 20,
        };
        assert!(e.to_string().contains("19-bit"));
    }

    #[test]
    fn max_vertex_id_matches_bits() {
        assert_eq!(MAX_VERTEX_ID, 524_287);
    }
}
