//! Edge-weight assignment.
//!
//! Sec. 5.1: "For the evaluation on unweighted graphs, random integer
//! weights are assigned." This module provides that pass as a CSR → CSR
//! transformation so generators and dataset loaders share one code path.

use crate::csr::{Csr, Edge, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::RangeInclusive;

/// Replaces every edge weight with a uniform random draw from `range`.
///
/// Deterministic in `(graph, range, seed)`.
///
/// # Panics
///
/// Panics if `range` is empty.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_graph::weights::assign_random_weights;
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(2);
/// list.push(0, 1, 0)?;
/// let g = assign_random_weights(list.into_csr(), 1..=10, 42);
/// assert!((1..=10).contains(&g.edges_raw()[0].weight));
/// # Ok(())
/// # }
/// ```
pub fn assign_random_weights(graph: Csr, range: RangeInclusive<Weight>, seed: u64) -> Csr {
    // lint:allow(panic-freedom): documented panic: an empty weight range cannot be sampled
    assert!(!range.is_empty(), "weight range must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets = graph.offsets_raw().to_vec();
    let edges: Vec<Edge> = graph
        .edges_raw()
        .iter()
        .map(|e| Edge {
            dst: e.dst,
            weight: rng.gen_range(range.clone()),
        })
        .collect();
    // lint:allow(panic-freedom): infallible: reweighting leaves offsets and endpoints untouched
    Csr::from_raw_parts(offsets, edges).expect("reweighting preserves structure")
}

/// Sets every edge weight to `w` (useful for BFS-style unit-weight runs).
pub fn assign_uniform_weight(graph: Csr, w: Weight) -> Csr {
    let offsets = graph.offsets_raw().to_vec();
    let edges: Vec<Edge> = graph
        .edges_raw()
        .iter()
        .map(|e| Edge {
            dst: e.dst,
            weight: w,
        })
        .collect();
    // lint:allow(panic-freedom): infallible: reweighting leaves offsets and endpoints untouched
    Csr::from_raw_parts(offsets, edges).expect("reweighting preserves structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::csr::VertexId;

    fn line(n: u32) -> Csr {
        let mut list = EdgeList::new(n);
        for i in 0..n - 1 {
            list.push(i, i + 1, 0).unwrap();
        }
        list.into_csr()
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let g = line(100);
        let a = assign_random_weights(g.clone(), 3..=9, 1);
        let b = assign_random_weights(g.clone(), 3..=9, 1);
        assert_eq!(a, b);
        assert!(a.edges().all(|(_, e)| (3..=9).contains(&e.weight)));
        // structure untouched
        assert_eq!(a.offsets_raw(), g.offsets_raw());
        assert_eq!(a.neighbors(VertexId(5))[0].dst, VertexId(6));
    }

    #[test]
    fn uniform_weight() {
        let g = assign_uniform_weight(line(10), 1);
        assert!(g.edges().all(|(_, e)| e.weight == 1));
    }

    #[test]
    fn different_seeds_differ() {
        let g = line(200);
        let a = assign_random_weights(g.clone(), 1..=1000, 1);
        let b = assign_random_weights(g, 1..=1000, 2);
        assert_ne!(a, b);
    }
}
