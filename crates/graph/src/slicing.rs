//! Graph slicing for graphs larger than on-chip memory.
//!
//! Sec. 5.3 (Discussion): "For the large graph processing, the graph can be
//! partitioned into small slices, so that each slice is processed on chip
//! \[Graphicionado\]. … the time consumed in the replacement of slices can be
//! overlapped using double buffer design."
//!
//! A slice restricts *destination* vertices to a contiguous interval, so the
//! tProperty array of a slice fits on chip; every slice still scans all
//! source vertices, mirroring Graphicionado's destination-interval slicing.

use crate::csr::{Csr, Edge, VertexId};

/// A destination-interval slice of a larger graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Index of this slice within the partition.
    pub index: usize,
    /// First destination vertex (inclusive) owned by this slice.
    pub dst_start: u32,
    /// One past the last destination vertex owned by this slice.
    pub dst_end: u32,
    /// The sliced graph: same vertex set, only edges whose destination is
    /// in `[dst_start, dst_end)`.
    pub graph: Csr,
    /// Boundary traffic of this slice: edges whose *source* vertex is
    /// owned by a different slice of the same partition. When slices map
    /// to chips, each such edge's update crosses the inter-chip fabric.
    pub cut_edges: u64,
    /// Ghost vertices: distinct source vertices not owned by this slice
    /// that have at least one edge into it. Their IDs and properties must
    /// be replicated (as ghosts) for the slice to scatter locally.
    pub ghost_vertices: u32,
}

impl Slice {
    /// Number of destination vertices owned by this slice.
    pub fn num_owned(&self) -> u32 {
        self.dst_end - self.dst_start
    }

    /// Whether this slice owns destination vertex `v`.
    pub fn owns(&self, v: VertexId) -> bool {
        (self.dst_start..self.dst_end).contains(&v.0)
    }
}

/// Total cut edges reported by a partition: the number of edges whose
/// source and destination are owned by different slices. This is exactly
/// the per-full-frontier packet count on a modeled inter-chip fabric
/// (`tests/sharded_equivalence.rs` holds the two equal by property test).
pub fn total_cut_edges(slices: &[Slice]) -> u64 {
    slices.iter().map(|s| s.cut_edges).sum()
}

/// Partitions `graph` into `num_slices` destination-interval slices.
///
/// Every edge of `graph` appears in exactly one slice; offsets are rebuilt
/// per slice so each slice is a structurally valid [`Csr`].
///
/// # Panics
///
/// Panics if `num_slices == 0`.
///
/// # Example
///
/// ```
/// use higraph_graph::{gen::erdos_renyi, slicing::partition};
///
/// let g = erdos_renyi(64, 512, 3, 1);
/// let slices = partition(&g, 4);
/// assert_eq!(slices.len(), 4);
/// let total: u64 = slices.iter().map(|s| s.graph.num_edges()).sum();
/// assert_eq!(total, 512);
/// ```
pub fn partition(graph: &Csr, num_slices: usize) -> Vec<Slice> {
    // lint:allow(panic-freedom): documented panic: slicing into zero slices has no semantics
    assert!(num_slices > 0, "need at least one slice");
    let n = graph.num_vertices();
    let per = n.div_ceil(num_slices as u32).max(1);
    (0..num_slices)
        .map(|i| {
            let dst_start = (i as u32 * per).min(n);
            let dst_end = ((i as u32 + 1) * per).min(n);
            let mut offsets = Vec::with_capacity(n as usize + 1);
            offsets.push(0u64);
            let mut edges = Vec::new();
            let mut cut_edges = 0u64;
            let mut ghost_vertices = 0u32;
            for u in graph.vertices() {
                let before = edges.len();
                for e in graph.neighbors(u) {
                    if (dst_start..dst_end).contains(&e.dst.0) {
                        edges.push(*e);
                    }
                }
                if !(dst_start..dst_end).contains(&u.0) && edges.len() > before {
                    cut_edges += (edges.len() - before) as u64;
                    ghost_vertices += 1;
                }
                offsets.push(edges.len() as u64);
            }
            Slice {
                index: i,
                dst_start,
                dst_end,
                graph: Csr::from_raw_parts(offsets, edges)
                    // lint:allow(panic-freedom): infallible: each slice copies a structurally valid sub-range of a valid CSR
                    .expect("slice construction preserves CSR validity"),
                cut_edges,
                ghost_vertices,
            }
        })
        .collect()
}

/// Estimated cycles to swap a slice in/out of on-chip memory, given a
/// memory bandwidth in bytes/cycle. With double buffering (Sec. 5.3) this
/// cost overlaps with compute; the engine exposes both modes.
pub fn slice_swap_cycles(slice: &Slice, bytes_per_cycle: u64) -> u64 {
    // Edge array entry: 19-bit dst + weight, stored as 8 bytes on chip;
    // offsets: 8 bytes per vertex.
    let bytes = slice.graph.num_edges() * 8 + u64::from(slice.graph.num_vertices()) * 8;
    bytes.div_ceil(bytes_per_cycle.max(1))
}

/// Reassembles the destination-sliced partition back into the original
/// graph (used to verify the partition is lossless).
///
/// The slices must form a complete partition *in order*: every slice over
/// the same vertex set, destination ranges contiguous and non-overlapping
/// from vertex 0 to the last vertex. Returns `None` for anything else —
/// out-of-order, overlapping, or gapped slices used to be concatenated
/// silently into a structurally valid but wrong [`Csr`].
pub fn reassemble(slices: &[Slice]) -> Option<Csr> {
    let first = slices.first()?;
    let n = first.graph.num_vertices();
    let mut expect_start = 0u32;
    for (i, s) in slices.iter().enumerate() {
        if s.graph.num_vertices() != n {
            return None; // slice of a different graph
        }
        if s.index != i || s.dst_start != expect_start || s.dst_end < s.dst_start {
            return None; // out of order, overlapping, or gapped
        }
        expect_start = s.dst_end;
    }
    if expect_start != n {
        return None; // ranges do not cover the vertex set
    }
    let mut offsets = vec![0u64];
    let mut edges: Vec<Edge> = Vec::new();
    for u in 0..n {
        for s in slices {
            for e in s.graph.neighbors(VertexId(u)) {
                edges.push(*e);
            }
        }
        offsets.push(edges.len() as u64);
    }
    Csr::from_raw_parts(offsets, edges).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{power_law, rmat, RmatConfig};

    #[test]
    fn partition_is_lossless_up_to_order() {
        let g = power_law(128, 1024, 2.0, 7, 3);
        let slices = partition(&g, 4);
        let r = reassemble(&slices).expect("non-empty");
        assert_eq!(r.num_edges(), g.num_edges());
        for u in g.vertices() {
            let mut a: Vec<_> = g.neighbors(u).to_vec();
            let mut b: Vec<_> = r.neighbors(u).to_vec();
            a.sort_by_key(|e| (e.dst, e.weight));
            b.sort_by_key(|e| (e.dst, e.weight));
            assert_eq!(a, b, "vertex {u}");
        }
    }

    #[test]
    fn slices_own_disjoint_destinations() {
        let g = rmat(
            &RmatConfig {
                scale: 8,
                edge_factor: 8,
                ..RmatConfig::graph500(8)
            },
            1,
        );
        let slices = partition(&g, 3);
        for s in &slices {
            for (_, e) in s.graph.edges() {
                assert!((s.dst_start..s.dst_end).contains(&e.dst.0));
            }
        }
        let owned: u32 = slices.iter().map(Slice::num_owned).sum();
        assert_eq!(owned, g.num_vertices());
    }

    #[test]
    fn more_slices_than_vertices_is_ok() {
        let g = power_law(4, 16, 2.0, 3, 0);
        let slices = partition(&g, 8);
        let total: u64 = slices.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn single_slice_has_no_boundary() {
        let g = power_law(96, 700, 2.0, 7, 5);
        let slices = partition(&g, 1);
        assert_eq!(slices[0].cut_edges, 0);
        assert_eq!(slices[0].ghost_vertices, 0);
        assert_eq!(total_cut_edges(&slices), 0);
        assert_eq!(slices[0].graph, g);
    }

    #[test]
    fn cut_edges_count_cross_owner_edges() {
        let g = power_law(128, 1024, 2.0, 7, 11);
        let slices = partition(&g, 4);
        // recount from first principles: an edge is cut when the slice
        // owning its destination does not own its source
        let expect: u64 = g
            .edges()
            .filter(|&(u, e)| {
                let owner = slices.iter().find(|s| s.owns(e.dst)).expect("covered");
                !owner.owns(u)
            })
            .count() as u64;
        assert_eq!(total_cut_edges(&slices), expect);
        // per-slice ghosts never exceed per-slice cut edges
        for s in &slices {
            assert!(u64::from(s.ghost_vertices) <= s.cut_edges);
        }
    }

    #[test]
    fn reassemble_rejects_out_of_order_slices() {
        let g = power_law(64, 512, 2.0, 7, 9);
        let mut slices = partition(&g, 4);
        assert!(reassemble(&slices).is_some());
        slices.swap(1, 2);
        assert!(reassemble(&slices).is_none());
    }

    #[test]
    fn reassemble_rejects_gapped_or_foreign_slices() {
        let g = power_law(64, 512, 2.0, 7, 13);
        let slices = partition(&g, 4);
        // dropping a middle slice leaves a gap
        let gapped: Vec<Slice> = [&slices[0], &slices[2], &slices[3]]
            .into_iter()
            .cloned()
            .collect();
        assert!(reassemble(&gapped).is_none());
        // dropping the tail fails coverage
        assert!(reassemble(&slices[..3]).is_none());
        // a slice of a different graph is rejected
        let other = power_law(32, 256, 2.0, 7, 13);
        let mut mixed = partition(&g, 2);
        mixed[1] = partition(&other, 2).remove(1);
        assert!(reassemble(&mixed).is_none());
    }

    #[test]
    fn swap_cycles_scale_with_size() {
        let g = power_law(64, 512, 2.0, 3, 0);
        let slices = partition(&g, 2);
        let c = slice_swap_cycles(&slices[0], 64);
        assert!(c > 0);
        assert!(slice_swap_cycles(&slices[0], 128) <= c);
    }
}
