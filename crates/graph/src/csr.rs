//! Compressed Sparse Row graph representation (Fig. 1 of the paper).
//!
//! Three arrays encode the graph:
//!
//! * **Offset Array** — indexed by vertex ID; entry `u` stores the position
//!   of `u`'s first outgoing edge in the Edge Array. Reading a vertex's
//!   neighbour list requires *two consecutive* entries (`u` and `u+1`),
//!   which is exactly the one-to-two access pattern the paper's
//!   MDP-network-for-Offset-Array targets.
//! * **Edge Array** — indexed by edge ID; each entry holds the destination
//!   vertex and the edge weight.
//! * **Property Array** — indexed by vertex ID; held by the runtime
//!   (see `higraph-vcpm`), not by [`Csr`] itself, so one graph can run many
//!   algorithms.

use crate::GraphError;
use std::fmt;

/// A vertex identifier.
///
/// On chip these are quantized to [`crate::ID_BITS`] bits; in the simulator
/// we keep them as `u32` and validate the bound at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The index of this vertex as a `usize`, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

/// An edge identifier: the index of an edge in the Edge Array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u64);

impl EdgeId {
    /// The index of this edge as a `usize`, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An edge weight.
///
/// The paper assigns random integer weights to unweighted graphs (Sec. 5.1);
/// weights also fit the 19-bit on-chip quantization.
pub type Weight = u32;

/// One Edge Array entry: destination vertex ID and weight (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Edge {
    /// Destination vertex of this directed edge.
    pub dst: VertexId,
    /// Weight carried by the edge.
    pub weight: Weight,
}

/// A directed graph in CSR format.
///
/// Construct via [`crate::builder::EdgeList`] or [`crate::builder::CsrBuilder`],
/// or the generators in [`crate::gen`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    edges: Vec<Edge>,
}

impl Csr {
    /// Builds a CSR directly from its two arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedCsr`] if `offsets` is empty, not
    /// monotonically non-decreasing, or does not end at `edges.len()`;
    /// [`GraphError::TooManyVertices`] if the vertex count exceeds the
    /// 19-bit ID space; [`GraphError::VertexOutOfRange`] if an edge points
    /// outside the vertex range.
    pub fn from_raw_parts(offsets: Vec<u64>, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::MalformedCsr {
                detail: "offset array must have at least one entry".to_string(),
            });
        }
        let num_vertices = (offsets.len() - 1) as u64;
        if num_vertices > u64::from(crate::MAX_VERTEX_ID) + 1 {
            return Err(GraphError::TooManyVertices { num_vertices });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::MalformedCsr {
                detail: "offset array must be non-decreasing".to_string(),
            });
        }
        // lint:allow(panic-freedom): infallible: the emptiness check above guarantees a last element
        if *offsets.last().expect("non-empty") != edges.len() as u64 {
            return Err(GraphError::MalformedCsr {
                detail: format!(
                    "last offset {} does not match edge count {}",
                    // lint:allow(panic-freedom): infallible: the emptiness check above guarantees a last element
                    offsets.last().expect("non-empty"),
                    edges.len()
                ),
            });
        }
        if offsets[0] != 0 {
            return Err(GraphError::MalformedCsr {
                detail: format!("first offset must be 0, found {}", offsets[0]),
            });
        }
        for e in &edges {
            if u64::from(e.dst.0) >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: e.dst.0,
                    num_vertices: num_vertices as u32,
                });
            }
        }
        Ok(Csr { offsets, edges })
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges in the graph.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// The Offset Array entry for `u`: position of `u`'s first outgoing edge.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn offset(&self, u: VertexId) -> u64 {
        self.offsets[u.index()]
    }

    /// The `(offset, next_offset)` pair for `u` — the one-to-two Offset
    /// Array access performed by the accelerator front-end (Fig. 3 ①).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn offset_pair(&self, u: VertexId) -> (u64, u64) {
        (self.offsets[u.index()], self.offsets[u.index() + 1])
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> u64 {
        let (lo, hi) = self.offset_pair(u);
        hi - lo
    }

    /// The Edge Array entry at `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// The outgoing edges of `u` as a slice of the Edge Array.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[Edge] {
        let (lo, hi) = self.offset_pair(u);
        &self.edges[lo as usize..hi as usize]
    }

    /// Iterates over all vertices in ID order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices()).map(VertexId)
    }

    /// Iterates over `(source, edge)` pairs in Edge Array order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, Edge)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&e| (u, e)))
    }

    /// The raw Offset Array.
    #[inline]
    pub fn offsets_raw(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw Edge Array.
    #[inline]
    pub fn edges_raw(&self) -> &[Edge] {
        &self.edges
    }

    /// Mean out-degree (`#Degree` column of Table 2).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / f64::from(self.num_vertices())
        }
    }

    /// Returns the transpose (all edges reversed), preserving weights.
    ///
    /// Useful for pull-style validation and for building undirected
    /// stand-ins from directed SNAP-like graphs.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices() as usize;
        let mut counts = vec![0u64; n + 1];
        for e in &self.edges {
            counts[e.dst.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut edges = vec![Edge::default(); self.edges.len()];
        for (u, e) in self.edges() {
            let slot = cursor[e.dst.index()];
            edges[slot as usize] = Edge {
                dst: u,
                weight: e.weight,
            };
            cursor[e.dst.index()] += 1;
        }
        Csr { offsets, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_raw_parts(
            vec![0, 2, 3, 4, 4],
            vec![
                Edge {
                    dst: VertexId(1),
                    weight: 1,
                },
                Edge {
                    dst: VertexId(2),
                    weight: 2,
                },
                Edge {
                    dst: VertexId(3),
                    weight: 3,
                },
                Edge {
                    dst: VertexId(3),
                    weight: 4,
                },
            ],
        )
        .expect("valid csr")
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.offset_pair(VertexId(0)), (0, 2));
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(3)), 0);
        assert_eq!(g.neighbors(VertexId(1))[0].dst, VertexId(3));
        assert_eq!(g.edge(EdgeId(3)).weight, 4);
        assert!((g.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_matches_neighbors() {
        let g = diamond();
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0].0, VertexId(0));
        assert_eq!(collected[3], (VertexId(2), g.edge(EdgeId(3))));
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.out_degree(VertexId(3)), 2);
        assert_eq!(t.out_degree(VertexId(0)), 0);
        // transpose twice restores edge multiset per vertex
        let tt = t.transpose();
        for u in g.vertices() {
            let mut a: Vec<_> = g.neighbors(u).to_vec();
            let mut b: Vec<_> = tt.neighbors(u).to_vec();
            a.sort_by_key(|e| (e.dst, e.weight));
            b.sort_by_key(|e| (e.dst, e.weight));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(Csr::from_raw_parts(vec![], vec![]).is_err());
        assert!(Csr::from_raw_parts(vec![1], vec![]).is_err());
        assert!(Csr::from_raw_parts(vec![0, 2, 1], vec![]).is_err());
        assert!(Csr::from_raw_parts(vec![0, 1], vec![]).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let err = Csr::from_raw_parts(
            vec![0, 1],
            vec![Edge {
                dst: VertexId(5),
                weight: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_raw_parts(vec![0], vec![]).expect("empty graph");
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }
}
