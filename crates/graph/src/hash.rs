//! Stable content hashing for graphs.
//!
//! [`Csr::content_hash`] digests exactly the arrays that determine a
//! simulation's behaviour — the Offset Array and the Edge Array
//! (destination, weight) — into a 64-bit FNV-1a value. The hash is a
//! pure function of the graph *content*: rebuilding the same graph
//! through a different construction path (raw parts, `EdgeList`, a
//! clone) yields the same hash, while any structural or weight change
//! yields a different one with overwhelming probability.
//!
//! The primary consumer is result memoization (`higraph-serve` and the
//! DSE sweep key their caches on `(graph hash, config encoding)`), which
//! needs a hash that is stable across processes and platforms. Rust's
//! `std::hash::Hasher` machinery is deliberately *not* used: `DefaultHasher`
//! is documented to vary across releases, and the workspace's
//! determinism contract requires keys that can be written into baselines
//! and compared between runs.

use crate::csr::Csr;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny explicit FNV-1a 64-bit accumulator. Byte-order independence
/// comes from feeding every integer through [`Fnv1a::write_u64`]
/// (little-endian by construction), never through native memory layout.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u64` as eight little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// The current digest.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Domain separators so that structurally different streams cannot
/// collide by concatenation (e.g. an offset value never aliases an edge
/// destination).
const DOMAIN_HEADER: u64 = 0x4849_4752_4150_4801; // "HIGRAPH" | 1
const DOMAIN_OFFSETS: u64 = 0x4849_4752_4150_4802;
const DOMAIN_EDGES: u64 = 0x4849_4752_4150_4803;

impl Csr {
    /// A stable 64-bit content hash of this graph (see the
    /// [module docs](self) for the contract).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(DOMAIN_HEADER);
        h.write_u64(u64::from(self.num_vertices()));
        h.write_u64(self.num_edges());
        h.write_u64(DOMAIN_OFFSETS);
        for &off in self.offsets_raw() {
            h.write_u64(off);
        }
        h.write_u64(DOMAIN_EDGES);
        for e in self.edges_raw() {
            h.write_u64(u64::from(e.dst.0));
            h.write_u64(u64::from(e.weight));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::csr::{Edge, VertexId};

    fn diamond_raw() -> Csr {
        Csr::from_raw_parts(
            vec![0, 2, 3, 4, 4],
            vec![
                Edge {
                    dst: VertexId(1),
                    weight: 1,
                },
                Edge {
                    dst: VertexId(2),
                    weight: 2,
                },
                Edge {
                    dst: VertexId(3),
                    weight: 3,
                },
                Edge {
                    dst: VertexId(3),
                    weight: 4,
                },
            ],
        )
        .expect("valid diamond")
    }

    fn diamond_built() -> Csr {
        let mut edges = EdgeList::new(4);
        edges.push(0, 1, 1).unwrap();
        edges.push(0, 2, 2).unwrap();
        edges.push(1, 3, 3).unwrap();
        edges.push(2, 3, 4).unwrap();
        edges.into_csr()
    }

    #[test]
    fn hash_is_invariant_across_rebuilds() {
        let a = diamond_raw();
        assert_eq!(a.content_hash(), a.content_hash(), "deterministic");
        assert_eq!(a.content_hash(), a.clone().content_hash());
        assert_eq!(
            a.content_hash(),
            diamond_built().content_hash(),
            "construction path must not matter"
        );
    }

    #[test]
    fn hash_distinguishes_content_changes() {
        let base = diamond_raw().content_hash();
        // weight change
        let mut edges = EdgeList::new(4);
        edges.push(0, 1, 9).unwrap();
        edges.push(0, 2, 2).unwrap();
        edges.push(1, 3, 3).unwrap();
        edges.push(2, 3, 4).unwrap();
        assert_ne!(base, edges.into_csr().content_hash());
        // topology change
        let mut edges = EdgeList::new(4);
        edges.push(0, 1, 1).unwrap();
        edges.push(0, 2, 2).unwrap();
        edges.push(1, 3, 3).unwrap();
        edges.push(3, 2, 4).unwrap();
        assert_ne!(base, edges.into_csr().content_hash());
        // extra isolated vertex (same edges)
        let mut edges = EdgeList::new(5);
        edges.push(0, 1, 1).unwrap();
        edges.push(0, 2, 2).unwrap();
        edges.push(1, 3, 3).unwrap();
        edges.push(2, 3, 4).unwrap();
        assert_ne!(base, edges.into_csr().content_hash());
    }

    #[test]
    fn hash_distinguishes_stand_in_datasets() {
        let mut hashes = Vec::new();
        for ds in crate::datasets::Dataset::ALL.iter().take(4) {
            hashes.push(ds.build_scaled(64).content_hash());
        }
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "datasets {i} and {j} collide");
            }
        }
    }

    #[test]
    fn empty_and_trivial_graphs_hash_distinctly() {
        let empty = Csr::from_raw_parts(vec![0], vec![]).unwrap();
        let one_vertex = Csr::from_raw_parts(vec![0, 0], vec![]).unwrap();
        assert_ne!(empty.content_hash(), one_vertex.content_hash());
    }
}
