//! Plain-text edge-list I/O in the SNAP format.
//!
//! The paper's real-world datasets (Table 2) are SNAP exports: one
//! `src dst` (or `src dst weight`) pair per line, `#`-prefixed comment
//! lines, arbitrary whitespace. This module reads and writes that format,
//! so users with access to the original `wiki-Vote.txt`,
//! `soc-Epinions1.txt`, `soc-Slashdot0902.txt` or `ego-Twitter` files can
//! run the harness on the genuine graphs instead of the synthetic
//! stand-ins:
//!
//! ```no_run
//! use higraph_graph::io::read_edge_list;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let file = std::fs::File::open("wiki-Vote.txt")?;
//! let graph = read_edge_list(std::io::BufReader::new(file), 63, 42)?;
//! println!("{} vertices, {} edges", graph.num_vertices(), graph.num_edges());
//! # Ok(())
//! # }
//! ```

use crate::builder::EdgeList;
use crate::csr::{Csr, Weight};
use crate::weights::assign_random_weights;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing an edge-list file.
#[derive(Debug)]
pub enum ReadEdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ReadEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadEdgeListError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ReadEdgeListError::Parse { line, text } => {
                write!(f, "cannot parse edge list line {line}: {text:?}")
            }
        }
    }
}

impl Error for ReadEdgeListError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadEdgeListError::Io(e) => Some(e),
            ReadEdgeListError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadEdgeListError {
    fn from(e: std::io::Error) -> Self {
        ReadEdgeListError::Io(e)
    }
}

/// Reads a SNAP-style edge list into a [`Csr`].
///
/// * lines starting with `#` (or `%`, as some exports use) are comments;
/// * each data line holds `src dst` or `src dst weight`, whitespace
///   separated;
/// * vertex IDs are compacted: the vertex count is `max_id + 1`;
/// * unweighted edges receive uniform random weights in `1..=max_weight`
///   (Sec. 5.1's rule), seeded by `seed`. A mut reference to a reader can
///   be passed.
///
/// # Errors
///
/// Returns [`ReadEdgeListError`] on I/O failure or unparseable lines.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    max_weight: Weight,
    seed: u64,
) -> Result<Csr, ReadEdgeListError> {
    let mut triples: Vec<(u32, u32, Option<Weight>)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok?.parse().ok() };
        let (src, dst) = match (parse(it.next()), parse(it.next())) {
            (Some(s), Some(d)) if s <= u64::from(u32::MAX) && d <= u64::from(u32::MAX) => {
                (s as u32, d as u32)
            }
            _ => {
                return Err(ReadEdgeListError::Parse {
                    line: idx + 1,
                    text: trimmed.to_string(),
                })
            }
        };
        let weight = match it.next() {
            None => None,
            Some(tok) => match tok.parse::<Weight>() {
                Ok(w) => Some(w),
                Err(_) => {
                    return Err(ReadEdgeListError::Parse {
                        line: idx + 1,
                        text: trimmed.to_string(),
                    })
                }
            },
        };
        max_id = max_id.max(src).max(dst);
        triples.push((src, dst, weight));
    }

    let n = if triples.is_empty() { 0 } else { max_id + 1 };
    let all_weighted = !triples.is_empty() && triples.iter().all(|t| t.2.is_some());
    let mut list = EdgeList::with_capacity(n, triples.len());
    for (s, d, w) in &triples {
        list.push(*s, *d, w.unwrap_or(0))
            // lint:allow(panic-freedom): infallible: the builder was sized from max_id scanned over these same edges
            .expect("ids bounded by max_id");
    }
    let csr = list.into_csr();
    if all_weighted {
        Ok(csr)
    } else {
        // Sec. 5.1: random integer weights for unweighted graphs.
        Ok(assign_random_weights(csr, 1..=max_weight.max(1), seed))
    }
}

/// Writes `graph` as a SNAP-style weighted edge list (`src dst weight`
/// per line, with a header comment).
///
/// # Errors
///
/// Propagates I/O errors from `writer`. A mut reference to a writer can be
/// passed.
pub fn write_edge_list<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# higraph edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    writeln!(writer, "# src\tdst\tweight")?;
    for (u, e) in graph.edges() {
        writeln!(writer, "{}\t{}\t{}", u.0, e.dst.0, e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::power_law;
    use std::io::Cursor;

    #[test]
    fn parses_snap_style_input() {
        let text = "\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
0\t1
1\t2

2\t0
";
        let g = read_edge_list(Cursor::new(text), 9, 7).expect("valid");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.edges().all(|(_, e)| (1..=9).contains(&e.weight)));
    }

    #[test]
    fn parses_weighted_input_preserving_weights() {
        let text = "0 1 5\n1 2 7\n";
        let g = read_edge_list(Cursor::new(text), 63, 0).expect("valid");
        let weights: Vec<_> = g.edges().map(|(_, e)| e.weight).collect();
        assert_eq!(weights, vec![5, 7]);
    }

    #[test]
    fn rejects_garbage_lines_with_location() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(text), 1, 0).unwrap_err();
        match err {
            ReadEdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("# only comments\n"), 1, 0).expect("valid");
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = power_law(100, 800, 2.0, 31, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(Cursor::new(buf), 31, 0).expect("read");
        assert_eq!(back.num_edges(), g.num_edges());
        // weighted output → weights preserved → full structural equality
        // up to trailing isolated vertices (IDs are compacted by max id)
        for u in back.vertices() {
            assert_eq!(back.neighbors(u), g.neighbors(u), "vertex {u}");
        }
    }

    #[test]
    fn weight_determinism_by_seed() {
        let text = "0 1\n1 0\n";
        let a = read_edge_list(Cursor::new(text), 63, 5).expect("valid");
        let b = read_edge_list(Cursor::new(text), 63, 5).expect("valid");
        let c = read_edge_list(Cursor::new(text), 63, 6).expect("valid");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
