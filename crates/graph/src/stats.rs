//! Degree statistics, used for generator validation and the Table 2 report.

use crate::csr::Csr;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: u64,
    /// Maximum out-degree.
    pub max: u64,
    /// Mean out-degree (Table 2's `#Degree`).
    pub mean: f64,
    /// Standard deviation of out-degree.
    pub stdev: f64,
    /// Number of vertices with out-degree zero.
    pub zeros: u64,
}

impl DegreeStats {
    /// Computes out-degree statistics for `graph`.
    ///
    /// # Example
    ///
    /// ```
    /// use higraph_graph::{gen::erdos_renyi, stats::DegreeStats};
    ///
    /// let g = erdos_renyi(100, 700, 3, 0);
    /// let s = DegreeStats::of(&g);
    /// assert!((s.mean - 7.0).abs() < 1e-9);
    /// ```
    pub fn of(graph: &Csr) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut zeros = 0u64;
        let mut sum = 0u64;
        let mut sum_sq = 0f64;
        for u in graph.vertices() {
            let d = graph.out_degree(u);
            min = min.min(d);
            max = max.max(d);
            if d == 0 {
                zeros += 1;
            }
            sum += d;
            sum_sq += (d as f64) * (d as f64);
        }
        let mean = sum as f64 / f64::from(n);
        let var = (sum_sq / f64::from(n) - mean * mean).max(0.0);
        DegreeStats {
            min,
            max,
            mean,
            stdev: var.sqrt(),
            zeros,
        }
    }
}

/// The vertex with the largest out-degree (ties broken by lowest ID).
///
/// Benchmark harnesses use this as the traversal source: like the
/// Graph500 rules, sources must lie in the reachable core, and the hub is
/// deterministically so.
///
/// Returns `None` for an empty graph.
pub fn hub_vertex(graph: &Csr) -> Option<crate::VertexId> {
    graph
        .vertices()
        .max_by_key(|&v| (graph.out_degree(v), std::cmp::Reverse(v.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::VertexId;

    #[test]
    fn hub_vertex_finds_max_degree() {
        let mut list = EdgeList::new(4);
        list.push(2, 0, 1).unwrap();
        list.push(2, 1, 1).unwrap();
        list.push(0, 1, 1).unwrap();
        assert_eq!(hub_vertex(&list.into_csr()), Some(VertexId(2)));
        assert_eq!(hub_vertex(&EdgeList::new(0).into_csr()), None);
    }

    #[test]
    fn star_graph_stats() {
        let mut list = EdgeList::new(5);
        for i in 1..5 {
            list.push(0, i, 1).unwrap();
        }
        let s = DegreeStats::of(&list.into_csr());
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4);
        assert_eq!(s.zeros, 4);
        assert!((s.mean - 0.8).abs() < 1e-12);
        // variance = E[d^2]-mean^2 = 16/5 - 0.64 = 2.56; stdev = 1.6
        assert!((s.stdev - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&EdgeList::new(0).into_csr());
        assert_eq!(s, DegreeStats::default());
    }

    #[test]
    fn regular_graph_has_zero_stdev() {
        let mut list = EdgeList::new(8);
        for i in 0..8 {
            list.push(i, (i + 1) % 8, 1).unwrap();
            list.push(i, (i + 3) % 8, 1).unwrap();
        }
        let s = DegreeStats::of(&list.into_csr());
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.stdev, 0.0);
    }
}
