//! The self-hosting gate: the workspace's own sources must lint clean.
//!
//! This is the test-suite twin of CI's `higraph-lint --check` leg — it
//! fails `cargo test` locally before a violation ever reaches CI, and it
//! re-checks the audit trail: every allow pragma in the tree carries a
//! non-empty reason (the parser enforces this; the assertion keeps the
//! contract visible).

use std::path::Path;
use std::process::Command;

use higraph_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_sources_are_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace must lint clean:\n{}{}",
        report
            .violations
            .iter()
            .map(|v| v.render() + "\n")
            .collect::<String>(),
        report.render_summary()
    );
    assert!(
        report.files_scanned > 50,
        "expected the full tree, scanned only {} file(s)",
        report.files_scanned
    );
    for allow in &report.allows {
        assert!(
            !allow.reason.trim().is_empty(),
            "allow without a reason at {}:{}",
            allow.file,
            allow.line
        );
    }
}

#[test]
fn binary_check_exits_zero_on_the_workspace() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let out = Command::new(env!("CARGO_BIN_EXE_higraph-lint"))
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn higraph-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
