// Compliant fixture: the clean tree the exit-code tests expect to pass.

/// Pops the head if present; never panics, never allocates.
pub fn head(v: &mut Vec<u8>) -> Option<u8> {
    v.pop()
}

// lint:allow(determinism): fixture exercising a reasoned allow end to end
pub fn reasoned() -> u64 {
    42
}
