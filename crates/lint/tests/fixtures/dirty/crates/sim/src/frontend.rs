// Deliberately non-compliant fixture: `frontend.rs` is a hot-path
// basename, so steady-state allocation constructs must be flagged.

pub fn tick(xs: &[u32]) -> Vec<u32> {
    let mut scratch = Vec::new();
    scratch.extend(xs.iter().map(|x| x + 1).collect::<Vec<u32>>());
    scratch
}
