// Deliberately non-compliant fixture: one violation per rule family
// (except hot-path-alloc, which lives in frontend.rs — the rule keys on
// hot-path basenames). Never compiled; scanned only by the exit-code
// tests in ../../../fixtures.rs.

use std::collections::HashMap;

pub fn head(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub unsafe fn poke(p: *mut u8) {
    unsafe { *p = 0 };
}

pub struct Comp;

impl ClockedComponent for Comp {
    fn next_activity(&self) -> u64 {
        0
    }
}

// lint:allow(panic-freedom)
pub fn reasonless(v: Option<u8>) -> u8 {
    v.unwrap()
}

impl Snapshot for Comp {
    fn decode(&mut self, bytes: &[u8]) {
        // SAFETY: satisfies unsafe-audit; snapshot-safety still fires
        unsafe { core::hint::unreachable_unchecked() }
    }
}
