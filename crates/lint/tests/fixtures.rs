//! Per-rule bad fixtures, pragma round-trips, and binary exit codes.
//!
//! The in-memory cases drive [`higraph_lint::lint_source`] with virtual
//! paths (rule scoping keys on crate name and basename, so a fixture can
//! pose as any file in the tree). The exit-code cases run the built
//! `higraph-lint` binary against the committed fixture trees under
//! `tests/fixtures/{dirty,clean}` — the same contract CI relies on.

use std::path::Path;
use std::process::Command;

use higraph_lint::{lint_source, Report};

/// Lints `src` as if it lived at `path`; returns the finalized report.
fn lint_at(path: &str, src: &str) -> Report {
    let mut report = Report::default();
    lint_source(path, src, &mut report);
    report.finalize();
    report
}

/// The rule ids that fired, in report order.
fn fired(report: &Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.as_str()).collect()
}

#[test]
fn unsafe_audit_requires_adjacent_safety_comment() {
    let bad = "pub fn f(p: *mut u8) { unsafe { *p = 0 } }\n";
    assert_eq!(
        fired(&lint_at("crates/sim/src/x.rs", bad)),
        ["unsafe-audit"]
    );

    let good = "pub fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p = 0 }\n}\n";
    assert!(lint_at("crates/sim/src/x.rs", good).is_clean());
}

#[test]
fn determinism_bans_wall_clocks_and_hash_iteration() {
    for bad in [
        "use std::time::Instant;\n",
        "use std::collections::HashMap;\n",
        "fn f() -> String { std::env::var(\"HOME\").unwrap_or_default() }\n",
    ] {
        let report = lint_at("crates/sim/src/x.rs", bad);
        assert!(
            fired(&report).contains(&"determinism"),
            "expected determinism to fire on {bad:?}: {:?}",
            fired(&report)
        );
    }
    // BTreeMap iterates in key order: deterministic, allowed.
    assert!(lint_at("crates/sim/src/x.rs", "use std::collections::BTreeMap;\n").is_clean());
}

#[test]
fn panic_freedom_scopes_to_core_crate_library_code() {
    let bad = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert_eq!(
        fired(&lint_at("crates/mdp/src/x.rs", bad)),
        ["panic-freedom"]
    );
    // Same source is fine outside the core crates...
    assert!(lint_at("crates/bench/src/x.rs", bad).is_clean());
    // ...and fine under #[cfg(test)] even in a core crate.
    let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {bad}\n}}\n");
    assert!(lint_at("crates/mdp/src/x.rs", &in_tests).is_clean());
}

#[test]
fn hot_path_alloc_keys_on_hot_path_basenames() {
    let bad = "pub fn tick(&mut self) { self.scratch = Vec::new(); }\n";
    assert_eq!(
        fired(&lint_at("crates/sim/src/wheel.rs", bad)),
        ["hot-path-alloc"]
    );
    // Same construct in a non-hot-path file of the same crate is fine.
    assert!(lint_at("crates/sim/src/config.rs", bad).is_clean());
}

#[test]
fn activity_contract_pairs_next_activity_with_skip() {
    let bad = "impl ClockedComponent for C {\n    fn next_activity(&self) -> u64 { 0 }\n}\n";
    assert_eq!(
        fired(&lint_at("crates/sim/src/x.rs", bad)),
        ["activity-contract"]
    );
    let good = "impl ClockedComponent for C {\n    fn next_activity(&self) -> u64 { 0 }\n    fn skip(&mut self, cycles: u64) {}\n}\n";
    assert!(lint_at("crates/sim/src/x.rs", good).is_clean());
}

#[test]
fn snapshot_safety_bans_unsafe_in_the_codec_even_with_safety_comments() {
    // A SAFETY comment satisfies unsafe-audit, but the codec rule still
    // fires: restore consumes untrusted bytes, so no argument holds.
    let bad = "impl<T: SnapValue> Snapshot for Fifo<T> {\n    fn decode(&mut self, r: &mut Reader) {\n        // SAFETY: satisfies unsafe-audit, not this rule\n        unsafe { core::hint::unreachable_unchecked() }\n    }\n}\n";
    assert_eq!(
        fired(&lint_at("crates/sim/src/x.rs", bad)),
        ["snapshot-safety"]
    );
    // Any `snapshot.rs` is covered in full, impl block or not, and the
    // rule also reaches test modules.
    let bad_file = "#[cfg(test)]\nmod tests {\n    fn shortcut(p: *const u8) {\n        // SAFETY: fixture\n        unsafe { let _ = *p; }\n    }\n}\n";
    assert_eq!(
        fired(&lint_at("crates/sim/src/snapshot.rs", bad_file)),
        ["snapshot-safety"]
    );
    // Safe codec impls and unsafe outside a Snapshot impl are untouched.
    let good = "impl<T: SnapValue> Snapshot for Fifo<T> {\n    fn encode(&self, out: &mut Vec<u8>) {}\n}\n";
    assert!(lint_at("crates/sim/src/x.rs", good).is_clean());
}

#[test]
fn allow_pragma_with_reason_suppresses_and_is_recorded() {
    let src = "// lint:allow(panic-freedom): fixture proof that this cannot be None\npub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let report = lint_at("crates/sim/src/x.rs", src);
    assert!(report.is_clean(), "{:?}", fired(&report));
    assert_eq!(report.allows.len(), 1);
    assert!(report.allows[0].used);
    assert_eq!(
        report.allows[0].reason,
        "fixture proof that this cannot be None"
    );
}

#[test]
fn allow_pragma_without_reason_is_itself_a_violation() {
    let src = "// lint:allow(panic-freedom)\npub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let report = lint_at("crates/sim/src/x.rs", src);
    // The malformed pragma suppresses nothing, so both findings surface.
    let rules = fired(&report);
    assert!(rules.contains(&"bad-pragma"), "{rules:?}");
    assert!(rules.contains(&"panic-freedom"), "{rules:?}");
}

#[test]
fn allow_item_covers_a_whole_constructor() {
    let src = "\
// lint:allow-item(hot-path-alloc): construction-time fixture
pub fn new(n: usize) -> Self {
    Self {
        a: Vec::new(),
        b: (0..n).map(|_| 0u64).collect(),
    }
}
pub fn tick(&mut self) { self.a = Vec::new(); }
";
    let report = lint_at("crates/sim/src/wheel.rs", src);
    // The constructor's two sites are covered; tick() is not.
    assert_eq!(fired(&report), ["hot-path-alloc"]);
    assert_eq!(report.violations[0].line, 8);
    assert!(report.allows[0].used);
}

#[test]
fn unused_allow_is_reported_informationally_not_fatally() {
    let src = "// lint:allow(determinism): nothing here actually needs this\npub fn f() {}\n";
    let report = lint_at("crates/sim/src/x.rs", src);
    assert!(report.is_clean());
    assert_eq!(report.allows.len(), 1);
    assert!(!report.allows[0].used);
    assert!(report.render_summary().contains("unused allow"));
}

/// Runs the built binary with `--check` against a fixture tree root.
fn check_tree(tree: &str) -> std::process::Output {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(tree);
    Command::new(env!("CARGO_BIN_EXE_higraph-lint"))
        .args(["--check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn higraph-lint")
}

#[test]
fn binary_check_fails_on_the_dirty_tree_with_every_family() {
    let out = check_tree("dirty");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "unsafe-audit",
        "determinism",
        "panic-freedom",
        "hot-path-alloc",
        "activity-contract",
        "snapshot-safety",
        "bad-pragma",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn binary_check_passes_on_the_clean_tree() {
    let out = check_tree("clean");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}
