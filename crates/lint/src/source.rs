//! Per-file analysis context shared by every rule pass.
//!
//! [`SourceFile::analyze`] lexes one file and precomputes everything the
//! rules in [`crate::rules`] ask over and over:
//!
//! * which crate the file belongs to and its basename (rule scoping),
//! * which token indices sit inside `#[cfg(test)]` / `#[test]` items
//!   (the panic/determinism/allocation rules exempt test code),
//! * per-line comment text (for `// SAFETY:` audits) and per-line
//!   "contains code" flags (for pragma coverage),
//! * parsed `lint:allow` pragmas, including the malformed ones, which
//!   surface as [`crate::rules::BAD_PRAGMA`] diagnostics.

use crate::lexer::{lex, Tok, Token};

/// Grammar marker for an inline allow. See [`Pragma`].
pub const PRAGMA_LINE: &str = "lint:allow(";
/// Grammar marker for a next-item/statement allow. See [`Pragma`].
pub const PRAGMA_ITEM: &str = "lint:allow-item(";
/// Grammar marker for a whole-file allow. See [`Pragma`].
pub const PRAGMA_FILE: &str = "lint:allow-file(";

/// How far a pragma's allow reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// `lint:allow` — the pragma's own line and the next code line.
    Line,
    /// `lint:allow-item` — the next item or statement, through the
    /// matching `}` of its first brace or its terminating `;` (one
    /// pragma covers a whole constructor, or a multi-line statement).
    Item,
    /// `lint:allow-file` — the whole file.
    File,
}

/// A parsed `// lint:allow(rule-id[, rule-id]*): reason` pragma (or its
/// `allow-item` / `allow-file` scope variants).
///
/// The reason text is mandatory: an allow that cannot say *why* it is
/// safe is exactly the un-reviewable convention this linter replaces.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) never count as pragmas, so
/// documentation may quote the grammar freely.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule ids the pragma allows.
    pub rules: Vec<String>,
    /// Mandatory human-readable justification.
    pub reason: String,
    /// 1-indexed line the pragma comment starts on.
    pub line: usize,
    /// The allow's reach.
    pub scope: PragmaScope,
}

/// A pragma that failed to parse, with what went wrong.
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// 1-indexed line of the malformed pragma.
    pub line: usize,
    /// What is wrong, phrased as an actionable message.
    pub problem: String,
}

/// One analyzed source file plus everything rules need to scan it.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/sim/src/fifo.rs` (used in diagnostics and scoping).
    pub path: String,
    /// The `<name>` of `crates/<name>/…`, or empty outside `crates/`.
    pub crate_name: String,
    /// File basename, e.g. `fifo.rs` (hot-path rule scoping).
    pub file_name: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` ⇔ `tokens[i]` is inside a `#[cfg(test)]`/`#[test]`
    /// item (or a `tests/` / `benches/` file, which are wholly test code).
    pub test_mask: Vec<bool>,
    /// `true` for each 1-indexed line containing at least one code token.
    line_has_code: Vec<bool>,
    /// Comment texts per 1-indexed line (a line can hold several).
    comments: Vec<Vec<String>>,
    /// Well-formed allow pragmas.
    pub pragmas: Vec<Pragma>,
    /// Per-pragma covered line range (inclusive), `None` = whole file.
    coverage: Vec<Option<(usize, usize)>>,
    /// Malformed pragmas (missing reason, unknown rule, bad syntax).
    pub bad_pragmas: Vec<BadPragma>,
}

impl SourceFile {
    /// Lexes and indexes one file. `path` should be workspace-relative;
    /// the crate name is read out of a `crates/<name>/` component.
    pub fn analyze(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let line_count = src.lines().count() + 1;

        let mut line_has_code = vec![false; line_count + 1];
        let mut comments: Vec<Vec<String>> = vec![Vec::new(); line_count + 1];
        for t in &tokens {
            if t.line >= line_has_code.len() {
                // tokens can end past the last newline-terminated line
                line_has_code.resize(t.line + 1, false);
                comments.resize(t.line + 1, Vec::new());
            }
            match &t.tok {
                Tok::LineComment(text) | Tok::BlockComment(text) => {
                    comments[t.line].push(text.clone());
                }
                _ => line_has_code[t.line] = true,
            }
        }

        let path = path.replace('\\', "/");
        let crate_name = path
            .split_once("crates/")
            .and_then(|(_, rest)| rest.split('/').next())
            .unwrap_or("")
            .to_string();
        let file_name = path.rsplit('/').next().unwrap_or(&path).to_string();
        let whole_file_is_test = path.contains("/tests/") || path.contains("/benches/");

        let test_mask = if whole_file_is_test {
            vec![true; tokens.len()]
        } else {
            compute_test_mask(&tokens)
        };

        let (pragmas, bad_pragmas) = parse_pragmas(&tokens);

        let mut file = SourceFile {
            path,
            crate_name,
            file_name,
            tokens,
            test_mask,
            line_has_code,
            comments,
            pragmas,
            coverage: Vec::new(),
            bad_pragmas,
        };
        file.coverage = file.pragmas.iter().map(|p| file.pragma_cover(p)).collect();
        file
    }

    /// The inclusive line range pragma `p` covers, `None` = whole file.
    fn pragma_cover(&self, p: &Pragma) -> Option<(usize, usize)> {
        match p.scope {
            PragmaScope::File => None,
            PragmaScope::Line => {
                let end = self.next_code_line(p.line).unwrap_or(p.line);
                Some((p.line, end))
            }
            PragmaScope::Item => {
                let code: Vec<(usize, &Tok)> = self
                    .tokens
                    .iter()
                    .filter(|t| t.tok.is_code())
                    .map(|t| (t.line, &t.tok))
                    .collect();
                let Some(mut k) = code.iter().position(|&(l, _)| l > p.line) else {
                    return Some((p.line, p.line));
                };
                while k < code.len() && code[k].1 == &Tok::Punct('#') {
                    k = skip_attribute(&code, k);
                }
                let end = item_end(&code, k);
                let end_line = code.get(end).map(|&(l, _)| l).unwrap_or(p.line);
                Some((p.line, end_line.max(p.line)))
            }
        }
    }

    /// Whether 1-indexed `line` contains any code token.
    pub fn line_has_code(&self, line: usize) -> bool {
        self.line_has_code.get(line).copied().unwrap_or(false)
    }

    /// Comment texts on 1-indexed `line` (empty slice if none).
    pub fn comments_on(&self, line: usize) -> &[String] {
        self.comments.get(line).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The first line after `line` that contains code, if any. This is
    /// the line a non-file-scope pragma above a statement covers.
    pub fn next_code_line(&self, line: usize) -> Option<usize> {
        (line + 1..self.line_has_code.len()).find(|&l| self.line_has_code[l])
    }

    /// Whether a violation of `rule` at `line` is covered by a pragma.
    /// Returns the index of the covering pragma so callers can track
    /// which allows were actually used.
    pub fn allow_covering(&self, rule: &str, line: usize) -> Option<usize> {
        self.pragmas.iter().enumerate().position(|(i, p)| {
            p.rules.iter().any(|r| r == rule)
                && match self.coverage[i] {
                    None => true,
                    Some((from, to)) => (from..=to).contains(&line),
                }
        })
    }
}

/// Marks token ranges belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Purely lexical: after such an attribute (any further attributes in
/// between are skipped), the next item extends to its first `;` or to
/// the matching `}` of its first `{` at nesting depth zero. This covers
/// the workspace convention (`#[cfg(test)] mod tests { … }` at the end
/// of each file) and inline `#[test]` functions.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<(usize, &Tok)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.tok.is_code())
        .map(|(i, t)| (i, &t.tok))
        .collect();

    let mut i = 0;
    while i < code.len() {
        if is_test_attribute(&code, i) {
            // skip this and any further attributes, then mark the item
            let mut j = i;
            while j < code.len() && code[j].1 == &Tok::Punct('#') {
                j = skip_attribute(&code, j);
            }
            let end = item_end(&code, j);
            let (from, to) = (code[i].0, code[end.min(code.len() - 1)].0);
            for slot in &mut mask[from..=to] {
                *slot = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether `code[i]` starts `#[test]`, `#[cfg(test)]` or any attribute
/// whose argument list mentions `test` (covers `cfg(all(test, …))`).
fn is_test_attribute(code: &[(usize, &Tok)], i: usize) -> bool {
    if code[i].1 != &Tok::Punct('#') || code.get(i + 1).map(|t| t.1) != Some(&Tok::Punct('[')) {
        return false;
    }
    let end = skip_attribute(code, i);
    code[i..end].iter().any(|(_, t)| match t {
        Tok::Ident(s) => s == "test",
        _ => false,
    })
}

/// Returns the index just past the `]` closing the attribute at `i`
/// (which must point at `#`).
fn skip_attribute(code: &[(usize, &Tok)], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < code.len() {
        match code[j].1 {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Returns the index of the last token of the item starting at `j`: the
/// matching `}` of its first top-level `{`, or its first top-level `;`.
fn item_end(code: &[(usize, &Tok)], j: usize) -> usize {
    let mut depth = 0usize;
    let mut k = j;
    while k < code.len() {
        match code[k].1 {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            Tok::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    code.len().saturating_sub(1)
}

/// Extracts pragmas from the comment tokens. Both well-formed pragmas
/// and malformed attempts are returned; the caller turns the latter
/// into diagnostics (a silent bad pragma would silently *not* allow).
fn parse_pragmas(tokens: &[Token]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        let Some(text) = t.tok.comment() else {
            continue;
        };
        if is_doc_comment(text) {
            continue; // docs may quote the grammar without allowing anything
        }
        let Some((scope, after_paren)) = find_pragma(text) else {
            continue;
        };
        match parse_pragma_body(after_paren) {
            Ok((rules, reason)) => good.push(Pragma {
                rules,
                reason,
                line: t.line,
                scope,
            }),
            Err(problem) => bad.push(BadPragma {
                line: t.line,
                problem,
            }),
        }
    }
    (good, bad)
}

/// Whether a comment's text marks it as documentation (`///`, `//!`,
/// `/**`, `/*!`). `//// …` and `/***` are ordinary comments per the
/// reference, but treating them as docs here errs on the quiet side.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Locates a pragma marker in a comment, returning its scope and the
/// text after the opening parenthesis. The `-item`/`-file` markers are
/// checked first: `lint:allow(` is not a prefix of either, but a typo
/// like `lint:allow-files(` should fall through to *no* pragma rather
/// than a mis-scoped one — and it does, matching none of the three.
fn find_pragma(text: &str) -> Option<(PragmaScope, &str)> {
    for (marker, scope) in [
        (PRAGMA_FILE, PragmaScope::File),
        (PRAGMA_ITEM, PragmaScope::Item),
        (PRAGMA_LINE, PragmaScope::Line),
    ] {
        if let Some(idx) = text.find(marker) {
            return Some((scope, &text[idx + marker.len()..]));
        }
    }
    None
}

/// Parses `rule-id[, rule-id]*): reason` — the tail of a pragma.
fn parse_pragma_body(body: &str) -> Result<(Vec<String>, String), String> {
    let Some((ids, rest)) = body.split_once(')') else {
        return Err("missing closing `)` after rule id(s)".to_string());
    };
    let rules: Vec<String> = ids
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("no rule id between the parentheses".to_string());
    }
    for r in &rules {
        if !crate::rules::RULE_IDS.contains(&r.as_str()) {
            return Err(format!(
                "unknown rule id `{r}` (known: {})",
                crate::rules::RULE_IDS.join(", ")
            ));
        }
    }
    let Some(reason) = rest.trim_start().strip_prefix(':') else {
        return Err("missing `: reason` after the rule id(s) — \
                    every allow must say why it is sound"
            .to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason — every allow must say why it is sound".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_file_names_come_from_the_path() {
        let f = SourceFile::analyze("crates/sim/src/fifo.rs", "fn main() {}");
        assert_eq!(f.crate_name, "sim");
        assert_eq!(f.file_name, "fifo.rs");
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn lib() { work(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { boom(); }\n}\n";
        let f = SourceFile::analyze("crates/sim/src/x.rs", src);
        for (tok, masked) in f.tokens.iter().zip(&f.test_mask) {
            if let Some(id) = tok.tok.ident() {
                match id {
                    "lib" | "work" => assert!(!masked, "{id} wrongly masked"),
                    "tests" | "t" | "boom" => assert!(masked, "{id} not masked"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn test_attribute_with_more_attributes_between() {
        let src = "#[test]\n#[should_panic(expected = \"x\")]\nfn t() { boom(); }\nfn lib() {}\n";
        let f = SourceFile::analyze("crates/sim/src/x.rs", src);
        for (tok, masked) in f.tokens.iter().zip(&f.test_mask) {
            if let Some(id) = tok.tok.ident() {
                match id {
                    "boom" => assert!(masked),
                    "lib" => assert!(!masked),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn tests_dir_files_are_wholly_masked() {
        let f = SourceFile::analyze("crates/sim/tests/props.rs", "fn t() { boom(); }");
        assert!(f.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn pragma_round_trips() {
        let src = "// lint:allow(panic-freedom): provably in range\nlet x = v[0];\n";
        let f = SourceFile::analyze("crates/sim/src/x.rs", src);
        assert_eq!(f.pragmas.len(), 1);
        assert!(f.bad_pragmas.is_empty());
        let p = &f.pragmas[0];
        assert_eq!(p.rules, vec!["panic-freedom"]);
        assert_eq!(p.reason, "provably in range");
        assert_eq!(p.scope, PragmaScope::Line);
        assert_eq!(f.allow_covering("panic-freedom", 2), Some(0));
        assert_eq!(f.allow_covering("panic-freedom", 3), None);
        assert_eq!(f.allow_covering("unsafe-audit", 2), None);
    }

    #[test]
    fn pragma_without_reason_is_rejected() {
        for bad in [
            "// lint:allow(panic-freedom)",
            "// lint:allow(panic-freedom):",
            "// lint:allow(panic-freedom):   ",
            "// lint:allow(): because",
            "// lint:allow(not-a-rule): because",
            "// lint:allow(panic-freedom because",
        ] {
            let f = SourceFile::analyze("crates/sim/src/x.rs", bad);
            assert!(f.pragmas.is_empty(), "{bad} parsed as good");
            assert_eq!(f.bad_pragmas.len(), 1, "{bad} not reported");
        }
    }

    #[test]
    fn file_scope_pragma_covers_everything() {
        let src = "// lint:allow-file(determinism): generator file, seeded RNG only\n\
                   fn a() {}\nfn b() {}\n";
        let f = SourceFile::analyze("crates/graph/src/x.rs", src);
        assert_eq!(f.pragmas[0].scope, PragmaScope::File);
        assert_eq!(f.allow_covering("determinism", 3), Some(0));
        assert_eq!(f.allow_covering("determinism", 999), Some(0));
    }

    #[test]
    fn item_pragma_covers_the_whole_next_item() {
        let src = "\
// lint:allow-item(hot-path-alloc): construction-time buffers
pub fn try_new(n: usize) -> Self {
    let a = Vec::new();
    let b = vec![0; n];
    Self { a, b }
}
fn after() { let c = Vec::new(); }
";
        let f = SourceFile::analyze("crates/sim/src/wheel.rs", src);
        assert_eq!(f.pragmas[0].scope, PragmaScope::Item);
        for line in 2..=6 {
            assert_eq!(
                f.allow_covering("hot-path-alloc", line),
                Some(0),
                "line {line}"
            );
        }
        assert_eq!(
            f.allow_covering("hot-path-alloc", 7),
            None,
            "next item uncovered"
        );
    }

    #[test]
    fn item_pragma_covers_a_multiline_statement() {
        let src = "\
fn ctor() {
    // lint:allow-item(hot-path-alloc): built once at construction
    let buf = (0..n)
        .map(|_| Vec::new())
        .collect();
    let later = Vec::new();
}
";
        let f = SourceFile::analyze("crates/sim/src/wheel.rs", src);
        for line in 3..=5 {
            assert_eq!(
                f.allow_covering("hot-path-alloc", line),
                Some(0),
                "line {line}"
            );
        }
        assert_eq!(f.allow_covering("hot-path-alloc", 6), None);
    }

    #[test]
    fn doc_comments_quoting_the_grammar_are_not_pragmas() {
        let src = "//! Write `// lint:allow(rule-id): reason` to allow.\nfn f() {}\n";
        let f = SourceFile::analyze("crates/lint/src/x.rs", src);
        assert!(f.pragmas.is_empty());
        assert!(f.bad_pragmas.is_empty());
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "let x = v.unwrap(); // lint:allow(panic-freedom): checked above\n";
        let f = SourceFile::analyze("crates/sim/src/x.rs", src);
        assert_eq!(f.allow_covering("panic-freedom", 1), Some(0));
    }
}
