//! The `higraph-lint` binary: lints the workspace's own sources.
//!
//! CI runs `higraph-lint --check --json lint-report.json` as the first
//! leg of the lint job — before clippy, because this pass takes
//! milliseconds and checks invariants clippy cannot know about.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use higraph_lint::{driver, rules};

const USAGE: &str = "\
higraph-lint — workspace invariant linter (see docs/static-analysis.md)

USAGE:
    higraph-lint [OPTIONS]

OPTIONS:
    --check            exit non-zero if any violation is found (CI mode)
    --json <PATH>      also write the machine-readable report to PATH
    --root <PATH>      workspace root (default: found from the current dir)
    --list-rules       print the rule catalogue and exit
    -h, --help         this text
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("higraph-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut check = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => {
                json_path = Some(PathBuf::from(
                    args.next().ok_or("--json needs a path argument")?,
                ));
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a path argument")?,
                ));
            }
            "--list-rules" => {
                for rule in rules::RULE_IDS {
                    println!("{rule}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            driver::find_workspace_root(&cwd)
                .ok_or("no workspace root (Cargo.toml + crates/) above the current dir")?
        }
    };

    let report =
        driver::lint_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    for v in &report.violations {
        println!("{}", v.render());
    }
    print!("{}", report.render_summary());

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }

    if check && !report.is_clean() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
