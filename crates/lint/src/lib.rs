//! `higraph-lint` — the workspace invariant linter.
//!
//! Every correctness guarantee this reproduction makes is a *convention*
//! until something checks it on every commit: bit-identical runs across
//! thread counts (no wall clocks, no `RandomState` iteration order in
//! simulation code), the no-panic `Result` + `StallDiagnostic` contract,
//! zero steady-state allocation on the per-cycle hot path, audited
//! `unsafe`, and the `next_activity`/`skip` activity-contract pairing.
//! This crate machine-checks those five disciplines as a fast, offline,
//! dependency-free static pass over the workspace's own sources.
//!
//! # Why hand-rolled
//!
//! The workspace builds hermetically (no network, no crates.io), so
//! `syn`/`quote` are unavailable by design. The rules are lexical: a
//! small Rust [`lexer`] with exact comment/string/attribute handling
//! feeds token-pattern passes in [`rules`]. That is deliberately *less*
//! powerful than a type-aware pass — and exactly powerful enough for
//! conventions that are naming- and placement-shaped, in the same
//! enumerate-valid-values / actionable-diagnostics idiom as the config
//! surface.
//!
//! # The rules
//!
//! | id | checks |
//! |---|---|
//! | `unsafe-audit` | every `unsafe` is preceded by `// SAFETY:` |
//! | `determinism` | no `Instant`/`SystemTime`/`HashMap`/`HashSet`/`env::var`/`thread_rng` in simulation crates |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/`assert!` in core-crate library code |
//! | `hot-path-alloc` | no `Vec::new`/`vec!`/`Box::new`/`.collect()`/`.to_vec()` in designated hot-path files |
//! | `activity-contract` | `impl ClockedComponent` overriding `next_activity` also overrides `skip` |
//!
//! Violations can be allowed inline — with a mandatory reason — via
//! `// lint:allow(rule-id): reason` (covers that line and the next code
//! line), `// lint:allow-item(rule-id): reason` (the next item or
//! statement, e.g. a whole constructor), or
//! `// lint:allow-file(rule-id): reason` (the whole file). A pragma
//! without a reason is itself a violation (`bad-pragma`); doc comments
//! quoting the grammar are ignored.
//!
//! See `docs/static-analysis.md` for the full rule catalogue, pragma
//! grammar, JSON report schema, and how to add a rule.
//!
//! # Usage
//!
//! ```text
//! cargo run -p higraph-lint            # report, exit 0
//! cargo run -p higraph-lint -- --check # exit 1 on any violation (CI)
//! cargo run -p higraph-lint -- --json lint-report.json
//! ```
//!
//! ```
//! use higraph_lint::{lint_source, Report};
//!
//! let mut report = Report::default();
//! lint_source(
//!     "crates/sim/src/example.rs",
//!     "fn f(v: Option<u8>) -> u8 { v.unwrap() }",
//!     &mut report,
//! );
//! assert_eq!(report.violations.len(), 1);
//! assert_eq!(report.violations[0].rule, "panic-freedom");
//! ```

#![forbid(unsafe_code)]

pub mod driver;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use driver::{find_workspace_root, lint_paths, lint_source, lint_workspace};
pub use report::{AllowRecord, Diagnostic, Report};
