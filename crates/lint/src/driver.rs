//! File discovery and the whole-workspace entry point.
//!
//! The linter scans every `.rs` file under `crates/*/src` — including
//! its own crate (the self-hosting gate: a linter that cannot satisfy
//! its own rules has no business gating anyone else). The `shims/`
//! members are deliberately excluded: they are API stand-ins for
//! third-party crates, modelling interfaces this workspace does not
//! own. `tests/` and `benches/` directories are likewise out of scope —
//! every rule except `unsafe-audit` exempts test code anyway, and test
//! files scanned through an explicit [`lint_paths`] call are masked
//! wholesale.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::report::{AllowRecord, Report};
use crate::rules;
use crate::source::SourceFile;

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// directory). Deterministic: files are visited in sorted path order.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs_files(&member.join("src"), &mut files)?;
    }
    files.sort();
    lint_files(root, &files)
}

/// Lints an explicit file list (paths may be absolute or root-relative).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = paths
        .iter()
        .map(|p| {
            if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            }
        })
        .collect();
    files.sort();
    lint_files(root, &files)
}

fn lint_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in files {
        let src = fs::read_to_string(path)?;
        let rel = relative_display(root, path);
        lint_source(&rel, &src, &mut report);
    }
    report.finalize();
    Ok(report)
}

/// Lints one in-memory source buffer into `report`. `rel_path` drives
/// rule scoping (crate name, basename), so fixture tests can pose as
/// any file in the tree, e.g. `crates/sim/src/frontend.rs`.
pub fn lint_source(rel_path: &str, src: &str, report: &mut Report) {
    let file = SourceFile::analyze(rel_path, src);
    let used = rules::run_all(&file, &mut report.violations);
    for (pragma, used) in file.pragmas.iter().zip(used) {
        report.allows.push(AllowRecord {
            file: file.path.clone(),
            line: pragma.line,
            rules: pragma.rules.clone(),
            reason: pragma.reason.clone(),
            used,
        });
    }
    report.files_scanned += 1;
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine:
/// a crate without `src/` simply contributes nothing).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` rendered relative to `root` with forward slashes, falling
/// back to the full path when it is not under `root`.
fn relative_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Walks upward from `start` to the first directory containing both
/// `Cargo.toml` and `crates/` — the workspace root. Lets the binary run
/// from any subdirectory of the repository.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_attributes_by_virtual_path() {
        let mut report = Report::default();
        // same source, two virtual homes: core crate trips panic-freedom,
        // bench does not
        let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        lint_source("crates/sim/src/x.rs", src, &mut report);
        lint_source("crates/bench/src/x.rs", src, &mut report);
        report.finalize();
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].file, "crates/sim/src/x.rs");
    }

    #[test]
    fn workspace_root_is_found_from_within() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the workspace");
        assert!(root.join("crates/lint").is_dir());
    }
}
