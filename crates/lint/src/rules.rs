//! The rule catalogue. See `docs/static-analysis.md` for the prose
//! version of each rule, the pragma grammar, and how to add a rule.
//!
//! Every rule is a lexical pass over one [`SourceFile`]. Rules are
//! deliberately narrow: they encode the *workspace's own* conventions
//! (the PR 3 no-panic contract, the PR 5/6 scratch-buffer convention,
//! the PR 5 bit-identical-across-thread-counts guarantee), not general
//! Rust style — clippy handles that, in CI, right after this pass.

use crate::lexer::Tok;
use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Rule: every `unsafe` keyword must be immediately preceded (same line
/// or the contiguous comment block directly above) by a `// SAFETY:`
/// comment stating the invariant.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule: no wall-clock / iteration-order / environment nondeterminism
/// in the simulation crates.
pub const DETERMINISM: &str = "determinism";
/// Rule: no `unwrap`/`expect`/`panic!`/`assert!` in core-crate library
/// code — stalls and config errors are `Result`s (PR 3 contract).
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule: no allocation constructs in the designated hot-path files —
/// buffers are allocated once at construction (PR 5/6 convention).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule: an `impl ClockedComponent` that overrides `next_activity`
/// must also override `skip` — a fast-forward window hint without the
/// matching bulk-commit drifts metrics silently.
pub const ACTIVITY_CONTRACT: &str = "activity-contract";
/// Rule: the checkpoint codec stays entirely safe Rust — no `unsafe`
/// anywhere in a `snapshot.rs` file or inside an `impl … Snapshot for`
/// block, with or without a `SAFETY:` comment (stricter than
/// `unsafe-audit`: restore feeds untrusted bytes through the decoder).
pub const SNAPSHOT_SAFETY: &str = "snapshot-safety";
/// Pseudo-rule for malformed pragmas. Not allowlistable (an allow that
/// failed to parse cannot vouch for itself).
pub const BAD_PRAGMA: &str = "bad-pragma";

/// Every real rule id, in reporting order. `bad-pragma` is excluded:
/// it cannot be targeted by an allow.
pub const RULE_IDS: &[&str] = &[
    UNSAFE_AUDIT,
    DETERMINISM,
    PANIC_FREEDOM,
    HOT_PATH_ALLOC,
    ACTIVITY_CONTRACT,
    SNAPSHOT_SAFETY,
];

/// Crates whose simulation results must be bit-identical across hosts,
/// thread counts, and runs: the determinism and panic-freedom rules
/// scope to these. `bench` is *also* determinism-scoped (a sweep must
/// produce identical reports), but its wall-clock host-performance
/// measurements carry reasoned allows.
pub const CORE_CRATES: &[&str] = &["sim", "accel", "mdp", "graph", "model", "vcpm"];

/// Crates the determinism rule scans: the core crates plus the layers
/// that assemble and report on them. `pool` is determinism-scoped even
/// though it never touches simulated state: its scheduling decisions
/// (worker count, steal order) must not read clocks or hashed
/// iteration order, so a drain team's membership stays reproducible.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sim", "accel", "mdp", "graph", "model", "vcpm", "pool", "bench", "higraph", "lint",
];

/// Basenames of the designated hot-path files (per-cycle code where the
/// PR 5/6 scratch-buffer convention bans steady-state allocation).
pub const HOT_PATH_FILES: &[&str] = &[
    "frontend.rs",
    "backend.rs",
    "apply.rs",
    "fifo.rs",
    "wheel.rs",
    "arena.rs",
    "network.rs",
    "range.rs",
    "naive.rs",
    "dram.rs",
];

/// Identifiers the determinism rule forbids outright.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    ("Instant", "wall-clock time is host-dependent"),
    ("SystemTime", "wall-clock time is host-dependent"),
    ("HashMap", "RandomState iteration order varies per process"),
    ("HashSet", "RandomState iteration order varies per process"),
    (
        "thread_rng",
        "OS-seeded RNG breaks run-to-run reproducibility",
    ),
];

/// Macro names the panic-freedom rule forbids (each is matched as the
/// identifier followed by `!`; `debug_`-prefixed variants are distinct
/// identifiers and therefore pass).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Runs every rule over one analyzed file, honouring pragmas, and
/// appends to `out`. Returns a `used[i]` flag per `file.pragmas[i]`.
pub fn run_all(file: &SourceFile, out: &mut Vec<Diagnostic>) -> Vec<bool> {
    let mut used = vec![false; file.pragmas.len()];

    for bad in &file.bad_pragmas {
        out.push(Diagnostic {
            file: file.path.clone(),
            line: bad.line,
            rule: BAD_PRAGMA.to_string(),
            message: format!("malformed lint pragma: {}", bad.problem),
            suggestion: "write `// lint:allow(rule-id): reason` — the reason text is mandatory"
                .to_string(),
        });
    }

    let mut raw = Vec::new();
    unsafe_audit(file, &mut raw);
    determinism(file, &mut raw);
    panic_freedom(file, &mut raw);
    hot_path_alloc(file, &mut raw);
    activity_contract(file, &mut raw);
    snapshot_safety(file, &mut raw);

    for d in raw {
        match file.allow_covering(&d.rule, d.line) {
            Some(idx) => used[idx] = true,
            None => out.push(d),
        }
    }
    used
}

fn diag(
    file: &SourceFile,
    line: usize,
    rule: &str,
    message: String,
    suggestion: &str,
) -> Diagnostic {
    Diagnostic {
        file: file.path.clone(),
        line,
        rule: rule.to_string(),
        message,
        suggestion: suggestion.to_string(),
    }
}

/// (1) `unsafe` requires an adjacent `// SAFETY:` comment.
///
/// Accepted placements: a comment on the same line as the `unsafe`
/// keyword, or a contiguous run of comment-only lines directly above it
/// (no blank or code lines in between), any of which contains `SAFETY:`.
fn unsafe_audit(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &file.tokens {
        if t.tok.ident() != Some("unsafe") {
            continue;
        }
        if has_adjacent_safety_comment(file, t.line) {
            continue;
        }
        out.push(diag(
            file,
            t.line,
            UNSAFE_AUDIT,
            "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            "state the invariant that makes this sound in a `// SAFETY:` comment \
             directly above the unsafe block/fn/impl",
        ));
    }
}

fn has_adjacent_safety_comment(file: &SourceFile, line: usize) -> bool {
    let mentions_safety = |l: usize| file.comments_on(l).iter().any(|c| c.contains("SAFETY:"));
    if mentions_safety(line) {
        return true;
    }
    // walk up through the contiguous comment-only block
    let mut l = line;
    while l > 1 {
        l -= 1;
        let is_comment_only = !file.comments_on(l).is_empty() && !file.line_has_code(l);
        if !is_comment_only {
            return false;
        }
        if mentions_safety(l) {
            return true;
        }
    }
    false
}

/// (2) No nondeterminism sources in the simulation crates: wall clocks,
/// `RandomState` maps, environment reads, OS-seeded RNG.
fn determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code = code_tokens(file);
    for (k, &(i, tok, line)) in code.iter().enumerate() {
        if file.test_mask[i] {
            continue;
        }
        let Some(id) = tok.ident() else { continue };
        if let Some((_, why)) = NONDETERMINISTIC_IDENTS.iter().find(|(n, _)| *n == id) {
            out.push(diag(
                file,
                line,
                DETERMINISM,
                format!("nondeterminism source `{id}`: {why}"),
                "use the simulated cycle clock, a `BTreeMap`/`Vec`, or the seeded \
                 `rand` shim; wall-clock host measurements need a reasoned allow",
            ));
        }
        // `env::var` / `std::env::var(_os)` — matched as the token
        // sequence `env :: var`.
        if id == "env"
            && matches_seq(&code, k + 1, &[":", ":"])
            && matches!(
                code.get(k + 3).and_then(|(_, t, _)| t.ident()),
                Some("var" | "var_os")
            )
        {
            out.push(diag(
                file,
                line,
                DETERMINISM,
                "nondeterminism source `env::var`: behaviour depends on the host \
                 environment"
                    .to_string(),
                "thread configuration through `AcceleratorConfig` / explicit \
                 parameters instead of ambient environment state",
            ));
        }
    }
}

/// (3) The PR 3 no-panic contract: core-crate library code returns
/// `Result` + `StallDiagnostic` / `BatchError::Config`; it does not
/// `unwrap`, `expect`, `panic!`, or hard-`assert!`.
fn panic_freedom(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !CORE_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code = code_tokens(file);
    for (k, &(i, tok, line)) in code.iter().enumerate() {
        if file.test_mask[i] {
            continue;
        }
        let Some(id) = tok.ident() else { continue };
        let is_method_call = |name| {
            tok.ident() == Some(name)
                && k > 0
                && code[k - 1].1 == &Tok::Punct('.')
                && matches_seq(&code, k + 1, &["("])
        };
        if is_method_call("unwrap") || is_method_call("expect") {
            out.push(diag(
                file,
                line,
                PANIC_FREEDOM,
                format!("`.{id}()` can panic in library code"),
                "propagate a `Result` (`StallDiagnostic` / `BatchError::Config` per \
                 the PR 3 contract); if genuinely infallible, allow with the proof \
                 as the reason",
            ));
        }
        if PANIC_MACROS.contains(&id) && matches_seq(&code, k + 1, &["!"]) {
            out.push(diag(
                file,
                line,
                PANIC_FREEDOM,
                format!("`{id}!` panics in library code"),
                "return an error, or use `debug_assert!` for internal invariants \
                 already guaranteed by validated configuration",
            ));
        }
    }
}

/// (4) The PR 5/6 scratch-buffer convention: no allocation constructs
/// in per-cycle code of the designated hot-path files. Construction-time
/// allocations in those files carry reasoned allows, which keeps every
/// allocation site visible and justified.
fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !CORE_CRATES.contains(&file.crate_name.as_str())
        || !HOT_PATH_FILES.contains(&file.file_name.as_str())
    {
        return;
    }
    let code = code_tokens(file);
    for (k, &(i, tok, line)) in code.iter().enumerate() {
        if file.test_mask[i] {
            continue;
        }
        let Some(id) = tok.ident() else { continue };
        let found = match id {
            "Vec" if matches_seq(&code, k + 1, &[":", ":", "new"]) => Some("Vec::new"),
            "Box" if matches_seq(&code, k + 1, &[":", ":", "new"]) => Some("Box::new"),
            "vec" if matches_seq(&code, k + 1, &["!"]) => Some("vec!"),
            "collect" | "to_vec"
                if k > 0
                    && code[k - 1].1 == &Tok::Punct('.')
                    && matches_seq(&code, k + 1, &["("]) =>
            {
                Some(id)
            }
            _ => None,
        };
        if let Some(what) = found {
            out.push(diag(
                file,
                line,
                HOT_PATH_ALLOC,
                format!("allocation construct `{what}` in a hot-path file"),
                "allocate once at construction into component-owned scratch \
                 (docs/performance.md); construction-time sites get a reasoned allow",
            ));
        }
    }
}

/// (5) Activity-contract completeness: inside any
/// `impl … ClockedComponent for …` block, an overridden `next_activity`
/// without an overridden `skip` means fast-forward windows are
/// advertised but idle effects are never bulk-committed — the exact
/// drift the debug-build wheel oracles only catch at runtime.
fn activity_contract(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = code_tokens(file);
    let mut k = 0;
    while k < code.len() {
        if code[k].1.ident() != Some("impl") {
            k += 1;
            continue;
        }
        // find the impl body's `{`, tracking whether this is
        // `impl … ClockedComponent for …` (the trait path ends right
        // before `for`, so bound mentions in generics do not count)
        let mut body = None;
        let mut is_clocked_impl = false;
        for j in k + 1..code.len() {
            match code[j].1 {
                Tok::Punct('{') => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(';') => break, // e.g. `impl Trait for X;` — not ours
                Tok::Ident(id) if id == "for" => {
                    is_clocked_impl = code[j - 1].1.ident() == Some("ClockedComponent");
                }
                _ => {}
            }
        }
        let Some(body_start) = body else {
            k += 1;
            continue;
        };
        // matching `}` of the body
        let mut depth = 0usize;
        let mut body_end = code.len() - 1;
        for (j, tok) in code.iter().enumerate().skip(body_start) {
            match tok.1 {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        if is_clocked_impl {
            let mut has_next_activity = false;
            let mut has_skip = false;
            for j in body_start..body_end {
                if code[j].1.ident() == Some("fn") {
                    match code.get(j + 1).and_then(|(_, t, _)| t.ident()) {
                        Some("next_activity") => has_next_activity = true,
                        Some("skip") => has_skip = true,
                        _ => {}
                    }
                }
            }
            if has_next_activity && !has_skip {
                out.push(diag(
                    file,
                    code[k].2,
                    ACTIVITY_CONTRACT,
                    "`impl ClockedComponent` overrides `next_activity` but not `skip`".to_string(),
                    "implement `skip(k)` to bulk-commit the per-cycle effects of the \
                     advertised inert window (docs/simulation.md), or the scheduler's \
                     fast-forward will silently drift metrics",
                ));
            }
        }
        k = body_end + 1;
    }
}

/// (6) Checkpoint-codec hardening (`docs/robustness.md`): `restore`
/// feeds untrusted bytes — truncated files, version skew, bit flips —
/// through the decoder, so the `Snapshot` codec is kept entirely safe
/// Rust, where a length lie is an `Err`, never undefined behaviour.
/// Unlike `unsafe-audit`, a `SAFETY:` comment does not help here: the
/// rule covers any `snapshot.rs` file in full and every
/// `impl … Snapshot for …` block elsewhere, and flags each `unsafe`
/// keyword inside. Test code is not exempt (a codec test is exactly
/// where a transmute shortcut would sneak in).
fn snapshot_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = code_tokens(file);
    let flag = |out: &mut Vec<Diagnostic>, line: usize| {
        out.push(diag(
            file,
            line,
            SNAPSHOT_SAFETY,
            "`unsafe` inside the snapshot codec".to_string(),
            "decode with checked, safe Rust only — the restore path consumes \
             untrusted bytes, and a `SAFETY:` argument cannot hold for inputs \
             the program did not produce (docs/robustness.md)",
        ));
    };
    if file.file_name == "snapshot.rs" {
        for &(_, tok, line) in &code {
            if tok.ident() == Some("unsafe") {
                flag(out, line);
            }
        }
        return;
    }
    // Elsewhere: only `impl … Snapshot for …` bodies are covered.
    let mut k = 0;
    while k < code.len() {
        if code[k].1.ident() != Some("impl") {
            k += 1;
            continue;
        }
        let mut body = None;
        let mut is_snapshot_impl = false;
        for j in k + 1..code.len() {
            match code[j].1 {
                Tok::Punct('{') => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                Tok::Ident(id) if id == "for" => {
                    // The trait path ends right before `for`, so a
                    // `SnapValue` bound in the generics does not count.
                    is_snapshot_impl = code[j - 1].1.ident() == Some("Snapshot");
                }
                _ => {}
            }
        }
        let Some(body_start) = body else {
            k += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut body_end = code.len() - 1;
        for (j, tok) in code.iter().enumerate().skip(body_start) {
            match tok.1 {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        if is_snapshot_impl {
            for &(_, tok, line) in &code[body_start..body_end] {
                if tok.ident() == Some("unsafe") {
                    flag(out, line);
                }
            }
        }
        k = body_end + 1;
    }
}

/// Code tokens only (comments dropped), with original index and line.
fn code_tokens(file: &SourceFile) -> Vec<(usize, &Tok, usize)> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.tok.is_code())
        .map(|(i, t)| (i, &t.tok, t.line))
        .collect()
}

/// Whether the code tokens starting at `from` spell out `pattern`,
/// where each pattern element is either a single punctuation character
/// or an identifier.
fn matches_seq(code: &[(usize, &Tok, usize)], from: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(off, want)| match code.get(from + off) {
            Some((_, Tok::Punct(c), _)) => want.len() == 1 && want.starts_with(*c),
            Some((_, Tok::Ident(id), _)) => id == want,
            _ => false,
        })
}
