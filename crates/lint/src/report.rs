//! Diagnostics and the machine-readable report.
//!
//! Text diagnostics render as `file:line: rule-id: message (suggestion:
//! …)` — one line per finding, terminal-clickable, stable ordering
//! (path, then line, then rule). The JSON report mirrors the scheme of
//! `bench-report.json`: hand-rolled writer, no serde, schema documented
//! in `docs/static-analysis.md` and versioned via the `schema` key.

use std::fmt::Write as _;

/// One finding: a rule violation (or malformed pragma) at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule id, e.g. `panic-freedom`.
    pub rule: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allow it with a reason).
    pub suggestion: String,
}

impl Diagnostic {
    /// The one-line terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {} (suggestion: {})",
            self.file, self.line, self.rule, self.message, self.suggestion
        )
    }
}

/// An allow pragma that was honoured (or not needed), for the report's
/// audit trail: every suppressed finding stays visible with its reason.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative path of the pragma.
    pub file: String,
    /// 1-indexed line of the pragma comment.
    pub line: usize,
    /// Rule ids the pragma names.
    pub rules: Vec<String>,
    /// The mandatory reason text.
    pub reason: String,
    /// Whether any finding was actually suppressed by it. Unused allows
    /// are reported informationally — they mark conventions that became
    /// unnecessary and can be deleted.
    pub used: bool,
}

/// Full result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub violations: Vec<Diagnostic>,
    /// Every allow pragma seen, with its usage flag.
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Sorts findings into the stable reporting order.
    pub fn finalize(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts in [`crate::rules::RULE_IDS`] order
    /// (plus `bad-pragma` last, when present).
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = crate::rules::RULE_IDS
            .iter()
            .map(|&r| (r, self.violations.iter().filter(|v| v.rule == r).count()))
            .collect();
        let bad = self
            .violations
            .iter()
            .filter(|v| v.rule == crate::rules::BAD_PRAGMA)
            .count();
        if bad > 0 {
            counts.push((crate::rules::BAD_PRAGMA, bad));
        }
        counts
    }

    /// The human-readable summary block printed after the findings.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        let total = self.violations.len();
        let unused = self.allows.iter().filter(|a| !a.used).count();
        let _ = writeln!(
            s,
            "higraph-lint: {} file(s) scanned, {} violation(s), {} allow(s) ({} unused)",
            self.files_scanned,
            total,
            self.allows.len(),
            unused
        );
        for (rule, n) in self.counts() {
            if n > 0 {
                let _ = writeln!(s, "  {rule}: {n}");
            }
        }
        for a in self.allows.iter().filter(|a| !a.used) {
            let _ = writeln!(
                s,
                "  note: unused allow at {}:{} ({}) — consider deleting it",
                a.file,
                a.line,
                a.rules.join(", ")
            );
        }
        s
    }

    /// The machine-readable report. Schema: see
    /// `docs/static-analysis.md` § "JSON report schema".
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"higraph-lint-report/v1\",");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"clean\": {},", self.is_clean());

        s.push_str("  \"summary\": {");
        let counts = self.counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            let comma = if i + 1 < counts.len() { ", " } else { "" };
            let _ = write!(s, "\"{rule}\": {n}{comma}");
        }
        s.push_str("},\n");

        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"suggestion\": {}}}{}",
                json_str(&v.file),
                v.line,
                json_str(&v.rule),
                json_str(&v.message),
                json_str(&v.suggestion),
                comma
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");

        s.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let comma = if i + 1 < self.allows.len() { "," } else { "" };
            let rules = a
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \"used\": {}}}{}",
                json_str(&a.file),
                a.line,
                rules,
                json_str(&a.reason),
                a.used,
                comma
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![Diagnostic {
                file: "crates/sim/src/b.rs".into(),
                line: 3,
                rule: "panic-freedom".into(),
                message: "`.unwrap()` can panic \"quoted\"".into(),
                suggestion: "propagate a Result".into(),
            }],
            allows: vec![AllowRecord {
                file: "crates/sim/src/a.rs".into(),
                line: 10,
                rules: vec!["determinism".into()],
                reason: "wall-clock only feeds host reporting".into(),
                used: true,
            }],
        };
        r.finalize();
        r
    }

    #[test]
    fn render_is_file_line_rule() {
        let r = sample();
        let line = r.violations[0].render();
        assert!(
            line.starts_with("crates/sim/src/b.rs:3: panic-freedom:"),
            "{line}"
        );
        assert!(line.contains("suggestion:"), "{line}");
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"panic-freedom\": 1"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"schema\": \"higraph-lint-report/v1\""));
    }

    #[test]
    fn clean_report_has_empty_arrays() {
        let mut r = Report::default();
        r.finalize();
        let json = r.to_json();
        assert!(json.contains("\"violations\": []"), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }
}
