//! A minimal, dependency-free Rust lexer.
//!
//! The linter cannot use `syn` (the workspace builds hermetically with no
//! network access), so rule passes run over this hand-rolled token stream
//! instead of a real AST. The lexer's one job is *fidelity of exclusion*:
//! rule patterns must never fire on text inside comments, string/char
//! literals, or doc examples, so those regions are lexed as opaque tokens.
//! Everything else — identifiers, single punctuation characters, numbers —
//! comes through with its source line, which is all the lexical rule
//! passes in [`crate::rules`] need.
//!
//! Handled: line comments (incl. doc comments), nested block comments,
//! string literals with escapes, raw strings with arbitrary `#` guards
//! (plus `b`/`c`/`br`/`cr` prefixes), char literals vs. lifetimes, and
//! float-vs-range ambiguity (`0..n` is three tokens, `0.5` is one).

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-indexed line of the token's first character.
    pub line: usize,
}

/// Token payload. Only identifiers and comments carry text: the rule
/// passes match identifier spellings and read comment bodies (for
/// `// SAFETY:` audits and `lint:allow` pragmas), while literals only
/// need to *exist* so patterns cannot match inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword, e.g. `unsafe`, `HashMap`, `fn`.
    Ident(String),
    /// A single punctuation character, e.g. `.`, `!`, `#`, `{`.
    Punct(char),
    /// A `//` comment, text including the leading slashes.
    LineComment(String),
    /// A `/* */` comment (nesting handled), text included.
    BlockComment(String),
    /// A string literal (normal, raw, byte, or C variant); body opaque.
    Str,
    /// A character or byte-character literal; body opaque.
    Char,
    /// A lifetime such as `'a` (distinguished from a char literal).
    Lifetime,
    /// A numeric literal, including float/suffix forms; body opaque.
    Number,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The comment text (line or block), if this token is a comment.
    pub fn comment(&self) -> Option<&str> {
        match self {
            Tok::LineComment(s) | Tok::BlockComment(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is code (not a comment).
    pub fn is_code(&self) -> bool {
        self.comment().is_none()
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// or comments simply swallow the rest of the file, which is the least
/// surprising behaviour for a linter (the compiler proper will reject
/// such a file anyway, with a better message).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: usize) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    /// A normal (escaped) string literal starting at the current `"`.
    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Tok::Str, line);
    }

    /// A raw string starting at the current `#`/`"` run: `r"…"`,
    /// `r#"…"#`, etc. The `r`/`br`/`cr` prefix ident was already consumed
    /// by the caller.
    fn raw_string(&mut self, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Str, line);
    }

    /// Distinguishes `'a` (lifetime) from `'x'` / `'\n'` (char literal):
    /// a quote followed by an identifier character is a lifetime unless
    /// the character after that identifier char is a closing quote.
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // escaped char literal: consume escape then to closing quote
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // 'x'
                    self.bump();
                    self.bump();
                    self.push(Tok::Char, line);
                } else {
                    // 'label — consume the identifier characters
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            _ => {
                // something like '(' — a char literal of punctuation
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Char, line);
            }
        }
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // raw / byte / C string prefixes: the "identifier" was actually
        // the prefix of a string literal token.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"' | '#')) => {
                self.raw_string(line);
                return;
            }
            ("b" | "c", Some('"')) => {
                self.string(line);
                return;
            }
            ("b", Some('\'')) => {
                self.char_or_lifetime(line);
                return;
            }
            _ => {}
        }
        self.push(Tok::Ident(text), line);
    }

    /// A numeric literal. A `.` is part of the number only when followed
    /// by a digit, so `0..n` lexes as `0`, `.`, `.`, `n`.
    fn number(&mut self, line: usize) {
        while let Some(c) = self.peek(0) {
            let dot_in_float = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c == '_' || c.is_alphanumeric() || dot_in_float {
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Number, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = format!(
            "// unwrap() in a comment\n\
             /* HashMap in /* nested */ block */\n\
             let s = \"panic!(\\\"quoted\\\")\";\n\
             let r = r{h}\"Instant::now()\"{h};\n",
            h = "#"
        );
        let ids = idents(&src);
        assert!(!ids.iter().any(|i| i == "unwrap"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "panic"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "Instant"), "{ids:?}");
        assert_eq!(
            ids,
            vec!["let", "s", "let", "r"],
            "code identifiers survive"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = lex("for i in 0..10 { x += 1.5; }");
        let numbers = toks.iter().filter(|t| t.tok == Tok::Number).count();
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(numbers, 3, "0, 10, 1.5");
        assert_eq!(dots, 2, "the .. of the range");
    }

    #[test]
    fn escaped_char_literals_do_not_derail() {
        let toks = lex(r"let q = '\''; let n = '\n'; let id = next;");
        let ids = idents(r"let q = '\''; let n = '\n'; let id = next;");
        assert_eq!(ids, vec!["let", "q", "let", "n", "let", "id", "next"]);
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Char).count(), 2);
    }

    #[test]
    fn doc_comments_carry_text() {
        let toks = lex("/// docs mention unwrap()\nfn f() {}");
        let comment = toks[0].tok.comment().expect("first token is the doc");
        assert!(comment.contains("unwrap"));
        assert_eq!(toks[1].tok, Tok::Ident("fn".into()));
    }

    #[test]
    fn byte_strings_are_opaque() {
        let ids = idents(r#"let b = b"unwrap"; let c = b'x';"#);
        assert_eq!(ids, vec!["let", "b", "let", "c"]);
    }
}
