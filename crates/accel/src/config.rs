//! Accelerator configuration and the Table 1 presets.

use higraph_model::NetworkKindModel;
use higraph_sim::DramTiming;
use std::fmt;

/// Off-chip memory hierarchy knobs: the edge/offset cache and the HBM
/// channel geometry behind it (see `docs/memory.md`).
///
/// `AcceleratorConfig::memory` is `None` by default — infinite
/// bandwidth, zero latency — which keeps every metric bit-identical to
/// the pre-memory-model simulator. Set `Some(MemoryConfig::hbm2())` (or
/// a customized value) to make off-chip fetches cost cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// HBM channels; lines interleave across them.
    pub channels: usize,
    /// Row-buffered banks per channel.
    pub banks_per_channel: usize,
    /// Request-queue depth per channel (producers stall beyond it).
    pub queue_depth: usize,
    /// Cache line size in bytes (power of two, at least one edge —
    /// `cache::EDGE_BYTES` — so per-line accounting never undercounts).
    pub line_bytes: usize,
    /// DRAM row size in bytes (power-of-two multiple of the line size);
    /// sets how many consecutive lines share one row-buffer activation.
    pub row_bytes: usize,
    /// Capacity of the on-chip edge/offset cache in KiB.
    pub cache_kb: usize,
    /// tCAS-class latency parameters, in accelerator clock cycles.
    pub timing: DramTiming,
}

impl MemoryConfig {
    /// An HBM2-class stack at a 1 GHz accelerator clock: 8 channels ×
    /// 16 banks, 2 KiB rows, 64 B lines, a 256 KiB edge/offset cache.
    pub fn hbm2() -> Self {
        MemoryConfig {
            channels: 8,
            banks_per_channel: 16,
            queue_depth: 16,
            line_bytes: 64,
            row_bytes: 2048,
            cache_kb: 256,
            timing: DramTiming::default(),
        }
    }

    /// This configuration with a different cache capacity (the `repro
    /// mem` sweep axis).
    pub fn with_cache_kb(mut self, cache_kb: usize) -> Self {
        self.cache_kb = cache_kb;
        self
    }

    /// Validates the memory knobs.
    ///
    /// # Errors
    ///
    /// Returns a message if any count is zero, the line size is not a
    /// power of two, or the row size is not a multiple of the line size.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.banks_per_channel == 0 || self.queue_depth == 0 {
            return Err("memory channels, banks, and queue depth must be positive".to_string());
        }
        if !self.line_bytes.is_power_of_two() || (self.line_bytes as u64) < crate::cache::EDGE_BYTES
        {
            return Err(format!(
                "cache line size {} must be a power of two >= one edge ({} B)",
                self.line_bytes,
                crate::cache::EDGE_BYTES
            ));
        }
        if self.row_bytes < self.line_bytes || !self.row_bytes.is_multiple_of(self.line_bytes) {
            return Err(format!(
                "row size {} must be a multiple of the line size {}",
                self.row_bytes, self.line_bytes
            ));
        }
        if self.cache_kb == 0 {
            return Err("cache capacity must be positive".to_string());
        }
        Ok(())
    }

    /// Worst-case memory cycles one scatter phase can spend, used to size
    /// the stall guard: every line the phase can touch (edges plus one
    /// offset pair per frontier vertex) paying a full row conflict, plus
    /// queue-depth serialization slack per line.
    pub(crate) fn stall_guard_bonus(&self, iteration_edges: u64, frontier_len: u64) -> u64 {
        let per_line = self.timing.conflict_cycles() + self.queue_depth as u64 + 4;
        let edge_lines = iteration_edges + 16; // ≥ lines touched (16 B edges, ≥ 16 B lines)
        let offset_lines = 2 * frontier_len + 16;
        (edge_lines + offset_lines).saturating_mul(per_line)
    }
}

/// A seeded schedule of transient hardware faults (link stalls, DRAM
/// channel brown-outs, chip pauses) injected into a run — the
/// deterministic fault-injection harness of `docs/robustness.md`.
///
/// `None` on [`AcceleratorConfig::fault_plan`] (the default everywhere)
/// injects nothing and leaves every run bit-identical to a build without
/// the harness. `Some(_)` expands to concrete windows via
/// [`crate::faults::FaultRuntime`]; the same plan always produces the
/// same schedule, so faulted runs are exactly reproducible and
/// memoizable. Fault runs tick per-cycle (fast-forward is forced off)
/// and use the serial lock-step drain, so windows land on exact cycles
/// on every host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the event schedule (splitmix64 stream).
    pub seed: u64,
    /// Number of fault windows to draw.
    pub events: u32,
    /// Maximum duration of one window, in cycles (each window lasts
    /// `1..=max_duration`).
    pub max_duration: u64,
    /// Scheduling horizon: window start cycles are drawn from
    /// `[0, horizon)` on the global scatter-cycle timeline.
    pub horizon: u64,
}

impl FaultPlan {
    /// Validates the plan's bounds.
    ///
    /// # Errors
    ///
    /// Returns a message when a non-empty schedule has a zero duration
    /// or horizon (windows could neither start nor last).
    pub fn validate(&self) -> Result<(), String> {
        if self.events > 0 && (self.max_duration == 0 || self.horizon == 0) {
            return Err(format!(
                "fault plan with {} events needs a positive max_duration \
                 (got {}) and horizon (got {})",
                self.events, self.max_duration, self.horizon
            ));
        }
        Ok(())
    }
}

/// Which fabric serves an interaction point (Sec. 2.2's three conflict
/// sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Centralized crossbar with round-robin arbitration (previous
    /// accelerators: Graphicionado, GraphDynS).
    Crossbar,
    /// The paper's MDP-network.
    Mdp,
    /// The naive nW1R FIFO of Fig. 5 (b/c); only meaningful for the
    /// dataflow-propagation point.
    NaiveFifo,
}

impl NetworkKind {
    /// The corresponding frequency-model kind.
    pub fn model_kind(self) -> NetworkKindModel {
        match self {
            NetworkKind::Crossbar => NetworkKindModel::Crossbar,
            NetworkKind::Mdp => NetworkKindModel::Mdp,
            NetworkKind::NaiveFifo => NetworkKindModel::NaiveFifo,
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkKind::Crossbar => "crossbar",
            NetworkKind::Mdp => "MDP-network",
            NetworkKind::NaiveFifo => "nW1R-FIFO",
        };
        f.write_str(s)
    }
}

/// The paper's optimization ablation steps (Fig. 10): which interaction
/// points get an MDP-network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptLevel {
    /// Opt-O: MDP-network for Offset Array access.
    pub opt_o: bool,
    /// Opt-E: MDP-network for Edge Array access.
    pub opt_e: bool,
    /// Opt-D: MDP-network for Dataflow Propagation.
    pub opt_d: bool,
}

impl OptLevel {
    /// No optimizations (Fig. 10 "Baseline").
    pub const BASELINE: OptLevel = OptLevel {
        opt_o: false,
        opt_e: false,
        opt_d: false,
    };
    /// Opt-O only.
    pub const O: OptLevel = OptLevel {
        opt_o: true,
        opt_e: false,
        opt_d: false,
    };
    /// Opt-O + Opt-E.
    pub const OE: OptLevel = OptLevel {
        opt_o: true,
        opt_e: true,
        opt_d: false,
    };
    /// Opt-O + Opt-E + Opt-D (full HiGraph).
    pub const OED: OptLevel = OptLevel {
        opt_o: true,
        opt_e: true,
        opt_d: true,
    };

    /// The four ablation steps in Fig. 10 order.
    pub const ALL: [OptLevel; 4] = [Self::BASELINE, Self::O, Self::OE, Self::OED];

    /// Figure label for this step.
    pub fn label(self) -> &'static str {
        match (self.opt_o, self.opt_e, self.opt_d) {
            (false, false, false) => "Baseline",
            (true, false, false) => "OPT-O",
            (true, true, false) => "OPT-O + OPT-E",
            (true, true, true) => "OPT-O + OPT-E + OPT-D",
            _ => "custom",
        }
    }
}

/// Full configuration of a simulated accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceleratorConfig {
    /// Human-readable design name.
    pub name: String,
    /// Number of front-end channels `n` (ActiveVertex/Offset parts).
    pub front_channels: usize,
    /// Number of back-end channels `m` (Edge/tProperty parts, ePEs, vPEs).
    pub back_channels: usize,
    /// Fabric for Offset Array access (front-end vertex routing).
    pub offset_network: NetworkKind,
    /// Fabric for Edge Array access.
    pub edge_network: NetworkKind,
    /// Fabric for dataflow propagation (ePE → vPE).
    pub dataflow_network: NetworkKind,
    /// Buffer entries per channel in the dataflow fabric (the paper's
    /// Fig. 12 x-axis; HiGraph uses 160, the crossbar baseline 128).
    pub dataflow_buffer_per_channel: usize,
    /// Capacity of the small staging queues between pipeline stages.
    pub staging_capacity: usize,
    /// MDP-network radix (Sec. 5.4 design option; the paper chooses 2).
    pub radix: usize,
    /// Read ports of each terminal edge Dispatcher (the final stage of the
    /// Edge-Array MDP-network is a 2W2R module, so 2 is the paper-faithful
    /// value; 1 models a single-read-port dispatcher for ablation).
    pub dispatcher_read_ports: usize,
    /// Off-chip memory model. `None` (the default for every preset) is
    /// infinite bandwidth: offset and edge fetches are free, exactly the
    /// pre-memory-model behaviour. `Some(_)` routes them through the
    /// edge/offset cache and the HBM channel model (`docs/memory.md`).
    pub memory: Option<MemoryConfig>,
    /// Initial capacity (in packets) of each per-chip payload arena —
    /// the SoA stores behind the handle-based packet types
    /// (`crate::arena`). A host-simulation sizing hint only: arenas grow
    /// on demand, and the modeled hardware is unaffected.
    pub arena_capacity: usize,
    /// Event-wheel horizon in cycles for the scheduler's indexed window
    /// selection (DRAM channels, multi-chip drains). Must be a power of
    /// two in `[higraph_sim::wheel::MIN_WHEEL_HORIZON,
    /// higraph_sim::wheel::MAX_WHEEL_HORIZON]`; wakes beyond it spill to
    /// an overflow list, so this trades wheel memory against overflow
    /// scans. Purely a host-simulation knob: cycle counts and `Metrics`
    /// are bit-identical for any valid value.
    pub wheel_horizon: usize,
    /// Deterministic fault-injection schedule. `None` (every preset)
    /// injects nothing; `Some(_)` makes the run degrade gracefully under
    /// seeded link stalls, DRAM brown-outs, and chip pauses
    /// (`docs/robustness.md`).
    pub fault_plan: Option<FaultPlan>,
}

impl AcceleratorConfig {
    /// Table 1 "HiGraph": 32 front-end channels, 32 back-end channels,
    /// MDP-networks everywhere, 160-entry dataflow buffers.
    pub fn higraph() -> Self {
        AcceleratorConfig {
            name: "HiGraph".to_string(),
            front_channels: 32,
            back_channels: 32,
            offset_network: NetworkKind::Mdp,
            edge_network: NetworkKind::Mdp,
            dataflow_network: NetworkKind::Mdp,
            dataflow_buffer_per_channel: 160,
            staging_capacity: 8,
            radix: 2,
            dispatcher_read_ports: 2,
            memory: None,
            arena_capacity: 1024,
            wheel_horizon: higraph_sim::wheel::DEFAULT_WHEEL_HORIZON,
            fault_plan: None,
        }
    }

    /// Table 1 "HiGraph-mini": HiGraph with only 4 front-end channels, for
    /// a front-end-fair comparison against GraphDynS.
    pub fn higraph_mini() -> Self {
        AcceleratorConfig {
            name: "HiGraph-mini".to_string(),
            front_channels: 4,
            ..AcceleratorConfig::higraph()
        }
    }

    /// Table 1 "GraphDynS": the crossbar-based state-of-the-art baseline,
    /// 4 front-end channels (more would sink its frequency — Sec. 5.1),
    /// 32 back-end channels, 128-entry buffers.
    pub fn graphdyns() -> Self {
        AcceleratorConfig {
            name: "GraphDynS".to_string(),
            front_channels: 4,
            back_channels: 32,
            offset_network: NetworkKind::Crossbar,
            edge_network: NetworkKind::Crossbar,
            dataflow_network: NetworkKind::Crossbar,
            dataflow_buffer_per_channel: 128,
            staging_capacity: 8,
            radix: 2,
            dispatcher_read_ports: 2,
            memory: None,
            arena_capacity: 1024,
            wheel_horizon: higraph_sim::wheel::DEFAULT_WHEEL_HORIZON,
            fault_plan: None,
        }
    }

    /// HiGraph geometry with a chosen subset of the paper's optimizations
    /// (the Fig. 10 ablation): un-optimized points fall back to crossbars.
    pub fn higraph_with_opts(opts: OptLevel) -> Self {
        let k = |on: bool| {
            if on {
                NetworkKind::Mdp
            } else {
                NetworkKind::Crossbar
            }
        };
        AcceleratorConfig {
            name: format!("HiGraph[{}]", opts.label()),
            offset_network: k(opts.opt_o),
            edge_network: k(opts.opt_e),
            dataflow_network: k(opts.opt_d),
            ..AcceleratorConfig::higraph()
        }
    }

    /// Scales the design to `channels` front- and back-end channels
    /// (the Fig. 11 scalability sweep).
    pub fn scaled_to(mut self, channels: usize) -> Self {
        self.front_channels = channels;
        self.back_channels = channels;
        self.name = format!("{}x{channels}", self.name);
        self
    }

    /// The clock this design achieves, in GHz: the 1 GHz target capped by
    /// the slowest fabric at its widest interaction point (Fig. 4 model).
    pub fn effective_frequency_ghz(&self) -> f64 {
        let mut worst = [
            (self.offset_network, self.front_channels),
            (
                self.edge_network,
                self.back_channels.max(self.front_channels),
            ),
            (self.dataflow_network, self.back_channels),
        ]
        .into_iter()
        .map(|(kind, ch)| higraph_model::effective_frequency_ghz(kind.model_kind(), ch.max(2)))
        .fold(f64::INFINITY, f64::min);
        // A radix-r MDP stage is itself an r-port interaction point
        // (Sec. 5.4: too-large radices re-introduce design centralization).
        let uses_mdp = [
            self.offset_network,
            self.edge_network,
            self.dataflow_network,
        ]
        .contains(&NetworkKind::Mdp);
        if uses_mdp {
            worst = worst.min(
                higraph_model::mdp_radix_frequency_ghz(self.radix)
                    .min(higraph_model::frequency::TARGET_GHZ),
            );
        }
        worst
    }

    /// Validates the structural requirements of the chosen fabrics.
    ///
    /// # Errors
    ///
    /// Returns a message if channel counts are zero, not powers of two
    /// where MDP-networks require it, or the back-end is not a multiple of
    /// the front-end (needed by the edge dispatchers).
    pub fn validate(&self) -> Result<(), String> {
        if self.front_channels == 0 || self.back_channels == 0 {
            return Err("channel counts must be positive".to_string());
        }
        if !self.front_channels.is_power_of_two() || !self.back_channels.is_power_of_two() {
            return Err("channel counts must be powers of two".to_string());
        }
        if !self.back_channels.is_multiple_of(self.front_channels) {
            return Err(format!(
                "back-end channels {} must be a multiple of front-end channels {}",
                self.back_channels, self.front_channels
            ));
        }
        if self.radix < 2 || !self.radix.is_power_of_two() {
            return Err(format!("radix {} must be a power of two >= 2", self.radix));
        }
        if self.staging_capacity == 0 || self.dataflow_buffer_per_channel == 0 {
            return Err("buffer capacities must be positive".to_string());
        }
        if self.dispatcher_read_ports == 0 {
            return Err("dispatchers need at least one read port".to_string());
        }
        if self.arena_capacity == 0 {
            return Err(format!(
                "arena capacity 0 is invalid for '{}': packet arenas need room for at least \
                 one in-flight packet; valid capacities: 1 ..= usize::MAX (the default is 1024, \
                 and arenas grow on demand, so the capacity only sets the initial allocation)",
                self.name
            ));
        }
        if let Err(reason) = higraph_sim::EventWheel::try_new(1, self.wheel_horizon) {
            return Err(format!(
                "wheel horizon rejected for '{}': {reason}",
                self.name
            ));
        }
        if let Some(memory) = &self.memory {
            memory.validate()?;
        }
        if let Some(faults) = &self.fault_plan {
            faults.validate()?;
        }
        Ok(())
    }

    /// A canonical, stable textual encoding of every *behavioural* field
    /// — everything except the free-form `name` label — for use as a
    /// memoization key: two configurations with the same encoding
    /// produce bit-identical runs on the same graph. Field order is
    /// fixed; extending the struct must extend (never reorder) this
    /// encoding so existing keys stay distinct.
    pub fn canonical_encoding(&self) -> String {
        let net = |k: NetworkKind| match k {
            NetworkKind::Crossbar => "xbar",
            NetworkKind::Mdp => "mdp",
            NetworkKind::NaiveFifo => "fifo",
        };
        let mut s = format!(
            "fc={};bc={};on={};en={};dn={};buf={};stage={};radix={};ports={};arena={};wheel={}",
            self.front_channels,
            self.back_channels,
            net(self.offset_network),
            net(self.edge_network),
            net(self.dataflow_network),
            self.dataflow_buffer_per_channel,
            self.staging_capacity,
            self.radix,
            self.dispatcher_read_ports,
            self.arena_capacity,
            self.wheel_horizon,
        );
        match &self.memory {
            None => s.push_str(";mem=none"),
            Some(m) => {
                s.push_str(&format!(
                    ";mem=ch{}xb{}q{}l{}r{}c{}cas{}rcd{}rp{}",
                    m.channels,
                    m.banks_per_channel,
                    m.queue_depth,
                    m.line_bytes,
                    m.row_bytes,
                    m.cache_kb,
                    m.timing.t_cas,
                    m.timing.t_rcd,
                    m.timing.t_rp,
                ));
            }
        }
        // Appended (never reordered) so pre-fault-plan keys stay valid.
        match &self.fault_plan {
            None => s.push_str(";faults=none"),
            Some(f) => {
                s.push_str(&format!(
                    ";faults=s{}e{}d{}h{}",
                    f.seed, f.events, f.max_duration, f.horizon
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let h = AcceleratorConfig::higraph();
        assert_eq!((h.front_channels, h.back_channels), (32, 32));
        let m = AcceleratorConfig::higraph_mini();
        assert_eq!((m.front_channels, m.back_channels), (4, 32));
        let g = AcceleratorConfig::graphdyns();
        assert_eq!((g.front_channels, g.back_channels), (4, 32));
        assert_eq!(g.dataflow_network, NetworkKind::Crossbar);
        for c in [h, m, g] {
            c.validate().expect("presets are valid");
            // Table 1: all three run at 1 GHz
            assert!(
                (c.effective_frequency_ghz() - 1.0).abs() < 1e-9,
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn graphdyns_loses_frequency_at_64_channels() {
        let g = AcceleratorConfig::graphdyns().scaled_to(64);
        assert!(g.effective_frequency_ghz() < 1.0);
        let h = AcceleratorConfig::higraph().scaled_to(256);
        assert_eq!(h.effective_frequency_ghz(), 1.0);
    }

    #[test]
    fn opt_levels_map_to_networks() {
        let b = AcceleratorConfig::higraph_with_opts(OptLevel::BASELINE);
        assert_eq!(b.offset_network, NetworkKind::Crossbar);
        assert_eq!(b.dataflow_network, NetworkKind::Crossbar);
        let oe = AcceleratorConfig::higraph_with_opts(OptLevel::OE);
        assert_eq!(oe.offset_network, NetworkKind::Mdp);
        assert_eq!(oe.edge_network, NetworkKind::Mdp);
        assert_eq!(oe.dataflow_network, NetworkKind::Crossbar);
        assert_eq!(OptLevel::OED.label(), "OPT-O + OPT-E + OPT-D");
    }

    #[test]
    fn memory_defaults_to_infinite_and_validates() {
        assert!(AcceleratorConfig::higraph().memory.is_none());
        let mut c = AcceleratorConfig::higraph();
        c.memory = Some(MemoryConfig::hbm2());
        c.validate().expect("hbm2 preset is valid");
        c.memory = Some(MemoryConfig {
            line_bytes: 48,
            ..MemoryConfig::hbm2()
        });
        assert!(c.validate().is_err());
        // a power-of-two line smaller than one edge would break the
        // per-line stall-guard accounting
        c.memory = Some(MemoryConfig {
            line_bytes: 8,
            ..MemoryConfig::hbm2()
        });
        assert!(c.validate().is_err());
        c.memory = Some(MemoryConfig {
            line_bytes: 16,
            row_bytes: 2048,
            ..MemoryConfig::hbm2()
        });
        assert!(c.validate().is_ok());
        c.memory = Some(MemoryConfig {
            channels: 0,
            ..MemoryConfig::hbm2()
        });
        assert!(c.validate().is_err());
        c.memory = Some(MemoryConfig {
            row_bytes: 96,
            ..MemoryConfig::hbm2()
        });
        assert!(c.validate().is_err());
        c.memory = Some(MemoryConfig::hbm2().with_cache_kb(0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn canonical_encoding_ignores_name_and_tracks_behaviour() {
        let a = AcceleratorConfig::higraph();
        let mut renamed = a.clone();
        renamed.name = "something else".to_string();
        assert_eq!(a.canonical_encoding(), renamed.canonical_encoding());

        assert_ne!(
            a.canonical_encoding(),
            AcceleratorConfig::higraph_mini().canonical_encoding()
        );
        assert_ne!(
            a.canonical_encoding(),
            AcceleratorConfig::graphdyns().canonical_encoding()
        );

        let mut with_mem = a.clone();
        with_mem.memory = Some(MemoryConfig::hbm2());
        assert_ne!(a.canonical_encoding(), with_mem.canonical_encoding());
        let mut bigger_cache = with_mem.clone();
        bigger_cache.memory = Some(MemoryConfig::hbm2().with_cache_kb(512));
        assert_ne!(
            with_mem.canonical_encoding(),
            bigger_cache.canonical_encoding()
        );
    }

    #[test]
    fn fault_plan_encodes_and_validates() {
        let mut c = AcceleratorConfig::higraph();
        assert!(c.fault_plan.is_none());
        assert!(c.canonical_encoding().ends_with(";faults=none"));
        let plan = FaultPlan {
            seed: 11,
            events: 4,
            max_duration: 100,
            horizon: 5000,
        };
        c.fault_plan = Some(plan);
        c.validate().expect("well-formed plan");
        assert!(c.canonical_encoding().ends_with(";faults=s11e4d100h5000"));
        assert_ne!(
            c.canonical_encoding(),
            AcceleratorConfig::higraph().canonical_encoding()
        );
        c.fault_plan = Some(FaultPlan {
            max_duration: 0,
            ..plan
        });
        assert!(c.validate().is_err());
        c.fault_plan = Some(FaultPlan { horizon: 0, ..plan });
        assert!(c.validate().is_err());
        // an empty schedule is trivially valid regardless of bounds
        c.fault_plan = Some(FaultPlan {
            seed: 0,
            events: 0,
            max_duration: 0,
            horizon: 0,
        });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut c = AcceleratorConfig::higraph();
        c.front_channels = 12;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::higraph();
        c.front_channels = 64;
        c.back_channels = 32;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::higraph();
        c.radix = 3;
        assert!(c.validate().is_err());
    }
}
