//! The scatter pipeline's back-end (Fig. 6, right): Edge Array access →
//! ePEs (`Process_Edge`) → dataflow propagation fabric → vPEs (`Reduce`)
//! into the tProperty banks.
//!
//! [`BackEnd`] owns stages 1–3 of the per-cycle protocol (the front-end
//! owns 4–6); its [`BackEnd::step`] method is the combinational phase and
//! the clock edge comes from its [`ClockedComponent`] implementation,
//! driven by the shared `higraph_sim::Scheduler`.

use crate::arena::{EdgeArena, PairArena};
use crate::edge_access::{BankRead, EdgeAccess};
use crate::metrics::Metrics;
use crate::netfactory::{AnyNetwork, NetworkFactory};
use crate::packets::{EdgeRef, ImmRef};
use higraph_graph::{Csr, EdgeId};
use higraph_sim::{ClockedComponent, Fifo, Network, NetworkStats};
use higraph_vcpm::VertexProgram;

/// Back-end microarchitectural state, reused across scatter phases.
#[derive(Debug)]
pub(crate) struct BackEnd<P> {
    /// The Edge Array access unit — the bridge the front-end's Replay
    /// Engines push `{Off, Len}` chunks into (hence `pub(crate)`: the
    /// engine hands it to `FrontEnd::step` each cycle).
    pub(crate) edge_access: EdgeAccess<P>,
    /// Per-channel pending-edge queues in front of the ePEs. Hold
    /// 4-byte [`EdgeRef`] handles; the `(dst, weight, u_prop)` payloads
    /// stay put in `edges`.
    epe_q: Vec<Fifo<EdgeRef>>,
    /// The ePE → vPE dataflow propagation fabric. Moves 8-byte
    /// [`ImmRef`] handles into the `imms` arena.
    dataflow: AnyNetwork<ImmRef>,
    /// SoA store for pending-edge payloads (see `crate::arena`).
    edges: EdgeArena<P>,
    /// SoA store for `(v, imm)` update payloads.
    imms: PairArena<P>,
    /// Per-bank free-slot scratch for stage 3, reused every cycle.
    epe_space: Vec<bool>,
    /// Bank-read staging scratch for stage 3, reused every cycle.
    bank_reads: Vec<BankRead<P>>,
}

impl<P: Copy + 'static> BackEnd<P> {
    /// Builds the back-end for a validated configuration.
    pub(crate) fn new(factory: &NetworkFactory) -> Self {
        let config = factory.config();
        let m = config.back_channels;
        // lint:allow-item(hot-path-alloc): construction-time: staging queues and scratch are built once per validated configuration
        BackEnd {
            edge_access: factory.edge_access(),
            epe_q: (0..m).map(|_| Fifo::new(config.staging_capacity)).collect(),
            dataflow: factory.dataflow_fabric(),
            edges: EdgeArena::with_capacity(config.arena_capacity),
            imms: PairArena::with_capacity(config.arena_capacity),
            epe_space: vec![false; m],
            bank_reads: Vec::new(),
        }
    }

    /// The back-end's combinational phase: vPE reduce, ePE process-edge,
    /// and edge-bank reads (stages 1–3, evaluated consumer-first).
    ///
    /// `t_props` is the tProperty window this back-end may write —
    /// global vertex `v` lives at `t_props[v - t_base]`. The serial
    /// engine passes the whole array with `t_base == 0`; the sharded
    /// executor passes each chip its owned destination interval, which
    /// is what lets the chips step concurrently on disjoint storage.
    pub(crate) fn step<Prog: VertexProgram<Prop = P>>(
        &mut self,
        program: &Prog,
        graph: &Csr,
        t_props: &mut [P],
        t_base: u32,
        metrics: &mut Metrics,
    ) {
        let m = self.epe_q.len();

        // (1) vPEs: drain the dataflow fabric, fold into tProperty.
        for c in 0..m {
            match self.dataflow.pop(c) {
                Some(pkt) => {
                    debug_assert_eq!(pkt.dest as usize, c);
                    let v = self.imms.key(pkt.handle);
                    let imm = self.imms.payload(pkt.handle);
                    self.imms.free(pkt.handle);
                    let t = &mut t_props[(v - t_base) as usize];
                    *t = program.reduce(*t, imm);
                }
                None => {
                    metrics.vpe_starvation_cycles += 1;
                    metrics.vpe_starvation_per_channel[c] += 1;
                }
            }
        }

        // (2) ePEs: Process_Edge and inject into the dataflow fabric
        // (alloc-then-free-on-reject, see `crate::arena`).
        for c in 0..m {
            let Some(&EdgeRef(edge)) = self.epe_q[c].peek() else {
                continue;
            };
            let dst = self.edges.dst(edge);
            let imm = program.process_edge(self.edges.u_prop(edge), self.edges.weight(edge));
            let handle = self.imms.alloc(dst, imm);
            let pkt = ImmRef {
                handle,
                dest: dst % m as u32,
            };
            if self.dataflow.push(c, pkt).is_ok() {
                self.epe_q[c].pop();
                self.edges.free(edge);
            } else {
                self.imms.free(handle);
            }
        }

        // (3) Edge banks: one read per bank into the ePE queues.
        for (space, q) in self.epe_space.iter_mut().zip(&self.epe_q) {
            *space = !q.is_full();
        }
        self.edge_access
            .issue_reads_into(&self.epe_space, &mut self.bank_reads);
        for read in &self.bank_reads {
            let e = graph.edge(EdgeId(read.edge_index));
            let handle = self.edges.alloc(e.dst.0, e.weight, read.payload);
            if let Err(rejected) = self.epe_q[read.bank].push(EdgeRef(handle)) {
                debug_assert!(false, "edge unit overran an ePE queue");
                self.edges.free(rejected.0);
            }
            metrics.edges_processed += 1;
        }
    }

    /// Commits the per-cycle effects of `cycles` idle [`BackEnd::step`]s
    /// in O(channels): stage 1 polls every vPE each cycle regardless of
    /// work (counting starvation when the fabric delivers nothing — and
    /// a drained back-end delivers nothing), and the direct edge-access
    /// variant's arbitration pointer rotates per issue call. Only valid
    /// when the back-end is drained (the fast-forward precondition).
    pub(crate) fn commit_idle(&mut self, cycles: u64, metrics: &mut Metrics) {
        let m = self.epe_q.len() as u64;
        metrics.vpe_starvation_cycles += m * cycles;
        for per_channel in metrics.vpe_starvation_per_channel.iter_mut() {
            *per_channel += cycles;
        }
        self.edge_access.commit_idle_issue(cycles);
    }

    /// Cumulative statistics of the edge-access unit.
    pub(crate) fn edge_stats(&self) -> NetworkStats {
        self.edge_access.stats()
    }

    /// Cumulative statistics of the dataflow fabric.
    pub(crate) fn dataflow_stats(&self) -> NetworkStats {
        // lint:allow(panic-freedom): infallible: every fabric constructor installs a stats block
        self.dataflow.network_stats().expect("fabrics keep stats")
    }
}

impl<P: Copy + 'static> ClockedComponent for BackEnd<P> {
    fn tick(&mut self) {
        self.edge_access.tick();
        self.dataflow.tick();
    }

    fn in_flight(&self) -> usize {
        ClockedComponent::in_flight(&self.edge_access)
            + self.epe_q.in_flight()
            + self.dataflow.in_flight()
    }

    /// Short-circuiting drain check — evaluated every cycle by the
    /// scheduler, so it must not pay the full `in_flight` sum while any
    /// early part still holds work.
    fn is_drained(&self) -> bool {
        self.edge_access.is_empty() && self.epe_q.is_drained() && self.dataflow.is_drained()
    }

    // `next_activity` keeps the default: a non-drained back-end always
    // does something at its next step (reads issue, ePEs fire, the
    // fabric moves or counts blocking), so only the drained state skips.

    fn skip(&mut self, cycles: u64) {
        ClockedComponent::skip(&mut self.edge_access, cycles);
        self.dataflow.skip(cycles);
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for BackEnd<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"BACK");
        w.usize(self.epe_q.len());
        self.edge_access.save(w);
        self.epe_q[..].save(w);
        self.dataflow.save(w);
        self.edges.save(w);
        self.imms.save(w);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"BACK")?;
        let m = r.usize()?;
        if m != self.epe_q.len() {
            return Err(higraph_sim::SnapError::new(format!(
                "back-end shape mismatch: snapshot {m} channels, live {}",
                self.epe_q.len()
            )));
        }
        self.edge_access.load(r)?;
        self.epe_q[..].load(r)?;
        self.dataflow.load(r)?;
        self.edges.load(r)?;
        self.imms.load(r)?;
        // Per-cycle scratch is not state.
        self.bank_reads.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use higraph_graph::gen::erdos_renyi;
    use higraph_mdp::EdgeRange;
    use higraph_vcpm::programs::Sssp;

    #[test]
    fn processes_a_range_end_to_end() {
        let factory = NetworkFactory::new(&AcceleratorConfig::higraph_mini()).expect("valid");
        let graph = erdos_renyi(64, 512, 15, 5);
        let mut be: BackEnd<u64> = BackEnd::new(&factory);
        let prog = Sssp::from_source(0);
        let mut t_props = vec![higraph_vcpm::INF; 64];
        let mut metrics = Metrics {
            vpe_starvation_per_channel: vec![0; 32],
            ..Metrics::default()
        };
        let (off, n_off) = graph.offset_pair(higraph_graph::VertexId(0));
        let len = (n_off - off) as u32;
        be.edge_access
            .push(
                0,
                EdgeRange {
                    off,
                    len,
                    payload: 0u64,
                },
            )
            .expect("accepts first range");
        let mut scheduler = higraph_sim::Scheduler::new().with_stall_guard(10_000);
        scheduler
            .drain(&mut be, |be, _| {
                be.step(&prog, &graph, &mut t_props, 0, &mut metrics);
            })
            .expect("back-end drains");
        assert_eq!(metrics.edges_processed, u64::from(len));
        assert_eq!(metrics.dataflow_net, NetworkStats::default()); // not yet finalized
        assert!(be.dataflow_stats().delivered == u64::from(len));
        assert!(t_props.iter().any(|&t| t != higraph_vcpm::INF) || len == 0);
    }
}
