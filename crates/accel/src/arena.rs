//! Structure-of-arrays payload arenas for the hot-path packet types.
//!
//! The fabrics (ring FIFOs, crossbar, MDP-networks) move packets by
//! value every cycle. Carrying full payload structs through them means
//! every hop copies the whole packet — ID, property, destination — even
//! though only the destination is inspected in flight. These arenas
//! split the payload fields into parallel arrays owned per chip, so the
//! fabrics move 8-byte handle refs ([`crate::packets::VertexRef`],
//! [`crate::packets::ImmRef`], [`crate::packets::EdgeRef`]) and the
//! payload bytes are written once at allocation and read once at the
//! consuming stage.
//!
//! # Handle lifetime conventions
//!
//! * A handle is allocated by the producing stage immediately before the
//!   fabric `push`; if the fabric rejects the push, the producer frees
//!   the handle in the same cycle (alloc-then-free-on-reject). Handles
//!   therefore never dangle in producer-side retry loops.
//! * A handle is freed by the consuming stage in the cycle it pops the
//!   ref and reads the payload — never earlier, never later.
//! * Handles are chip-private: each `ScatterPipeline` owns its arenas,
//!   so the sharded drains' `split_at_mut` chip-disjointness (and with
//!   it parallel-drain determinism) is preserved by construction.
//! * The free list is LIFO, so single-packet churn reuses one hot slot.
//!
//! Arenas are host-simulation storage only: allocation order, capacity,
//! and growth never influence modeled cycles or `Metrics` — the packets'
//! observable fields (IDs, payloads, destinations) take exactly the
//! values the struct-carrying pipeline computed. Debug builds verify
//! the lifetime conventions (double-free, use-after-free) per access.

/// SoA arena for `(u32 key, P payload)` pairs — the payload layout
/// shared by vertex packets (`(u, prop)`) and update packets
/// (`(v, imm)`).
#[derive(Debug, Clone)]
pub struct PairArena<P> {
    keys: Vec<u32>,
    payloads: Vec<P>,
    /// LIFO free list of slot indices.
    free: Vec<u32>,
    /// Debug-only liveness map guarding the handle-lifetime conventions.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl<P: Copy> PairArena<P> {
    /// An arena with `capacity` pre-sized slots (it grows on demand).
    pub fn with_capacity(capacity: usize) -> Self {
        // lint:allow-item(hot-path-alloc): construction-time: the free list and debug live set start empty; slot stores are pre-sized from the caller's capacity
        PairArena {
            keys: Vec::with_capacity(capacity),
            payloads: Vec::with_capacity(capacity),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::new(),
        }
    }

    /// Stores a pair and returns its handle.
    #[inline]
    pub fn alloc(&mut self, key: u32, payload: P) -> u32 {
        match self.free.pop() {
            Some(h) => {
                let i = h as usize;
                self.keys[i] = key;
                self.payloads[i] = payload;
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.live[i], "arena slot reused while live");
                    self.live[i] = true;
                }
                h
            }
            None => {
                // lint:allow(panic-freedom): infallible until the arena holds >4G live pairs, far beyond any configured capacity
                let h = u32::try_from(self.keys.len()).expect("arena outgrew u32 handles");
                self.keys.push(key);
                self.payloads.push(payload);
                #[cfg(debug_assertions)]
                self.live.push(true);
                h
            }
        }
    }

    /// The key stored under `handle`.
    #[inline]
    pub fn key(&self, handle: u32) -> u32 {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[handle as usize], "read of a freed arena handle");
        self.keys[handle as usize]
    }

    /// The payload stored under `handle`.
    #[inline]
    pub fn payload(&self, handle: u32) -> P {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[handle as usize], "read of a freed arena handle");
        self.payloads[handle as usize]
    }

    /// Returns `handle`'s slot to the free list.
    #[inline]
    pub fn free(&mut self, handle: u32) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[handle as usize], "double free of an arena handle");
            self.live[handle as usize] = false;
        }
        self.free.push(handle);
    }

    /// Handles currently allocated (= packets in flight through the
    /// fabrics this arena backs).
    pub fn in_use(&self) -> usize {
        self.keys.len() - self.free.len()
    }
}

/// SoA arena for pending edges: `(dst, weight, u_prop)` triples waiting
/// at the ePE queues.
#[derive(Debug, Clone)]
pub struct EdgeArena<P> {
    dsts: Vec<u32>,
    weights: Vec<u32>,
    u_props: Vec<P>,
    free: Vec<u32>,
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl<P: Copy> EdgeArena<P> {
    /// An arena with `capacity` pre-sized slots (it grows on demand).
    pub fn with_capacity(capacity: usize) -> Self {
        // lint:allow-item(hot-path-alloc): construction-time: the free list and debug live set start empty; slot stores are pre-sized from the caller's capacity
        EdgeArena {
            dsts: Vec::with_capacity(capacity),
            weights: Vec::with_capacity(capacity),
            u_props: Vec::with_capacity(capacity),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::new(),
        }
    }

    /// Stores a pending edge and returns its handle.
    #[inline]
    pub fn alloc(&mut self, dst: u32, weight: u32, u_prop: P) -> u32 {
        match self.free.pop() {
            Some(h) => {
                let i = h as usize;
                self.dsts[i] = dst;
                self.weights[i] = weight;
                self.u_props[i] = u_prop;
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.live[i], "arena slot reused while live");
                    self.live[i] = true;
                }
                h
            }
            None => {
                // lint:allow(panic-freedom): infallible until the arena holds >4G live edges, far beyond any configured capacity
                let h = u32::try_from(self.dsts.len()).expect("arena outgrew u32 handles");
                self.dsts.push(dst);
                self.weights.push(weight);
                self.u_props.push(u_prop);
                #[cfg(debug_assertions)]
                self.live.push(true);
                h
            }
        }
    }

    /// The destination vertex of the edge under `handle`.
    #[inline]
    pub fn dst(&self, handle: u32) -> u32 {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[handle as usize], "read of a freed arena handle");
        self.dsts[handle as usize]
    }

    /// The weight of the edge under `handle`.
    #[inline]
    pub fn weight(&self, handle: u32) -> u32 {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[handle as usize], "read of a freed arena handle");
        self.weights[handle as usize]
    }

    /// The source property paired with the edge under `handle`.
    #[inline]
    pub fn u_prop(&self, handle: u32) -> P {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[handle as usize], "read of a freed arena handle");
        self.u_props[handle as usize]
    }

    /// Returns `handle`'s slot to the free list.
    #[inline]
    pub fn free(&mut self, handle: u32) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[handle as usize], "double free of an arena handle");
            self.live[handle as usize] = false;
        }
        self.free.push(handle);
    }

    /// Handles currently allocated.
    pub fn in_use(&self) -> usize {
        self.dsts.len() - self.free.len()
    }
}

/// Rebuilds the debug liveness map from a restored free list: every slot
/// is live unless it sits on the free list. Bounds and double-free
/// entries in a corrupt snapshot surface as [`higraph_sim::SnapError`]s
/// via the returned flags.
fn rebuild_live(len: usize, free: &[u32]) -> Result<Vec<bool>, higraph_sim::SnapError> {
    // lint:allow(hot-path-alloc): restore-time rebuild of the debug liveness map, never per-cycle code
    let mut live = vec![true; len];
    for &h in free {
        let i = h as usize;
        if i >= len {
            return Err(higraph_sim::SnapError::new(format!(
                "arena free-list handle {h} out of range for {len} slots"
            )));
        }
        if !live[i] {
            return Err(higraph_sim::SnapError::new(format!(
                "arena free-list handle {h} appears twice"
            )));
        }
        live[i] = false;
    }
    Ok(live)
}

/// Arena slot stores grow with traffic, so (unlike configuration-sized
/// structures) a snapshot carries their full contents and lengths; the
/// free-list *order* is state too — it decides future handle reuse, and
/// handles ride inside in-flight packets.
impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for PairArena<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"PARN");
        w.seq(self.keys.iter());
        w.seq(self.payloads.iter());
        w.seq(self.free.iter());
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"PARN")?;
        let keys: Vec<u32> = r.seq(u32::MAX as usize)?;
        let payloads: Vec<P> = r.seq(u32::MAX as usize)?;
        let free: Vec<u32> = r.seq(u32::MAX as usize)?;
        if payloads.len() != keys.len() || free.len() > keys.len() {
            return Err(higraph_sim::SnapError::new(format!(
                "pair arena inconsistent: {} keys, {} payloads, {} free",
                keys.len(),
                payloads.len(),
                free.len()
            )));
        }
        let live = rebuild_live(keys.len(), &free)?;
        // Release builds have no liveness map; silence the unused binding.
        let _ = &live;
        self.keys = keys;
        self.payloads = payloads;
        self.free = free;
        #[cfg(debug_assertions)]
        {
            self.live = live;
        }
        Ok(())
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for EdgeArena<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"EARN");
        w.seq(self.dsts.iter());
        w.seq(self.weights.iter());
        w.seq(self.u_props.iter());
        w.seq(self.free.iter());
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"EARN")?;
        let dsts: Vec<u32> = r.seq(u32::MAX as usize)?;
        let weights: Vec<u32> = r.seq(u32::MAX as usize)?;
        let u_props: Vec<P> = r.seq(u32::MAX as usize)?;
        let free: Vec<u32> = r.seq(u32::MAX as usize)?;
        if weights.len() != dsts.len() || u_props.len() != dsts.len() || free.len() > dsts.len() {
            return Err(higraph_sim::SnapError::new(format!(
                "edge arena inconsistent: {} dsts, {} weights, {} props, {} free",
                dsts.len(),
                weights.len(),
                u_props.len(),
                free.len()
            )));
        }
        let live = rebuild_live(dsts.len(), &free)?;
        let _ = &live;
        self.dsts = dsts;
        self.weights = weights;
        self.u_props = u_props;
        self.free = free;
        #[cfg(debug_assertions)]
        {
            self.live = live;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_arena_round_trips_and_reuses_slots_lifo() {
        let mut a: PairArena<u64> = PairArena::with_capacity(4);
        let h0 = a.alloc(10, 100);
        let h1 = a.alloc(11, 101);
        assert_eq!((a.key(h0), a.payload(h0)), (10, 100));
        assert_eq!((a.key(h1), a.payload(h1)), (11, 101));
        assert_eq!(a.in_use(), 2);
        a.free(h0);
        assert_eq!(a.in_use(), 1);
        // LIFO: the freed slot is the next one handed out
        let h2 = a.alloc(12, 102);
        assert_eq!(h2, h0);
        assert_eq!((a.key(h2), a.payload(h2)), (12, 102));
        a.free(h1);
        a.free(h2);
        assert_eq!(a.in_use(), 0);
    }

    #[test]
    fn edge_arena_round_trips() {
        let mut a: EdgeArena<u64> = EdgeArena::with_capacity(2);
        let h = a.alloc(7, 3, 99);
        assert_eq!((a.dst(h), a.weight(h), a.u_prop(h)), (7, 3, 99));
        a.free(h);
        let h2 = a.alloc(8, 4, 98);
        assert_eq!(h2, h);
        assert_eq!(a.in_use(), 1);
    }

    #[test]
    fn arenas_grow_past_their_initial_capacity() {
        let mut a: PairArena<u32> = PairArena::with_capacity(1);
        let handles: Vec<u32> = (0..100).map(|i| a.alloc(i, i * 2)).collect();
        assert_eq!(a.in_use(), 100);
        for &h in &handles {
            assert_eq!(a.payload(h), a.key(h) * 2);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug_builds() {
        let mut a: PairArena<u32> = PairArena::with_capacity(1);
        let h = a.alloc(1, 2);
        a.free(h);
        a.free(h);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freed arena handle")]
    fn use_after_free_is_caught_in_debug_builds() {
        let mut a: EdgeArena<u32> = EdgeArena::with_capacity(1);
        let h = a.alloc(1, 2, 3);
        a.free(h);
        let _ = a.dst(h);
    }
}
