//! The `repro dse` design space: a discrete genome over
//! [`AcceleratorConfig`], with seeded sampling, local mutation, and
//! objective assembly against the calibrated cost models.
//!
//! A candidate design is a [`Genome`] — one index per [`Axis`] into that
//! axis's value list. [`DesignSpace::build`] maps a genome to a validated
//! [`DesignPoint`] (an [`AcceleratorConfig`] plus a chip count),
//! deterministically repairing the one cross-axis constraint (front-end
//! channels never exceed back-end channels). [`DesignPoint::objectives`]
//! turns a simulated cycle count into the minimize-all
//! [`Objectives`] tuple the Pareto front
//! compares: time at the design's effective clock, silicon area, and run
//! energy, each assembled from `higraph-model`'s calibrated area, power
//! and frequency models (see `docs/model.md` and `docs/dse.md`).
//!
//! Everything is deterministic: sampling and mutation draw only from the
//! caller's seeded [`StdRng`], and building a genome never consults one.

use crate::config::{AcceleratorConfig, MemoryConfig, NetworkKind};
use crate::sharded::ShardConfig;
use higraph_model::{
    cache_area_mm2, cache_power_mw, energy_nj, fabric_area_mm2, fabric_power_mw, Objectives,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of genome axes.
pub const AXES: usize = 12;

/// One tunable dimension of the design space.
///
/// Every axis takes values from a small fixed list ([`Axis::values`]);
/// a genome stores the *index* into that list. All axes except
/// [`Axis::Fabric`] are ordered (their values are monotone sizes), which
/// is what lets [`DesignSpace::mutate`] take ±1 hill-climbing steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Front-end channel count `n`.
    FrontChannels,
    /// Back-end channel count `m`.
    BackChannels,
    /// Fabric assignment for the three interaction points (categorical):
    /// `0` = MDP everywhere (HiGraph), `1` = crossbar everywhere
    /// (GraphDynS-style), `2` = MDP front/edge with the naive nW1R FIFO
    /// at the dataflow point (Fig. 5 b/c ablation).
    Fabric,
    /// Dataflow-fabric buffer entries per channel (Fig. 12 x-axis).
    DataflowBuffer,
    /// Staging-queue capacity between pipeline stages.
    Staging,
    /// MDP-network radix (Sec. 5.4 design option).
    Radix,
    /// On-chip edge/offset cache in KiB; `0` selects *no* memory model
    /// (infinite bandwidth), in which case the two DRAM axes are inert.
    CacheKb,
    /// HBM channel count (only when a memory model is selected).
    DramChannels,
    /// DRAM banks per channel (only when a memory model is selected).
    DramBanks,
    /// Chip count `P`; values above 1 shard the graph across chips.
    Chips,
    /// Initial packet-arena capacity (host-simulation knob; cycle counts
    /// are unaffected, so this axis never changes the objectives).
    ArenaCapacity,
    /// Event-wheel horizon (host-simulation knob, like the arenas).
    WheelHorizon,
}

impl Axis {
    /// Every axis, in genome order (`axis as usize` is its slot).
    pub const ALL: [Axis; AXES] = [
        Axis::FrontChannels,
        Axis::BackChannels,
        Axis::Fabric,
        Axis::DataflowBuffer,
        Axis::Staging,
        Axis::Radix,
        Axis::CacheKb,
        Axis::DramChannels,
        Axis::DramBanks,
        Axis::Chips,
        Axis::ArenaCapacity,
        Axis::WheelHorizon,
    ];

    /// The value list this axis draws from (genomes store indices into
    /// it). For [`Axis::Fabric`] the values are the categorical codes
    /// documented on the variant.
    pub fn values(self) -> &'static [usize] {
        match self {
            Axis::FrontChannels => &[4, 8, 16, 32],
            Axis::BackChannels => &[16, 32, 64, 128],
            Axis::Fabric => &[0, 1, 2],
            Axis::DataflowBuffer => &[40, 80, 128, 160, 240, 320],
            Axis::Staging => &[4, 8, 16],
            Axis::Radix => &[2, 4, 8],
            Axis::CacheKb => &[0, 64, 256, 1024],
            Axis::DramChannels => &[2, 4, 8],
            Axis::DramBanks => &[4, 8, 16],
            Axis::Chips => &[1, 2, 4],
            Axis::ArenaCapacity => &[256, 1024, 4096],
            Axis::WheelHorizon => &[256, 1024, 4096],
        }
    }

    /// Whether the values form a monotone scale (±1 steps are local
    /// moves). Only the fabric assignment is categorical.
    pub fn is_ordered(self) -> bool {
        !matches!(self, Axis::Fabric)
    }
}

/// A candidate design as one value-index per [`Axis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Genome(pub [usize; AXES]);

impl Genome {
    /// The stored index for `axis`.
    pub fn index(&self, axis: Axis) -> usize {
        self.0[axis as usize]
    }

    /// The dereferenced value for `axis`.
    pub fn value(&self, axis: Axis) -> usize {
        axis.values()[self.index(axis)]
    }

    /// This genome with `axis` set to the value-list index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the axis.
    pub fn with(mut self, axis: Axis, index: usize) -> Genome {
        // lint:allow(panic-freedom): documented panic: Genome::with rejects an out-of-range axis index
        assert!(
            index < axis.values().len(),
            "index out of range for {axis:?}"
        );
        self.0[axis as usize] = index;
        self
    }
}

/// A buildable design: a validated configuration plus a chip count.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The per-chip accelerator configuration.
    pub config: AcceleratorConfig,
    /// Number of chips the run is sharded across.
    pub chips: usize,
    /// The genome this point was built from.
    pub genome: Genome,
}

impl DesignPoint {
    /// The shard geometry for multi-chip points (`None` when `chips` is
    /// 1, meaning a plain single-[`Engine`](crate::engine::Engine) run).
    pub fn shard_config(&self) -> Option<ShardConfig> {
        (self.chips > 1).then(|| ShardConfig::new(self.chips))
    }

    /// Total modeled silicon area in mm²: the three interaction fabrics
    /// plus the on-chip cache, multiplied by the chip count.
    pub fn area_mm2(&self) -> f64 {
        let c = &self.config;
        let fabrics = fabric_area_mm2(
            c.offset_network.model_kind(),
            c.front_channels,
            c.staging_capacity,
        ) + fabric_area_mm2(
            c.edge_network.model_kind(),
            c.back_channels.max(c.front_channels),
            c.staging_capacity,
        ) + fabric_area_mm2(
            c.dataflow_network.model_kind(),
            c.back_channels,
            c.dataflow_buffer_per_channel,
        );
        let cache = c.memory.map_or(0.0, |m| cache_area_mm2(m.cache_kb));
        (fabrics + cache) * self.chips as f64
    }

    /// Total modeled power in mW, assembled like [`Self::area_mm2`].
    pub fn power_mw(&self) -> f64 {
        let c = &self.config;
        let fabrics = fabric_power_mw(
            c.offset_network.model_kind(),
            c.front_channels,
            c.staging_capacity,
        ) + fabric_power_mw(
            c.edge_network.model_kind(),
            c.back_channels.max(c.front_channels),
            c.staging_capacity,
        ) + fabric_power_mw(
            c.dataflow_network.model_kind(),
            c.back_channels,
            c.dataflow_buffer_per_channel,
        );
        let cache = c.memory.map_or(0.0, |m| cache_power_mw(m.cache_kb));
        (fabrics + cache) * self.chips as f64
    }

    /// The minimize-all objective tuple for a run that took `cycles`
    /// simulated cycles: time at the design's effective clock, area, and
    /// energy (power × time).
    pub fn objectives(&self, cycles: u64) -> Objectives {
        let ghz = self.config.effective_frequency_ghz();
        let time_ns = cycles as f64 / ghz;
        Objectives {
            cycles,
            time_ns,
            area_mm2: self.area_mm2(),
            energy_mj: energy_nj(self.power_mw(), time_ns) / 1e6,
        }
    }
}

/// Seeded sampling, mutation and construction over the genome lattice.
///
/// All functions are associated (the space itself is static data on
/// [`Axis`]); randomness comes only from the caller's [`StdRng`], so the
/// whole DSE is reproducible from one seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignSpace;

impl DesignSpace {
    /// Number of points in the lattice (before constraint repair folds a
    /// few onto each other).
    pub fn size() -> usize {
        Axis::ALL.iter().map(|a| a.values().len()).product()
    }

    /// Draws a uniform genome.
    pub fn sample(rng: &mut StdRng) -> Genome {
        let mut g = [0usize; AXES];
        for axis in Axis::ALL {
            g[axis as usize] = rng.gen_range(0..axis.values().len());
        }
        Genome(g)
    }

    /// One local move: picks an axis, then steps its index ±1 (ordered
    /// axes, reflecting at the ends) or re-draws a different category
    /// (the fabric axis). The result always differs from `genome` in
    /// exactly one slot.
    pub fn mutate(genome: &Genome, rng: &mut StdRng) -> Genome {
        let axis = Axis::ALL[rng.gen_range(0..AXES)];
        let len = axis.values().len();
        let idx = genome.index(axis);
        let new = if axis.is_ordered() {
            if idx == 0 {
                1
            } else if idx == len - 1 {
                len - 2
            } else if rng.gen_bool(0.5) {
                idx + 1
            } else {
                idx - 1
            }
        } else {
            (idx + 1 + rng.gen_range(0..len - 1)) % len
        };
        genome.with(axis, new)
    }

    /// Builds the genome into a validated [`DesignPoint`].
    ///
    /// The one cross-axis constraint — back-end channels must be a
    /// multiple of front-end channels — is repaired deterministically by
    /// clamping the front-end to the back-end width (both are powers of
    /// two, so clamped-front always divides back). Distinct genomes can
    /// therefore build the same configuration; the Pareto front's
    /// weak-dominance rejection keeps such duplicates off the front.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorConfig::validate`]'s message if the composed
    /// configuration is structurally invalid (no lattice point should
    /// be, which `space::tests` sweeps).
    pub fn build(genome: &Genome) -> Result<DesignPoint, String> {
        let back = genome.value(Axis::BackChannels);
        let front = genome.value(Axis::FrontChannels).min(back);
        let (offset_network, edge_network, dataflow_network) = match genome.value(Axis::Fabric) {
            0 => (NetworkKind::Mdp, NetworkKind::Mdp, NetworkKind::Mdp),
            1 => (
                NetworkKind::Crossbar,
                NetworkKind::Crossbar,
                NetworkKind::Crossbar,
            ),
            2 => (NetworkKind::Mdp, NetworkKind::Mdp, NetworkKind::NaiveFifo),
            code => return Err(format!("unknown fabric code {code}")),
        };
        let cache_kb = genome.value(Axis::CacheKb);
        let memory = (cache_kb > 0).then(|| MemoryConfig {
            channels: genome.value(Axis::DramChannels),
            banks_per_channel: genome.value(Axis::DramBanks),
            cache_kb,
            ..MemoryConfig::hbm2()
        });
        let chips = genome.value(Axis::Chips);
        let fabric_tag = match genome.value(Axis::Fabric) {
            0 => "mdp",
            1 => "xbar",
            _ => "fifo",
        };
        let mem_tag = match &memory {
            None => "nomem".to_string(),
            Some(m) => format!("c{}k/d{}x{}", m.cache_kb, m.channels, m.banks_per_channel),
        };
        let config = AcceleratorConfig {
            name: format!(
                "dse[f{front} b{back} {fabric_tag} buf{buf} s{stag} r{radix} {mem_tag} P{chips}]",
                buf = genome.value(Axis::DataflowBuffer),
                stag = genome.value(Axis::Staging),
                radix = genome.value(Axis::Radix),
            ),
            front_channels: front,
            back_channels: back,
            offset_network,
            edge_network,
            dataflow_network,
            dataflow_buffer_per_channel: genome.value(Axis::DataflowBuffer),
            staging_capacity: genome.value(Axis::Staging),
            radix: genome.value(Axis::Radix),
            dispatcher_read_ports: 2,
            memory,
            arena_capacity: genome.value(Axis::ArenaCapacity),
            wheel_horizon: genome.value(Axis::WheelHorizon),
            fault_plan: None,
        };
        config.validate()?;
        if let Some(shard) = (chips > 1).then(|| ShardConfig::new(chips)) {
            shard.validate()?;
        }
        Ok(DesignPoint {
            config,
            chips,
            genome: *genome,
        })
    }

    /// The paper's two Sec. 5.4 synthesis configurations as lattice
    /// points, `(label, genome)`: the HiGraph MDP fabric with 160-entry
    /// buffers, and the FIFO-plus-crossbar baseline fabric with
    /// 128-entry buffers, both at 32 channels and 1 GHz. The DSE gate
    /// asserts these stay on (or within tolerance of) the discovered
    /// front.
    pub fn anchors() -> [(&'static str, Genome); 2] {
        let base = Genome([0; AXES])
            .with(Axis::FrontChannels, 3) // 32
            .with(Axis::BackChannels, 1) // 32
            .with(Axis::Staging, 1) // 8
            .with(Axis::Radix, 0) // 2
            .with(Axis::CacheKb, 0) // no memory model
            .with(Axis::Chips, 0) // single chip
            .with(Axis::ArenaCapacity, 1) // 1024
            .with(Axis::WheelHorizon, 1); // 1024
        [
            (
                "MDP-160",
                base.with(Axis::Fabric, 0).with(Axis::DataflowBuffer, 3), // 160
            ),
            (
                "FIFO+Crossbar-128",
                base.with(Axis::Fabric, 1).with(Axis::DataflowBuffer, 2), // 128
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_sampled_genome_builds_a_valid_design() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let g = DesignSpace::sample(&mut rng);
            let p = DesignSpace::build(&g).expect("lattice point must build");
            p.config.validate().expect("built config validates");
            assert!(p.config.back_channels >= p.config.front_channels);
            assert!(p.chips >= 1);
        }
    }

    #[test]
    fn mutation_chains_stay_on_the_lattice() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = DesignSpace::sample(&mut rng);
        for _ in 0..300 {
            let next = DesignSpace::mutate(&g, &mut rng);
            let differing = (0..AXES).filter(|&i| g.0[i] != next.0[i]).count();
            assert_eq!(differing, 1, "mutation changes exactly one slot");
            DesignSpace::build(&next).expect("mutants build");
            g = next;
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| DesignSpace::sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn front_end_is_clamped_to_the_back_end() {
        // front index 3 = 32 channels, back index 0 = 16 channels
        let g = Genome([0; AXES])
            .with(Axis::FrontChannels, 3)
            .with(Axis::BackChannels, 0);
        let p = DesignSpace::build(&g).unwrap();
        assert_eq!(p.config.front_channels, 16);
        assert_eq!(p.config.back_channels, 16);
    }

    #[test]
    fn cache_axis_zero_disables_the_memory_model() {
        let g = Genome([0; AXES]).with(Axis::CacheKb, 0);
        assert!(DesignSpace::build(&g).unwrap().config.memory.is_none());
        let g = g.with(Axis::CacheKb, 2).with(Axis::DramChannels, 1);
        let m = DesignSpace::build(&g).unwrap().config.memory.unwrap();
        assert_eq!(m.cache_kb, 256);
        assert_eq!(m.channels, 4);
    }

    #[test]
    fn anchors_build_to_the_paper_synthesis_points() {
        let [(mdp_label, mdp_g), (xbar_label, xbar_g)] = DesignSpace::anchors();
        let mdp = DesignSpace::build(&mdp_g).unwrap();
        let xbar = DesignSpace::build(&xbar_g).unwrap();
        assert_eq!(mdp_label, "MDP-160");
        assert_eq!(xbar_label, "FIFO+Crossbar-128");
        assert_eq!(mdp.config.dataflow_network, NetworkKind::Mdp);
        assert_eq!(mdp.config.dataflow_buffer_per_channel, 160);
        assert_eq!(xbar.config.dataflow_network, NetworkKind::Crossbar);
        assert_eq!(xbar.config.dataflow_buffer_per_channel, 128);
        // Table 1 / Sec. 5.3: both synthesis points hold the 1 GHz target
        assert_eq!(mdp.config.effective_frequency_ghz(), 1.0);
        assert_eq!(xbar.config.effective_frequency_ghz(), 1.0);
        // Sec. 5.4's trade, through the whole assembly: the MDP fabric
        // pays area and power over FIFO+crossbar at equal geometry
        assert!(mdp.area_mm2() > xbar.area_mm2());
        assert!(mdp.power_mw() > xbar.power_mw());
        // and the dataflow-fabric term alone reproduces the paper numbers
        let df = higraph_model::mdp_area_mm2(32, 160);
        assert!((df - 0.375).abs() < 1e-4);
    }

    #[test]
    fn objectives_scale_with_cycles_and_chips() {
        let [(_, mdp_g), _] = DesignSpace::anchors();
        let single = DesignSpace::build(&mdp_g).unwrap();
        let o1 = single.objectives(1_000);
        let o2 = single.objectives(2_000);
        assert!(o1.is_finite() && o2.is_finite());
        // 1 GHz clock: time in ns equals cycles
        assert!((o1.time_ns - 1_000.0).abs() < 1e-9);
        assert!((o2.time_ns - 2.0 * o1.time_ns).abs() < 1e-9);
        assert_eq!(o1.area_mm2, o2.area_mm2);
        assert!((o2.energy_mj - 2.0 * o1.energy_mj).abs() < 1e-12);

        let quad = DesignSpace::build(&mdp_g.with(Axis::Chips, 2)).unwrap();
        assert_eq!(quad.chips, 4);
        assert!(quad.shard_config().is_some());
        assert!((quad.area_mm2() - 4.0 * single.area_mm2()).abs() < 1e-9);
    }

    #[test]
    fn host_only_axes_never_change_the_objectives() {
        let [(_, g), _] = DesignSpace::anchors();
        let a = DesignSpace::build(&g).unwrap();
        let b = DesignSpace::build(&g.with(Axis::ArenaCapacity, 2).with(Axis::WheelHorizon, 0))
            .unwrap();
        assert_eq!(a.objectives(5_000), b.objectives(5_000));
    }

    #[test]
    fn lattice_size_is_in_the_advertised_range() {
        let n = DesignSpace::size();
        assert!(n > 100_000, "space should be large enough to search: {n}");
    }
}
