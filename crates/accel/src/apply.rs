//! The apply phase (Fig. 6, bottom): identical for all designs, modeled
//! as an `⌈V/m⌉`-cycle scan that applies `Apply( )`, rebuilds the frontier
//! in vertex-ID order, and resets the tProperty banks.

use higraph_graph::{Csr, VertexId};
use higraph_vcpm::VertexProgram;

/// Extra cycles per apply phase for pipeline fill/drain.
pub(crate) const APPLY_PIPELINE_OVERHEAD: u64 = 4;

/// Executes one apply phase: scan all vertices, apply, rebuild the
/// frontier, and reset tProperty.
pub(crate) fn apply_phase<Prog: VertexProgram>(
    program: &Prog,
    graph: &Csr,
    properties: &mut [Prog::Prop],
    t_props: &mut [Prog::Prop],
    frontier: &mut Vec<VertexId>,
) {
    frontier.clear();
    for v in graph.vertices() {
        let apply_res = program.apply(v, properties[v.index()], t_props[v.index()], graph);
        if properties[v.index()] != apply_res {
            properties[v.index()] = apply_res;
            frontier.push(v);
        }
        t_props[v.index()] = program.identity();
    }
}

/// Cycle cost of one apply phase: the `⌈V/m⌉` scan plus fill/drain.
pub(crate) fn apply_cycles(num_vertices: u32, back_channels: usize) -> u64 {
    u64::from(num_vertices).div_ceil(back_channels as u64) + APPLY_PIPELINE_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use higraph_graph::builder::EdgeList;
    use higraph_vcpm::programs::Bfs;

    #[test]
    fn apply_builds_frontier_in_vertex_order() {
        let mut list = EdgeList::new(8);
        list.push(0, 3, 1).unwrap();
        list.push(0, 1, 1).unwrap();
        let g = list.into_csr();
        let prog = Bfs::from_source(0);
        let mut props: Vec<u64> = g.vertices().map(|v| prog.init_prop(v, &g)).collect();
        let mut t_props: Vec<u64> = vec![prog.identity(); 8];
        // pretend the scatter phase delivered depth-1 updates to 3 and 1
        t_props[3] = 1;
        t_props[1] = 1;
        let mut frontier = Vec::new();
        apply_phase(&prog, &g, &mut props, &mut t_props, &mut frontier);
        assert_eq!(frontier, [VertexId(1), VertexId(3)]);
        assert!(t_props.iter().all(|&t| t == prog.identity()));
    }

    #[test]
    fn apply_cycle_cost_is_scan_plus_overhead() {
        assert_eq!(apply_cycles(64, 32), 2 + APPLY_PIPELINE_OVERHEAD);
        assert_eq!(apply_cycles(65, 32), 3 + APPLY_PIPELINE_OVERHEAD);
        assert_eq!(apply_cycles(0, 32), APPLY_PIPELINE_OVERHEAD);
    }
}
