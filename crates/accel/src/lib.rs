//! HiGraph and baseline accelerator models (cycle-level).
//!
//! This crate assembles the substrates (`higraph-graph`, `higraph-vcpm`,
//! `higraph-sim`, `higraph-mdp`, `higraph-model`) into complete
//! VCPM-based graph-analytics accelerators, reproducing Fig. 6 of the
//! paper:
//!
//! * **front-end** (`n` channels, the `frontend` module): ActiveVertex
//!   fetch → routing network → Offset Array access under the odd-even
//!   arbiter → Replay Engines;
//! * **back-end** (`m` channels, the `backend` module): Edge Array access
//!   (range network or direct arbitration) → ePEs (`Process_Edge`) →
//!   dataflow propagation network → vPEs (`Reduce`) → tProperty banks;
//! * **apply phase** (the `apply` module): an `⌈V/m⌉`-cycle scan applying
//!   `Apply( )` and building the next frontier;
//! * **multi-chip scale-out** (the `sharded` module): P whole pipelines
//!   over a destination-interval partition, coupled by a modeled
//!   inter-chip link and clocked in lock step.
//!
//! Both pipeline halves implement `higraph_sim::ClockedComponent` and the
//! engine drives them through the shared `higraph_sim::Scheduler` — the
//! per-cycle protocol lives in one place, not in a hand-woven loop. All
//! fabrics are built by the validated [`netfactory::NetworkFactory`], and
//! whole sweeps of independent simulations execute in parallel through
//! the [`runner::BatchRunner`].
//!
//! Each of the three interaction points can independently use a crossbar,
//! an MDP-network, or the naive nW1R FIFO — that is exactly the paper's
//! Opt-O / Opt-E / Opt-D ablation space (Fig. 10) — and Table 1's
//! configurations are provided as presets:
//! [`AcceleratorConfig::higraph`], [`AcceleratorConfig::higraph_mini`],
//! [`AcceleratorConfig::graphdyns`].
//!
//! The engine executes any [`higraph_vcpm::VertexProgram`] and its final
//! Property Array is bit-identical to the software reference executor —
//! the integration tests enforce this for all four paper algorithms.
//!
//! # Example
//!
//! ```
//! use higraph_accel::{AcceleratorConfig, Engine};
//! use higraph_graph::gen::erdos_renyi;
//! use higraph_vcpm::programs::Bfs;
//!
//! let graph = erdos_renyi(256, 2048, 63, 1);
//! let mut engine = Engine::new(AcceleratorConfig::higraph(), &graph);
//! let result = engine.run(&Bfs::from_source(0)).expect("well-sized config");
//! assert!(result.metrics.cycles > 0);
//! assert_eq!(result.properties[0], 0);
//! ```

#![forbid(unsafe_code)]

mod apply;
mod backend;
mod frontend;
mod parallel;

pub mod arena;
pub mod cache;
pub mod config;
pub mod edge_access;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod netfactory;
pub mod packets;
pub mod runner;
pub mod sharded;
pub mod space;

pub use cache::MemorySubsystem;
pub use config::{AcceleratorConfig, FaultPlan, MemoryConfig, NetworkKind, OptLevel};
pub use engine::{
    Checkpoint, ControlError, Engine, RunOutcome, RunResult, SlicedRunResult, StallDiagnostic,
};
pub use faults::{FaultEvent, FaultKind, FaultRuntime};
pub use metrics::{MemoryMetrics, Metrics};
pub use netfactory::{AnyNetwork, NetworkFactory};
pub use runner::{
    BatchError, BatchJob, BatchReport, BatchResult, BatchRunner, RunMode, ShardedTiming,
};
pub use sharded::{ShardConfig, ShardedEngine, ShardedOutcome, ShardedRunResult};
pub use space::{Axis, DesignPoint, DesignSpace, Genome};
