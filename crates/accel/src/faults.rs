//! Deterministic fault injection (`docs/robustness.md`).
//!
//! A [`crate::config::FaultPlan`] on the accelerator configuration is a
//! *seeded schedule* of transient hardware faults; this module expands
//! it into the concrete [`FaultEvent`] windows an engine consults while
//! draining. Three fault kinds are modeled, all graceful-degradation
//! stressors rather than data corruptors:
//!
//! * **link stall** — the inter-chip link accepts no new injections for
//!   the window (in-flight packets keep moving); staged traffic waits.
//! * **DRAM brown-out** — one memory channel stops issuing requests
//!   (in-service accesses still complete) via
//!   [`higraph_sim::MemoryChannel`]'s pause latch.
//! * **chip pause** — one chip's scatter pipeline is clock-gated: its
//!   combinational step is skipped while held packets simply wait.
//!
//! Faults never drop traffic, so every run still terminates with the
//! exact algorithm result; only timing degrades. Windows are indexed by
//! the *global scatter-cycle timeline* (cycles accumulated across all
//! drains), which makes the schedule independent of iteration boundaries
//! and lets a checkpoint/restore round-trip mid-fault reproduce the
//! remaining windows exactly. Fault runs force per-cycle ticking
//! (fast-forward off) so windows land on precise cycles, and extend the
//! stall guard by the total stalled time so an injected stall is never
//! misreported as a mis-sized design.

use crate::config::FaultPlan;

/// What a single fault window does, with its resolved target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The inter-chip link accepts no injections (serial runs: no-op).
    LinkStall,
    /// DRAM channel `channel` of chip `chip` stops issuing.
    DramBrownout {
        /// Chip whose memory subsystem browns out.
        chip: usize,
        /// Channel index within that chip's DRAM system.
        channel: usize,
    },
    /// Chip `chip`'s scatter pipeline is clock-gated.
    ChipPause {
        /// The paused chip.
        chip: usize,
    },
}

/// One scheduled fault window on the global scatter-cycle timeline:
/// active for cycles in `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault and its target.
    pub kind: FaultKind,
    /// First global scatter cycle the fault is active.
    pub start: u64,
    /// First global scatter cycle after the fault clears.
    pub end: u64,
}

/// `splitmix64` — the same tiny seeded generator the dataset builders
/// use, so fault schedules are reproducible from the plan alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`FaultPlan`] expanded against a concrete topology: the resolved
/// event windows an engine polls each drained cycle.
#[derive(Debug, Clone)]
pub struct FaultRuntime {
    events: Vec<FaultEvent>,
    /// Sum of all window durations — the stall-guard extension.
    total_stall: u64,
}

impl FaultRuntime {
    /// Expands `plan` for a run with `num_chips` chips, each with
    /// `dram_channels` modeled DRAM channels (0 when memory is the
    /// infinite stub — brown-outs then resolve to chip pauses so every
    /// drawn event still exercises *some* degradation path).
    pub fn new(plan: &FaultPlan, num_chips: usize, dram_channels: usize) -> Self {
        let chips = num_chips.max(1);
        let mut state = plan.seed;
        let mut events = Vec::with_capacity(plan.events as usize);
        let mut total_stall = 0u64;
        for _ in 0..plan.events {
            let kind_raw = splitmix64(&mut state);
            let target = splitmix64(&mut state);
            let start = splitmix64(&mut state) % plan.horizon.max(1);
            let duration = 1 + splitmix64(&mut state) % plan.max_duration.max(1);
            let chip = (target % chips as u64) as usize;
            let kind = match kind_raw % 3 {
                0 => FaultKind::LinkStall,
                1 if dram_channels > 0 => FaultKind::DramBrownout {
                    chip,
                    channel: ((target >> 32) % dram_channels as u64) as usize,
                },
                _ => FaultKind::ChipPause { chip },
            };
            total_stall += duration;
            events.push(FaultEvent {
                kind,
                start,
                end: start.saturating_add(duration),
            });
        }
        FaultRuntime {
            events,
            total_stall,
        }
    }

    /// The expanded schedule (inspection and reporting).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Stall-guard extension: the total cycles the schedule can hold the
    /// pipeline, so injected stalls never fire the guard on their own.
    pub fn guard_bonus(&self) -> u64 {
        self.total_stall
    }

    /// Whether the inter-chip link refuses injections at `cycle`.
    pub fn link_stalled(&self, cycle: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == FaultKind::LinkStall && e.start <= cycle && cycle < e.end)
    }

    /// Whether chip `chip` is clock-gated at `cycle`.
    pub fn chip_paused(&self, cycle: u64, chip: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::ChipPause { chip: c } if c == chip)
                && e.start <= cycle
                && cycle < e.end
        })
    }

    /// Applies the brown-out state for `cycle`: calls `set(chip,
    /// channel, active)` for every channel named by a brown-out event.
    /// The call is unconditional each cycle (idempotent on the channel's
    /// pause latch), so overlapping windows and windows that straddle a
    /// drain or checkpoint boundary resolve without transition tracking.
    pub fn set_brownouts(&self, cycle: u64, mut set: impl FnMut(usize, usize, bool)) {
        for e in &self.events {
            if let FaultKind::DramBrownout { chip, channel } = e.kind {
                set(chip, channel, e.start <= cycle && cycle < e.end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            events: 8,
            max_duration: 50,
            horizon: 1000,
        }
    }

    #[test]
    fn expansion_is_deterministic_and_bounded() {
        let a = FaultRuntime::new(&plan(), 4, 8);
        let b = FaultRuntime::new(&plan(), 4, 8);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 8);
        for e in a.events() {
            assert!(e.start < 1000);
            assert!(e.end > e.start && e.end <= e.start + 50);
            match e.kind {
                FaultKind::DramBrownout { chip, channel } => {
                    assert!(chip < 4 && channel < 8);
                }
                FaultKind::ChipPause { chip } => assert!(chip < 4),
                FaultKind::LinkStall => {}
            }
        }
        assert_eq!(
            a.guard_bonus(),
            a.events().iter().map(|e| e.end - e.start).sum::<u64>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultRuntime::new(&plan(), 2, 8);
        let b = FaultRuntime::new(&FaultPlan { seed: 8, ..plan() }, 2, 8);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn no_dram_channels_degrades_brownouts_to_pauses() {
        let rt = FaultRuntime::new(&plan(), 2, 0);
        assert!(rt
            .events()
            .iter()
            .all(|e| !matches!(e.kind, FaultKind::DramBrownout { .. })));
    }

    #[test]
    fn window_queries_respect_bounds() {
        let rt = FaultRuntime {
            events: vec![
                FaultEvent {
                    kind: FaultKind::LinkStall,
                    start: 10,
                    end: 20,
                },
                FaultEvent {
                    kind: FaultKind::ChipPause { chip: 1 },
                    start: 5,
                    end: 6,
                },
            ],
            total_stall: 11,
        };
        assert!(!rt.link_stalled(9));
        assert!(rt.link_stalled(10) && rt.link_stalled(19));
        assert!(!rt.link_stalled(20));
        assert!(rt.chip_paused(5, 1));
        assert!(!rt.chip_paused(5, 0));
        assert!(!rt.chip_paused(6, 1));
        let mut seen = Vec::new();
        rt.set_brownouts(10, |c, ch, on| seen.push((c, ch, on)));
        assert!(seen.is_empty(), "no brown-out events in this schedule");
    }
}
