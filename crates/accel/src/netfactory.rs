//! Runtime-selectable propagation fabric.
//!
//! [`AnyNetwork`] wraps the three interchangeable fabrics behind one type
//! so the engine can swap them per configuration (the paper's ablations
//! and the Fig. 12 comparison) without generics at every call site.

use crate::config::NetworkKind;
use higraph_mdp::{MdpNetwork, NaiveFifoNetwork, Topology};
use higraph_sim::{CrossbarNetwork, Network, NetworkStats, Packet};

/// A crossbar, MDP-network, or naive nW1R-FIFO fabric.
#[derive(Debug, Clone)]
pub enum AnyNetwork<T> {
    /// Input-queued crossbar.
    Crossbar(CrossbarNetwork<T>),
    /// MDP-network.
    Mdp(MdpNetwork<T>),
    /// Per-output nW1R FIFO.
    Naive(NaiveFifoNetwork<T>),
}

impl<T: Packet> AnyNetwork<T> {
    /// Builds a square `channels × channels` fabric of the given kind with
    /// a total buffer budget of `buffer_per_channel` entries per channel
    /// and the given MDP radix.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not a valid size for the chosen kind (the
    /// engine validates configurations before construction).
    pub fn build(
        kind: NetworkKind,
        channels: usize,
        buffer_per_channel: usize,
        radix: usize,
    ) -> Self {
        match kind {
            NetworkKind::Crossbar => AnyNetwork::Crossbar(CrossbarNetwork::new(
                channels,
                channels,
                buffer_per_channel.max(1),
            )),
            NetworkKind::Mdp => {
                let topo = Topology::new_mixed(channels, radix)
                    .expect("validated config guarantees a power-of-two channel count");
                AnyNetwork::Mdp(MdpNetwork::with_channel_budget(topo, buffer_per_channel))
            }
            NetworkKind::NaiveFifo => AnyNetwork::Naive(NaiveFifoNetwork::new(
                channels,
                channels,
                buffer_per_channel.max(1),
            )),
        }
    }
}

impl<T: Packet> Network<T> for AnyNetwork<T> {
    fn num_inputs(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.num_inputs(),
            AnyNetwork::Mdp(n) => n.num_inputs(),
            AnyNetwork::Naive(n) => n.num_inputs(),
        }
    }

    fn num_outputs(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.num_outputs(),
            AnyNetwork::Mdp(n) => n.num_outputs(),
            AnyNetwork::Naive(n) => n.num_outputs(),
        }
    }

    fn can_accept(&self, input: usize, packet: &T) -> bool {
        match self {
            AnyNetwork::Crossbar(n) => n.can_accept(input, packet),
            AnyNetwork::Mdp(n) => n.can_accept(input, packet),
            AnyNetwork::Naive(n) => n.can_accept(input, packet),
        }
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        match self {
            AnyNetwork::Crossbar(n) => n.push(input, packet),
            AnyNetwork::Mdp(n) => n.push(input, packet),
            AnyNetwork::Naive(n) => n.push(input, packet),
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        match self {
            AnyNetwork::Crossbar(n) => n.peek(output),
            AnyNetwork::Mdp(n) => n.peek(output),
            AnyNetwork::Naive(n) => n.peek(output),
        }
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        match self {
            AnyNetwork::Crossbar(n) => n.pop(output),
            AnyNetwork::Mdp(n) => n.pop(output),
            AnyNetwork::Naive(n) => n.pop(output),
        }
    }

    fn tick(&mut self) {
        match self {
            AnyNetwork::Crossbar(n) => n.tick(),
            AnyNetwork::Mdp(n) => n.tick(),
            AnyNetwork::Naive(n) => n.tick(),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.in_flight(),
            AnyNetwork::Mdp(n) => n.in_flight(),
            AnyNetwork::Naive(n) => n.in_flight(),
        }
    }

    fn stats(&self) -> &NetworkStats {
        match self {
            AnyNetwork::Crossbar(n) => n.stats(),
            AnyNetwork::Mdp(n) => n.stats(),
            AnyNetwork::Naive(n) => n.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct P(usize);
    impl Packet for P {
        fn dest(&self) -> usize {
            self.0
        }
    }

    fn exercise(mut net: AnyNetwork<P>) {
        assert_eq!(net.num_inputs(), 8);
        assert_eq!(net.num_outputs(), 8);
        assert!(net.is_empty());
        net.push(0, P(5)).unwrap();
        for _ in 0..8 {
            net.tick();
        }
        assert_eq!(net.pop(5).map(|p| p.0), Some(5));
        assert!(net.is_empty());
        assert!(net.stats().delivered >= 1);
    }

    #[test]
    fn all_kinds_route_correctly() {
        for kind in [NetworkKind::Crossbar, NetworkKind::Mdp, NetworkKind::NaiveFifo] {
            exercise(AnyNetwork::build(kind, 8, 16, 2));
        }
    }

    #[test]
    fn mdp_radix_respected() {
        let net: AnyNetwork<P> = AnyNetwork::build(NetworkKind::Mdp, 16, 32, 4);
        match net {
            AnyNetwork::Mdp(m) => assert_eq!(m.topology().radix(), 4),
            _ => panic!("expected MDP"),
        }
    }
}
