//! Runtime-selectable propagation fabrics and the validated factory that
//! builds them.
//!
//! [`AnyNetwork`] wraps the three interchangeable fabrics behind one type
//! so the engine can swap them per configuration (the paper's ablations
//! and the Fig. 12 comparison) without generics at every call site.
//!
//! [`NetworkFactory`] is the single construction path: it validates an
//! [`AcceleratorConfig`] once (channel geometry, radix, buffer budgets,
//! bank divisibility) and then hands out any fabric of the accelerator —
//! offset routing, edge access, dataflow propagation — infallibly. The
//! engine, the pipeline stages and the tests all build their networks
//! through it, so an invalid geometry is rejected in exactly one place
//! instead of panicking somewhere inside a constructor.

use crate::cache::MemorySubsystem;
use crate::config::{AcceleratorConfig, NetworkKind};
use crate::edge_access::EdgeAccess;
use higraph_mdp::{MdpNetwork, NaiveFifoNetwork, Topology};
use higraph_sim::{ClockedComponent, CrossbarNetwork, Network, NetworkStats, Packet};

/// A crossbar, MDP-network, or naive nW1R-FIFO fabric.
#[derive(Debug, Clone)]
pub enum AnyNetwork<T> {
    /// Input-queued crossbar.
    Crossbar(CrossbarNetwork<T>),
    /// MDP-network.
    Mdp(MdpNetwork<T>),
    /// Per-output nW1R FIFO.
    Naive(NaiveFifoNetwork<T>),
}

impl<T: Packet> AnyNetwork<T> {
    /// Builds a square `channels × channels` fabric of the given kind with
    /// a total buffer budget of `buffer_per_channel` entries per channel
    /// and the given MDP radix.
    ///
    /// # Errors
    ///
    /// Returns a message if `channels` is not a valid size for the chosen
    /// kind (the MDP-network needs a power-of-two channel count reachable
    /// by the radix).
    pub fn try_build(
        kind: NetworkKind,
        channels: usize,
        buffer_per_channel: usize,
        radix: usize,
    ) -> Result<Self, String> {
        Ok(match kind {
            NetworkKind::Crossbar => AnyNetwork::Crossbar(CrossbarNetwork::new(
                channels,
                channels,
                buffer_per_channel.max(1),
            )),
            NetworkKind::Mdp => {
                let topo = Topology::new_mixed(channels, radix).map_err(|e| e.to_string())?;
                AnyNetwork::Mdp(MdpNetwork::with_channel_budget(topo, buffer_per_channel))
            }
            NetworkKind::NaiveFifo => AnyNetwork::Naive(NaiveFifoNetwork::new(
                channels,
                channels,
                buffer_per_channel.max(1),
            )),
        })
    }

    /// Whether the next tick can move nothing inside the fabric — the
    /// wedge half of the fast-forward contract (output consumption and
    /// input offers are the owner's side). See the concrete fabrics'
    /// `is_wedged` docs.
    pub fn is_wedged(&self) -> bool {
        match self {
            AnyNetwork::Crossbar(n) => n.is_wedged(),
            AnyNetwork::Mdp(n) => n.is_wedged(),
            AnyNetwork::Naive(n) => n.is_wedged(),
        }
    }

    /// Bulk-commits `count` deterministic input rejections.
    pub fn commit_rejected(&mut self, count: u64) {
        match self {
            AnyNetwork::Crossbar(n) => n.commit_rejected(count),
            AnyNetwork::Mdp(n) => n.commit_rejected(count),
            AnyNetwork::Naive(n) => n.commit_rejected(count),
        }
    }

    /// Builds like [`AnyNetwork::try_build`].
    ///
    /// # Panics
    ///
    /// Panics on invalid shapes; use [`NetworkFactory`] (which validates
    /// up front) or [`AnyNetwork::try_build`] in fallible contexts.
    pub fn build(
        kind: NetworkKind,
        channels: usize,
        buffer_per_channel: usize,
        radix: usize,
    ) -> Self {
        AnyNetwork::try_build(kind, channels, buffer_per_channel, radix)
            // lint:allow(panic-freedom): documented panicking convenience; try_build is the fallible path
            .expect("invalid fabric shape")
    }
}

impl<T: Packet> Network<T> for AnyNetwork<T> {
    fn num_inputs(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.num_inputs(),
            AnyNetwork::Mdp(n) => n.num_inputs(),
            AnyNetwork::Naive(n) => n.num_inputs(),
        }
    }

    fn num_outputs(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.num_outputs(),
            AnyNetwork::Mdp(n) => n.num_outputs(),
            AnyNetwork::Naive(n) => n.num_outputs(),
        }
    }

    fn can_accept(&self, input: usize, packet: &T) -> bool {
        match self {
            AnyNetwork::Crossbar(n) => n.can_accept(input, packet),
            AnyNetwork::Mdp(n) => n.can_accept(input, packet),
            AnyNetwork::Naive(n) => n.can_accept(input, packet),
        }
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        match self {
            AnyNetwork::Crossbar(n) => n.push(input, packet),
            AnyNetwork::Mdp(n) => n.push(input, packet),
            AnyNetwork::Naive(n) => n.push(input, packet),
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        match self {
            AnyNetwork::Crossbar(n) => n.peek(output),
            AnyNetwork::Mdp(n) => n.peek(output),
            AnyNetwork::Naive(n) => n.peek(output),
        }
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        match self {
            AnyNetwork::Crossbar(n) => n.pop(output),
            AnyNetwork::Mdp(n) => n.pop(output),
            AnyNetwork::Naive(n) => n.pop(output),
        }
    }

    fn stats(&self) -> &NetworkStats {
        match self {
            AnyNetwork::Crossbar(n) => n.stats(),
            AnyNetwork::Mdp(n) => n.stats(),
            AnyNetwork::Naive(n) => n.stats(),
        }
    }
}

impl<T: Packet> ClockedComponent for AnyNetwork<T> {
    fn tick(&mut self) {
        match self {
            AnyNetwork::Crossbar(n) => n.tick(),
            AnyNetwork::Mdp(n) => n.tick(),
            AnyNetwork::Naive(n) => n.tick(),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            AnyNetwork::Crossbar(n) => n.in_flight(),
            AnyNetwork::Mdp(n) => n.in_flight(),
            AnyNetwork::Naive(n) => n.in_flight(),
        }
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(*self.stats())
    }

    fn next_activity(&mut self) -> Option<u64> {
        match self {
            AnyNetwork::Crossbar(n) => n.next_activity(),
            AnyNetwork::Mdp(n) => n.next_activity(),
            AnyNetwork::Naive(n) => n.next_activity(),
        }
    }

    fn skip(&mut self, cycles: u64) {
        match self {
            AnyNetwork::Crossbar(n) => n.skip(cycles),
            AnyNetwork::Mdp(n) => n.skip(cycles),
            AnyNetwork::Naive(n) => n.skip(cycles),
        }
    }
}

/// Validated builder for every fabric of one accelerator configuration.
///
/// Construction runs all structural checks; afterwards the builder
/// methods cannot fail.
#[derive(Debug, Clone)]
pub struct NetworkFactory {
    config: AcceleratorConfig,
}

impl NetworkFactory {
    /// Validates `config` and captures it for fabric construction.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure: the basic geometry checks of
    /// [`AcceleratorConfig::validate`] plus the fabric-specific shape
    /// requirements (MDP topology reachability for each interaction point
    /// that uses an MDP-network).
    pub fn new(config: &AcceleratorConfig) -> Result<Self, String> {
        config.validate()?;
        // Prove each MDP interaction point can actually build its
        // topology, so the infallible builders below cannot panic.
        if config.offset_network == NetworkKind::Mdp {
            Topology::new_mixed(config.front_channels, config.radix)
                .map_err(|e| format!("offset network: {e}"))?;
        }
        if config.edge_network == NetworkKind::Mdp {
            // Bank divisibility (m a multiple of n) is already part of
            // `AcceleratorConfig::validate`; only the topology shape is
            // fabric-specific.
            Topology::new_mixed(config.front_channels, config.radix)
                .map_err(|e| format!("edge network: {e}"))?;
        }
        if config.dataflow_network == NetworkKind::Mdp {
            Topology::new_mixed(config.back_channels, config.radix)
                .map_err(|e| format!("dataflow network: {e}"))?;
        }
        Ok(NetworkFactory {
            config: config.clone(),
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The front-end offset-routing fabric (`n × n`).
    pub fn offset_fabric<T: Packet>(&self) -> AnyNetwork<T> {
        let c = &self.config;
        AnyNetwork::try_build(
            c.offset_network,
            c.front_channels,
            c.staging_capacity.max(4),
            c.radix,
        )
        // lint:allow(panic-freedom): infallible: NetworkFactory::try_new already validated this fabric shape
        .expect("validated at factory construction")
    }

    /// The back-end dataflow-propagation fabric (`m × m`).
    pub fn dataflow_fabric<T: Packet>(&self) -> AnyNetwork<T> {
        let c = &self.config;
        AnyNetwork::try_build(
            c.dataflow_network,
            c.back_channels,
            c.dataflow_buffer_per_channel,
            c.radix,
        )
        // lint:allow(panic-freedom): infallible: NetworkFactory::try_new already validated this fabric shape
        .expect("validated at factory construction")
    }

    /// The Edge Array access unit (`n` channels over `m` banks).
    pub fn edge_access<P: Copy>(&self) -> EdgeAccess<P> {
        let c = &self.config;
        match c.edge_network {
            NetworkKind::Mdp => EdgeAccess::new_mdp(
                c.front_channels,
                c.back_channels,
                c.staging_capacity.max(4),
                c.radix,
                c.dispatcher_read_ports,
            ),
            _ => {
                EdgeAccess::new_direct(c.front_channels, c.back_channels, c.staging_capacity.max(4))
            }
        }
    }

    /// The off-chip memory subsystem (cache → DRAM channels); the
    /// infinite-bandwidth stub when the configuration models no memory.
    pub fn memory_subsystem(&self) -> MemorySubsystem {
        match &self.config.memory {
            Some(memory) => {
                let mut mem = MemorySubsystem::modeled(memory, self.config.front_channels);
                mem.set_wheel_horizon(self.config.wheel_horizon);
                mem
            }
            None => MemorySubsystem::infinite(),
        }
    }
}

impl<T: higraph_sim::SnapValue> higraph_sim::Snapshot for AnyNetwork<T> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"ANET");
        match self {
            AnyNetwork::Crossbar(n) => {
                w.u8(0);
                n.save(w);
            }
            AnyNetwork::Mdp(n) => {
                w.u8(1);
                n.save(w);
            }
            AnyNetwork::Naive(n) => {
                w.u8(2);
                n.save(w);
            }
        }
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"ANET")?;
        let variant = r.u8()?;
        match (variant, self) {
            (0, AnyNetwork::Crossbar(n)) => n.load(r),
            (1, AnyNetwork::Mdp(n)) => n.load(r),
            (2, AnyNetwork::Naive(n)) => n.load(r),
            (v @ 0..=2, _) => Err(higraph_sim::SnapError::new(format!(
                "fabric variant mismatch: snapshot variant {v} does not match live fabric"
            ))),
            (v, _) => Err(higraph_sim::SnapError::new(format!(
                "unknown fabric variant {v}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct P(usize);
    impl Packet for P {
        fn dest(&self) -> usize {
            self.0
        }
    }

    fn exercise(mut net: AnyNetwork<P>) {
        assert_eq!(net.num_inputs(), 8);
        assert_eq!(net.num_outputs(), 8);
        assert!(net.is_empty());
        net.push(0, P(5)).unwrap();
        for _ in 0..8 {
            net.tick();
        }
        assert_eq!(net.pop(5).map(|p| p.0), Some(5));
        assert!(net.is_empty());
        assert!(net.stats().delivered >= 1);
    }

    #[test]
    fn all_kinds_route_correctly() {
        for kind in [
            NetworkKind::Crossbar,
            NetworkKind::Mdp,
            NetworkKind::NaiveFifo,
        ] {
            exercise(AnyNetwork::build(kind, 8, 16, 2));
        }
    }

    #[test]
    fn mdp_radix_respected() {
        let net: AnyNetwork<P> = AnyNetwork::build(NetworkKind::Mdp, 16, 32, 4);
        match net {
            AnyNetwork::Mdp(m) => assert_eq!(m.topology().radix(), 4),
            _ => panic!("expected MDP"),
        }
    }

    #[test]
    fn try_build_rejects_bad_mdp_shapes() {
        assert!(AnyNetwork::<P>::try_build(NetworkKind::Mdp, 6, 8, 2).is_err());
        assert!(AnyNetwork::<P>::try_build(NetworkKind::Crossbar, 6, 8, 2).is_ok());
    }

    #[test]
    fn factory_validates_once_then_builds_all_fabrics() {
        let factory = NetworkFactory::new(&AcceleratorConfig::higraph()).expect("valid");
        let offset: AnyNetwork<P> = factory.offset_fabric();
        let dataflow: AnyNetwork<P> = factory.dataflow_fabric();
        assert_eq!(offset.num_inputs(), 32);
        assert_eq!(dataflow.num_inputs(), 32);
        let ea: EdgeAccess<u32> = factory.edge_access();
        assert!(ea.is_empty());
    }

    #[test]
    fn factory_rejects_invalid_geometry() {
        let mut cfg = AcceleratorConfig::higraph();
        cfg.front_channels = 3;
        assert!(NetworkFactory::new(&cfg).is_err());
        let mut cfg = AcceleratorConfig::higraph();
        cfg.radix = 6;
        assert!(NetworkFactory::new(&cfg).is_err());
    }

    #[test]
    fn clocked_stats_match_network_stats() {
        let mut net: AnyNetwork<P> = AnyNetwork::build(NetworkKind::Crossbar, 8, 4, 2);
        net.push(0, P(1)).unwrap();
        let unified = ClockedComponent::network_stats(&net).expect("fabrics keep stats");
        assert_eq!(&unified, net.stats());
    }
}
