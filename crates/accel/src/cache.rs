//! The edge/offset cache and the memory subsystem it fronts.
//!
//! The scatter pipeline touches off-chip state at two points: the Offset
//! Array fetch that loads a Replay Engine (front-end stage 5) and the
//! Edge Array ranges the Replay Engines hand to the edge-access unit
//! (stage 4). [`MemorySubsystem`] sits at both: each fetch is translated
//! to cache-line addresses, looked up in a small direct-mapped cache,
//! and misses are fetched from a [`DramSystem`] of row-buffered HBM
//! channels (`higraph_sim::dram`). A fetch whose lines have not all
//! streamed in yet *stalls its pipeline stage* — the engine counts those
//! cycles as `Metrics::memory.stall_cycles`.
//!
//! The default subsystem is [`MemorySubsystem::infinite`]: every fetch is
//! resident, no state is kept, and runs are bit-identical to the
//! pre-memory-model simulator. See `docs/memory.md` for the timing
//! contract and the address-space model.
//!
//! # Streaming queries
//!
//! A multi-line fetch is a per-channel *query* consumed line by line in
//! address order: a line only has to be resident (or freshly arrived
//! from DRAM) for one cycle to be consumed, and consumed lines are never
//! needed again by that query. This mirrors a hardware stream buffer and
//! — crucially for a direct-mapped cache — guarantees forward progress:
//! requiring all lines of a range to be resident *simultaneously* can
//! livelock when two channels' ranges alias the same cache set and keep
//! evicting each other.
//!
//! # Address model
//!
//! Byte addresses on one flat line-granular space:
//!
//! * Edge Array: edge `e` occupies `[e * EDGE_BYTES, (e+1) * EDGE_BYTES)`
//!   from base 0 (16 B: destination, weight, padding);
//! * Offset Array: offset `u` occupies 8 B from [`OFFSET_REGION`],
//!   disjoint from the edge region.
//!
//! Counting: `misses` counts distinct line fetches sent to DRAM (an
//! outstanding line is tracked in the MSHR set and never fetched twice);
//! `hits` counts lines a query consumed without having requested them
//! itself — served by the cache or by another query's fetch. Re-asking
//! a *completed* query (a stage back-pressured downstream retries every
//! cycle) counts nothing, so the hit rate measures line reuse, not
//! arbitration stalls.

use higraph_sim::dram::{DramSystem, MemoryStats};
use higraph_sim::ClockedComponent;
use std::collections::BTreeSet;

use crate::config::MemoryConfig;

/// Bytes one edge occupies in the Edge Array (destination + weight,
/// padded to a power of two).
pub const EDGE_BYTES: u64 = 16;

/// Bytes one Offset Array entry occupies.
pub const OFFSET_BYTES: u64 = 8;

/// Base byte address of the Offset Array region (disjoint from the edge
/// region for any graph this simulator can hold).
pub const OFFSET_REGION: u64 = 1 << 40;

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lines consumed without a DRAM fetch by the consuming query.
    pub hits: u64,
    /// Distinct cache-line fetches issued to DRAM.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of line touches served without a DRAM fetch. 0.0 when
    /// the cache was never touched (or the subsystem is infinite).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Which pipeline stage a query belongs to (each channel may hold one
/// query per stage concurrently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Port {
    /// Stage-4 Edge Array ranges.
    Edge,
    /// Stage-5 Offset Array pairs.
    Offset,
}

/// What the next `*_ready` ask about a fetch would do — a non-mutating
/// probe for the fast-forward activity contract (`docs/simulation.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryState {
    /// The query has fully streamed in: the consuming stage can act now.
    Ready,
    /// The ask would mutate state this cycle in a way that depends on
    /// the cycle — start or replace a query, have a DRAM request
    /// accepted, or consume a resident line.
    Active,
    /// Waiting on DRAM: the next line is not resident and every missing
    /// line is either outstanding in the MSHR or retrying against a
    /// [`retry-stable`] full channel. Re-asking per cycle is then fully
    /// deterministic — nothing beyond the caller's stall accounting and
    /// the channels' rejection counters, both of which
    /// [`MemorySubsystem::commit_idle`] commits in bulk.
    ///
    /// [`retry-stable`]: higraph_sim::MemoryChannel::retry_stable
    Blocked,
}

/// One multi-line fetch, consumed in address order. The completed query
/// stays in its slot (`next > last`) until a *different* request
/// replaces it, so a stage that is back-pressured downstream can re-ask
/// about the same fetch every cycle without re-counting hits.
#[derive(Debug, Clone)]
struct LineQuery {
    /// Identity of the originating request, `(byte base, byte length)` —
    /// not the line span, which distinct requests can share.
    key: (u64, u64),
    /// Last line of the span.
    last: u64,
    /// Next line to consume (`> last` once complete).
    next: u64,
    /// Lines this query itself fetched from DRAM (their consumption is
    /// a miss already counted at request time, not a hit).
    fetched: BTreeSet<u64>,
}

/// The modeled half of the subsystem (absent in infinite mode).
#[derive(Debug, Clone)]
struct Modeled {
    /// Direct-mapped line tags, indexed by `line % tags.len()`.
    tags: Vec<Option<u64>>,
    line_bytes: u64,
    dram: DramSystem,
    /// Lines requested from DRAM and not yet installed.
    mshr: BTreeSet<u64>,
    /// Lines that arrived this cycle: consumable even if a same-cycle
    /// install of a conflicting line already evicted them.
    arrived: BTreeSet<u64>,
    /// Per-channel streaming queries, one slot per port.
    edge_q: Vec<Option<LineQuery>>,
    offset_q: Vec<Option<LineQuery>>,
    stats: CacheStats,
}

impl Modeled {
    fn set_of(&self, line: u64) -> usize {
        (line % self.tags.len() as u64) as usize
    }

    fn resident(&self, line: u64) -> bool {
        self.tags[self.set_of(line)] == Some(line) || self.arrived.contains(&line)
    }

    /// Starts a DRAM fetch for `line` unless it is resident, already
    /// outstanding, or the owning channel queue is full (retried next
    /// cycle). Records the requester's ownership for hit accounting.
    fn request(&mut self, line: u64, fetched: &mut BTreeSet<u64>) {
        if !self.mshr.contains(&line) && self.dram.try_request(line) {
            self.mshr.insert(line);
            self.stats.misses += 1;
            fetched.insert(line);
        }
    }

    /// Advances one query: request every still-missing line (they fetch
    /// in parallel), then consume in-order as far as residency allows.
    /// Returns whether the query completed. Re-asking a completed query
    /// (downstream backpressure) is free and counts nothing.
    fn step_query(
        &mut self,
        ch: usize,
        port: Port,
        key: (u64, u64),
        first: u64,
        last: u64,
    ) -> bool {
        let slot = match port {
            Port::Edge => &mut self.edge_q[ch],
            Port::Offset => &mut self.offset_q[ch],
        };
        if let Some(q) = slot.as_ref() {
            if q.key == key && q.next > q.last {
                // already streamed in: the consumer is waiting on
                // something else (arbitration, queue space), not us —
                // the hottest re-ask, answered without moving the query
                return true;
            }
        }
        let mut q = match slot.take() {
            Some(q) if q.key == key => q,
            _ => LineQuery {
                key,
                last,
                next: first,
                fetched: BTreeSet::new(),
            },
        };
        for line in q.next..=q.last {
            if !self.resident(line) {
                self.request(line, &mut q.fetched);
            }
        }
        while q.next <= q.last && self.resident(q.next) {
            if !q.fetched.remove(&q.next) {
                self.stats.hits += 1;
            }
            q.next += 1;
        }
        let done = q.next > q.last;
        let slot = match port {
            Port::Edge => &mut self.edge_q[ch],
            Port::Offset => &mut self.offset_q[ch],
        };
        *slot = Some(q);
        done
    }

    fn install_ready(&mut self) {
        self.arrived.clear();
        while let Some(line) = self.dram.pop_ready() {
            let set = self.set_of(line);
            self.tags[set] = Some(line);
            self.mshr.remove(&line);
            self.arrived.insert(line);
        }
    }

    /// Residency as the *next* cycle's `begin_cycle` will see it: the
    /// `arrived` set is cleared there, so activity probes (evaluated
    /// between cycles) must ignore it — a line surviving only in
    /// `arrived` will be re-requested next cycle, which is activity.
    fn tag_resident(&self, line: u64) -> bool {
        self.tags[self.set_of(line)] == Some(line)
    }

    /// Non-mutating twin of [`Modeled::step_query`]; see [`QueryState`].
    fn query_state(&self, ch: usize, port: Port, base: u64, bytes: u64) -> QueryState {
        let slot = match port {
            Port::Edge => &self.edge_q[ch],
            Port::Offset => &self.offset_q[ch],
        };
        match slot {
            Some(q) if q.key == (base, bytes) => {
                if q.next > q.last {
                    return QueryState::Ready;
                }
                for line in q.next..=q.last {
                    if !self.tag_resident(line)
                        && !self.mshr.contains(&line)
                        && !self.dram.line_retry_stable(line)
                    {
                        return QueryState::Active; // a (re)request would land
                    }
                }
                if self.tag_resident(q.next) {
                    QueryState::Active // would consume in order
                } else {
                    QueryState::Blocked
                }
            }
            // No query yet (or the slot holds a different request): the
            // next ask creates one and issues its fetches.
            _ => QueryState::Active,
        }
    }
}

/// The off-chip memory subsystem one chip owns: cache → DRAM channels.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    inner: Option<Modeled>,
}

impl MemorySubsystem {
    /// The infinite-bandwidth subsystem: every fetch is resident, no
    /// cycles are ever spent. This is the default for every preset and
    /// keeps all pre-memory-model metrics bit-identical.
    pub fn infinite() -> Self {
        MemorySubsystem { inner: None }
    }

    /// Builds the modeled subsystem from validated configuration knobs,
    /// serving `channels` front-end channels.
    ///
    /// # Panics
    ///
    /// Panics on un-validated knobs (zero sizes); construct through
    /// `NetworkFactory`, which validates the [`MemoryConfig`] first.
    pub fn modeled(config: &MemoryConfig, channels: usize) -> Self {
        let line_bytes = config.line_bytes as u64;
        let num_lines = (config.cache_kb as u64 * 1024 / line_bytes).max(1) as usize;
        MemorySubsystem {
            inner: Some(Modeled {
                tags: vec![None; num_lines],
                line_bytes,
                dram: DramSystem::new(
                    config.channels,
                    config.banks_per_channel,
                    config.queue_depth,
                    (config.row_bytes as u64 / line_bytes).max(1),
                    config.timing,
                ),
                mshr: BTreeSet::new(),
                arrived: BTreeSet::new(),
                edge_q: vec![None; channels],
                offset_q: vec![None; channels],
                stats: CacheStats::default(),
            }),
        }
    }

    /// Whether this subsystem models finite memory.
    pub fn is_modeled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the DRAM event-wheel horizon (a host-simulation sizing knob,
    /// see `AcceleratorConfig::wheel_horizon`; modeled cycles are
    /// unaffected). No-op on the infinite subsystem.
    pub fn set_wheel_horizon(&mut self, horizon: usize) {
        if let Some(m) = &mut self.inner {
            m.dram.set_wheel_horizon(horizon);
        }
    }

    /// Installs DRAM lines that completed since the last cycle; call at
    /// the start of each combinational phase.
    pub fn begin_cycle(&mut self) {
        if let Some(m) = &mut self.inner {
            m.install_ready();
        }
    }

    /// Whether channel `ch`'s Offset Array pair `{Off[u], Off[u+1]}` has
    /// streamed in; advances the fetch if not.
    pub fn offset_ready(&mut self, ch: usize, u: u32) -> bool {
        let lo = OFFSET_REGION + u64::from(u) * OFFSET_BYTES;
        self.bytes_ready(ch, Port::Offset, lo, 2 * OFFSET_BYTES)
    }

    /// Whether channel `ch`'s Edge Array range `[off, off + len)` (edge
    /// indices) has streamed in; advances the fetch if not.
    pub fn edges_ready(&mut self, ch: usize, off: u64, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        self.bytes_ready(
            ch,
            Port::Edge,
            off * EDGE_BYTES,
            u64::from(len) * EDGE_BYTES,
        )
    }

    /// Whether the query covering `[base, base + bytes)` completed.
    fn bytes_ready(&mut self, ch: usize, port: Port, base: u64, bytes: u64) -> bool {
        let Some(m) = &mut self.inner else {
            return true;
        };
        let first = base / m.line_bytes;
        let last = (base + bytes - 1) / m.line_bytes;
        m.step_query(ch, port, (base, bytes), first, last)
    }

    /// Commits the per-cycle effects of `cycles` idle cycles of blocked
    /// queries: every missing line that is neither resident nor in the
    /// MSHR was being re-requested — and deterministically rejected (the
    /// fast-forward precondition: no such line's request could land) —
    /// once per cycle by each query holding it.
    pub(crate) fn commit_idle(&mut self, cycles: u64) {
        let Some(m) = &mut self.inner else {
            return;
        };
        let mut retried: Vec<u64> = Vec::new();
        for q in m.edge_q.iter().chain(m.offset_q.iter()).flatten() {
            if q.next > q.last {
                continue;
            }
            for line in q.next..=q.last {
                if !m.tag_resident(line) && !m.mshr.contains(&line) {
                    retried.push(line);
                }
            }
        }
        for line in retried {
            m.dram.commit_rejected(line, cycles);
        }
    }

    /// Non-mutating probe of what the next [`MemorySubsystem::offset_ready`]
    /// ask for channel `ch`'s pair `{Off[u], Off[u+1]}` would do.
    pub(crate) fn offset_query_state(&self, ch: usize, u: u32) -> QueryState {
        let Some(m) = &self.inner else {
            return QueryState::Ready;
        };
        let lo = OFFSET_REGION + u64::from(u) * OFFSET_BYTES;
        m.query_state(ch, Port::Offset, lo, 2 * OFFSET_BYTES)
    }

    /// Non-mutating probe of what the next [`MemorySubsystem::edges_ready`]
    /// ask for channel `ch`'s range `[off, off + len)` would do.
    pub(crate) fn edge_query_state(&self, ch: usize, off: u64, len: u32) -> QueryState {
        let Some(m) = &self.inner else {
            return QueryState::Ready;
        };
        if len == 0 {
            return QueryState::Ready;
        }
        m.query_state(
            ch,
            Port::Edge,
            off * EDGE_BYTES,
            u64::from(len) * EDGE_BYTES,
        )
    }

    /// Number of modeled DRAM channels (0 in infinite mode).
    pub fn dram_channels(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.dram.num_channels())
    }

    /// Browns out (or restores) one DRAM channel for fault injection;
    /// no-op on the infinite subsystem (it has no channels to pause).
    pub fn set_dram_channel_paused(&mut self, channel: usize, paused: bool) {
        if let Some(m) = &mut self.inner {
            m.dram.set_channel_paused(channel, paused);
        }
    }

    /// Cumulative cache counters (zero in infinite mode).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.as_ref().map(|m| m.stats).unwrap_or_default()
    }

    /// DRAM counters merged across channels (zero in infinite mode).
    pub fn dram_stats(&self) -> MemoryStats {
        self.inner
            .as_ref()
            .map(|m| m.dram.stats())
            .unwrap_or_default()
    }
}

impl ClockedComponent for MemorySubsystem {
    fn tick(&mut self) {
        if let Some(m) = &mut self.inner {
            m.dram.tick();
        }
    }

    fn in_flight(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.dram.in_flight())
    }

    /// The subsystem acts on its own only when DRAM does: queries advance
    /// exclusively when a pipeline stage asks (the stage's own activity
    /// is probed via `MemorySubsystem::edge_query_state` /
    /// `MemorySubsystem::offset_query_state`, which are crate-private).
    fn next_activity(&mut self) -> Option<u64> {
        self.inner.as_mut().and_then(|m| m.dram.next_activity())
    }

    /// Modeled subsystems inherit the DRAM event wheel's indexed window
    /// selection; unmodeled ones never report a window at all.
    fn wheel_indexed(&self) -> bool {
        self.inner.is_some()
    }

    fn skip(&mut self, cycles: u64) {
        if let Some(m) = &mut self.inner {
            m.dram.skip(cycles);
        }
    }
}

fn save_query(w: &mut higraph_sim::SnapWriter, slot: &Option<LineQuery>) {
    match slot {
        None => w.bool(false),
        Some(q) => {
            w.bool(true);
            w.u64(q.key.0);
            w.u64(q.key.1);
            w.u64(q.last);
            w.u64(q.next);
            w.seq(q.fetched.iter());
        }
    }
}

fn load_query(
    r: &mut higraph_sim::SnapReader<'_>,
) -> Result<Option<LineQuery>, higraph_sim::SnapError> {
    if !r.bool()? {
        return Ok(None);
    }
    let key = (r.u64()?, r.u64()?);
    let last = r.u64()?;
    let next = r.u64()?;
    let fetched: Vec<u64> = r.seq(u32::MAX as usize)?;
    Ok(Some(LineQuery {
        key,
        last,
        next,
        fetched: fetched.into_iter().collect(),
    }))
}

impl higraph_sim::Snapshot for MemorySubsystem {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"MSUB");
        match &self.inner {
            None => w.bool(false),
            Some(m) => {
                w.bool(true);
                w.usize(m.tags.len());
                w.u64(m.line_bytes);
                w.usize(m.edge_q.len());
                w.u64(m.stats.hits);
                w.u64(m.stats.misses);
                m.tags.save(w);
                m.dram.save(w);
                w.seq(m.mshr.iter());
                w.seq(m.arrived.iter());
                for q in &m.edge_q {
                    save_query(w, q);
                }
                for q in &m.offset_q {
                    save_query(w, q);
                }
            }
        }
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"MSUB")?;
        let modeled = r.bool()?;
        match (modeled, &mut self.inner) {
            (false, None) => Ok(()),
            (true, Some(m)) => {
                let lines = r.usize()?;
                let line_bytes = r.u64()?;
                let channels = r.usize()?;
                if lines != m.tags.len() || line_bytes != m.line_bytes || channels != m.edge_q.len()
                {
                    return Err(higraph_sim::SnapError::new(format!(
                        "memory subsystem shape mismatch: snapshot {lines} lines x \
                         {line_bytes} B over {channels} channels, live {} x {} over {}",
                        m.tags.len(),
                        m.line_bytes,
                        m.edge_q.len()
                    )));
                }
                m.stats.hits = r.u64()?;
                m.stats.misses = r.u64()?;
                m.tags.load(r)?;
                m.dram.load(r)?;
                let mshr: Vec<u64> = r.seq(u32::MAX as usize)?;
                m.mshr = mshr.into_iter().collect();
                let arrived: Vec<u64> = r.seq(u32::MAX as usize)?;
                m.arrived = arrived.into_iter().collect();
                for q in &mut m.edge_q {
                    *q = load_query(r)?;
                }
                for q in &mut m.offset_q {
                    *q = load_query(r)?;
                }
                Ok(())
            }
            _ => Err(higraph_sim::SnapError::new(
                "memory-model mismatch: snapshot and live subsystem disagree on modeled memory",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(cache_kb: usize) -> MemoryConfig {
        MemoryConfig {
            cache_kb,
            ..MemoryConfig::hbm2()
        }
    }

    fn drive_until_ready(mem: &mut MemorySubsystem, ch: usize, off: u64, len: u32) -> u64 {
        let mut cycles = 0u64;
        while !mem.edges_ready(ch, off, len) {
            mem.tick();
            mem.begin_cycle();
            cycles += 1;
            assert!(cycles < 10_000, "range never streamed in");
        }
        cycles
    }

    #[test]
    fn infinite_is_always_ready_and_stateless() {
        let mut mem = MemorySubsystem::infinite();
        assert!(!mem.is_modeled());
        assert!(mem.offset_ready(0, 12345));
        assert!(mem.edges_ready(3, 99, 1000));
        mem.begin_cycle();
        mem.tick();
        assert_eq!(mem.in_flight(), 0);
        assert_eq!(mem.cache_stats(), CacheStats::default());
        assert_eq!(mem.dram_stats(), MemoryStats::default());
    }

    #[test]
    fn miss_blocks_until_dram_returns_then_hits() {
        let mut mem = MemorySubsystem::modeled(&small_config(64), 4);
        assert!(!mem.edges_ready(0, 0, 4), "cold cache must miss");
        assert_eq!(mem.cache_stats().misses, 1); // 4 edges = 1 line
        let cycles = drive_until_ready(&mut mem, 0, 0, 4);
        assert!(cycles >= 1, "DRAM must cost at least a cycle");
        assert_eq!(mem.cache_stats().misses, 1, "MSHR stops re-fetching");
        // a *different* request over the now-resident line is a hit
        assert!(mem.edges_ready(0, 1, 2));
        assert!(mem.cache_stats().hits >= 1);
        assert!(mem.dram_stats().completed >= 1);
    }

    #[test]
    fn backpressure_retries_do_not_recount_hits() {
        let mut mem = MemorySubsystem::modeled(&small_config(64), 2);
        // warm the line with one query, then a second request hits it
        drive_until_ready(&mut mem, 0, 0, 4);
        assert!(mem.edges_ready(0, 1, 2));
        let hits = mem.cache_stats().hits;
        assert!(hits >= 1);
        // a back-pressured stage re-asks the identical completed query
        // every cycle: free, and counted exactly zero more times
        for _ in 0..10 {
            assert!(mem.edges_ready(0, 1, 2));
        }
        assert_eq!(mem.cache_stats().hits, hits);
        // …until a different request takes the slot
        assert!(mem.edges_ready(0, 2, 1));
        assert_eq!(mem.cache_stats().hits, hits + 1);
    }

    #[test]
    fn multi_line_ranges_stream_in_order() {
        let mut mem = MemorySubsystem::modeled(&small_config(64), 2);
        // 32 edges × 16 B = 8 lines
        assert!(!mem.edges_ready(1, 0, 32));
        assert_eq!(mem.cache_stats().misses, 8, "all lines fetch in parallel");
        drive_until_ready(&mut mem, 1, 0, 32);
        assert_eq!(mem.cache_stats().misses, 8);
    }

    #[test]
    fn aliasing_queries_from_two_channels_both_complete() {
        // Two channels stream ranges whose lines alias the same cache
        // sets (tiny 1 KiB cache = 16 sets, ranges 16 sets apart): the
        // streaming consume must let both finish — the all-resident
        // formulation livelocks here.
        let mut mem = MemorySubsystem::modeled(
            &MemoryConfig {
                cache_kb: 1,
                ..MemoryConfig::hbm2()
            },
            2,
        );
        let apart = 16 * (64 / EDGE_BYTES); // one full cache of lines
        let mut done = [false; 2];
        let mut cycles = 0u64;
        while !(done[0] && done[1]) {
            done[0] = done[0] || mem.edges_ready(0, 0, 64);
            done[1] = done[1] || mem.edges_ready(1, apart, 64);
            mem.tick();
            mem.begin_cycle();
            cycles += 1;
            assert!(cycles < 10_000, "aliasing queries must both make progress");
        }
    }

    #[test]
    fn offset_and_edge_regions_do_not_alias() {
        let mut mem = MemorySubsystem::modeled(&small_config(64), 1);
        assert!(!mem.offset_ready(0, 0));
        assert!(!mem.edges_ready(0, 0, 1));
        // two distinct lines were fetched
        assert_eq!(mem.cache_stats().misses, 2);
    }

    #[test]
    fn zero_length_range_is_trivially_ready() {
        let mut mem = MemorySubsystem::modeled(&small_config(16), 1);
        assert!(mem.edges_ready(0, 7, 0));
        assert_eq!(mem.cache_stats(), CacheStats::default());
    }

    #[test]
    fn larger_cache_conflicts_less() {
        // Direct-mapped: with 2 alternating far-apart lines, a tiny cache
        // thrashes while a larger one keeps both.
        let lines_apart = 64 * 1024 / 64; // one 64 KiB cache worth of lines
        let mut small = MemorySubsystem::modeled(&small_config(64), 1);
        let mut large = MemorySubsystem::modeled(&small_config(256), 1);
        for mem in [&mut small, &mut large] {
            for _round in 0..4 {
                for &edge in &[0u64, lines_apart * (64 / EDGE_BYTES)] {
                    drive_until_ready(mem, 0, edge, 1);
                }
            }
        }
        assert!(small.cache_stats().misses > large.cache_stats().misses);
        assert!(small.cache_stats().hit_rate() < large.cache_stats().hit_rate());
    }

    #[test]
    fn hit_rate_guards_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
