//! Sharded multi-chip execution: P engine pipelines over a
//! destination-interval partition, coupled by a modeled inter-chip link.
//!
//! The paper's scalability story (Fig. 11) widens one chip; this module
//! scales *out* instead. [`ShardedEngine`] instantiates one scatter
//! pipeline per chip over the `higraph_graph::slicing::partition` shards
//! and clocks all of them — plus a `higraph_sim::InterChipLink` carrying
//! cross-shard edge updates — under a single `Scheduler` drain per
//! iteration, so compute and communication share one clock and the
//! iteration ends only when both have drained.
//!
//! # Execution model
//!
//! Destination-interval sharding keeps the algorithm untouched: chip `p`
//! owns destinations `[dst_start, dst_end)` of slice `p`, scatters the
//! *global* frontier over its slice graph into its own tProperty
//! interval, and applies its owned vertices. Because every edge lives on
//! exactly one chip and reduction is per-destination, the final Property
//! Array is bit-identical to the serial [`Engine::run`](crate::engine::Engine::run) — with one chip
//! the whole run (metrics included) is bit-identical, which
//! `tests/sharded_equivalence.rs` asserts.
//!
//! # Traffic model
//!
//! Each processed edge whose source vertex is owned by a different chip
//! than its destination contributes one update packet on the inter-chip
//! link, entering at the source chip and delivered to the destination
//! chip. Over one full-frontier iteration the packet count therefore
//! equals the partitioner's reported cut-edge count
//! ([`higraph_graph::slicing::total_cut_edges`]) — a property test holds
//! the two equal. The link models egress-queue depth, per-chip injection
//! bandwidth, and flight latency; see `docs/sharding.md` for the
//! cycle-accounting assumptions.

use crate::apply::{apply_cycles, apply_phase};
use crate::config::AcceleratorConfig;
use crate::engine::{
    derived_stall_guard, finalize_metrics, Checkpoint, ControlError, ScatterPipeline,
    StallDiagnostic,
};
use crate::faults::FaultRuntime;
use crate::metrics::Metrics;
use crate::netfactory::NetworkFactory;
use crate::parallel::{drain_chips_parallel, exchange_link, ChipLane};
use higraph_graph::slicing::{partition, total_cut_edges, Slice};
use higraph_graph::{Csr, VertexId};
use higraph_pool::{CoreLease, CorePool};
use higraph_sim::{
    content_checksum, min_activity, ClockedComponent, DrainError, DrainStep, EventWheel,
    InterChipLink, NetworkStats, Packet, RunControl, Scheduler, SnapError, SnapReader, SnapValue,
    SnapWriter, Snapshot, StallError,
};
use higraph_vcpm::VertexProgram;

/// Geometry and timing of the inter-chip fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of chips (= shards). 1 reproduces the serial engine.
    pub num_chips: usize,
    /// Link flight latency in cycles, on top of the one-cycle stage
    /// minimum every clocked component obeys.
    pub link_latency: u64,
    /// Update packets each chip can inject per cycle.
    pub link_bandwidth: usize,
    /// Depth of each chip's link egress queue.
    pub link_capacity: usize,
}

impl ShardConfig {
    /// A `num_chips`-way configuration with board-level defaults: 8-cycle
    /// flight latency, 4 packets/cycle/chip, 64-entry egress queues.
    pub fn new(num_chips: usize) -> Self {
        ShardConfig {
            num_chips,
            link_latency: 8,
            link_bandwidth: 4,
            link_capacity: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if the chip count, bandwidth, or queue capacity
    /// is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_chips == 0 {
            return Err("need at least one chip".to_string());
        }
        if self.link_bandwidth == 0 || self.link_capacity == 0 {
            return Err("link bandwidth and capacity must be positive".to_string());
        }
        Ok(())
    }
}

/// One cross-shard edge update on the inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPacket {
    /// Chip owning the source vertex (link input).
    pub src_chip: usize,
    /// Chip owning the destination vertex (link output).
    pub dst_chip: usize,
}

impl Packet for ShardPacket {
    fn dest(&self) -> usize {
        self.dst_chip
    }
}

impl SnapValue for ShardPacket {
    fn save_value(&self, w: &mut SnapWriter) {
        w.usize(self.src_chip);
        w.usize(self.dst_chip);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ShardPacket {
            src_chip: r.usize()?,
            dst_chip: r.usize()?,
        })
    }
}

/// Result of a sharded run ([`ShardedEngine::run`]).
#[derive(Debug, Clone)]
pub struct ShardedRunResult<P> {
    /// Final Property Array — bit-identical to the serial engine's.
    pub properties: Vec<P>,
    /// Aggregate metrics on the multi-chip critical path: scatter cycles
    /// are the lock-step drain (all chips *and* the link), apply cycles
    /// the slowest chip's owned-interval scan per iteration. Fabric stats
    /// and counters are merged across chips.
    pub metrics: Metrics,
    /// Per-chip metrics, indexed by chip (= slice) number.
    pub chips: Vec<Metrics>,
    /// Update packets that crossed the inter-chip link.
    pub cross_chip_packets: u64,
    /// Link fabric counters (accepted/rejected/delivered/cycles).
    pub link: NetworkStats,
}

impl<P> ShardedRunResult<P> {
    /// Number of chips that executed this run.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Scatter cycles of the slowest chip — the compute-only critical
    /// path, before communication is folded in by the lock-step drain.
    pub fn max_chip_scatter_cycles(&self) -> u64 {
        self.chips
            .iter()
            .map(|m| m.scatter_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate cycles per processed edge — the scale-out efficiency
    /// figure the multi-chip sweep reports.
    pub fn cycles_per_edge(&self) -> f64 {
        if self.metrics.edges_processed == 0 {
            0.0
        } else {
            self.metrics.cycles as f64 / self.metrics.edges_processed as f64
        }
    }
}

/// How a controlled sharded run ([`ShardedEngine::run_controlled`])
/// ended: completion, a boundary checkpoint, or cancellation.
// Same shape as `RunOutcome`: matched once and destructured, so the
// inline result's size skew never costs anything.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ShardedOutcome<P> {
    /// The run finished; bit-identical to [`ShardedEngine::run`].
    Done(ShardedRunResult<P>),
    /// The run parked at a committed iteration boundary and serialized
    /// its full state into a restorable checkpoint.
    Parked(Checkpoint),
    /// Cancellation was observed; partial state was discarded.
    Cancelled,
}

/// Everything the lock-step drain clocks: P chip pipelines, the link,
/// and the per-chip egress staging for packets the link has not yet
/// accepted. Draining this composite *is* the iteration barrier: the
/// scatter phase ends when no chip and no link queue holds work.
///
/// Staged traffic is a `[src][dst]` remaining-count matrix, not a queue
/// of materialized packets: every packet of a (src, dst) pair is
/// identical and consumers discard them on arrival, so synthesizing
/// packets at link-push time models the same cycles and counts in O(P²)
/// memory instead of O(cut edges) per iteration.
struct MultiChip<P> {
    chips: Vec<ScatterPipeline<P>>,
    link: InterChipLink<ShardPacket>,
    staged: Vec<Vec<u64>>,
    /// Calendar queue over the chips (one slot per chip), so the serial
    /// drain's window selection costs O(active chips) instead of polling
    /// every chip pipeline. Chips never *gain* work mid-drain (the
    /// exchange only moves staged counts into the link and discards
    /// arrivals), so slots only need re-dirtying when a wake comes due
    /// ([`EventWheel::dirty_due`] each tick) and wholesale at the start
    /// of each drain, after `load_frontier` refills the chips.
    wheel: EventWheel,
}

impl<P> MultiChip<P> {
    /// Packets staged but not yet accepted by the link.
    fn staged_total(&self) -> u64 {
        self.staged.iter().flatten().sum()
    }
}

impl<P: Copy + 'static> ClockedComponent for MultiChip<P> {
    fn tick(&mut self) {
        for chip in &mut self.chips {
            chip.tick();
        }
        self.link.tick();
        self.wheel.advance(1);
        self.wheel.dirty_due();
    }

    fn in_flight(&self) -> usize {
        self.chips
            .iter()
            .map(ClockedComponent::in_flight)
            .sum::<usize>()
            + self.link.in_flight()
            + self.staged_total() as usize
    }

    /// The composite idles only when every chip and the link idle and no
    /// staged traffic is waiting (staged packets are offered — and their
    /// rejections counted — every cycle until the link accepts them).
    fn next_activity(&mut self) -> Option<u64> {
        if self.staged_total() > 0 {
            return Some(0);
        }
        let chips = &mut self.chips;
        let chip_window = self.wheel.next_window(|c| chips[c].next_activity());
        #[cfg(debug_assertions)]
        {
            // The legacy poll, kept as the oracle the wheel must match.
            let poll = chips
                .iter_mut()
                .map(ClockedComponent::next_activity)
                .fold(None, min_activity);
            debug_assert_eq!(
                chip_window, poll,
                "multi-chip event wheel diverged from the chip activity poll"
            );
        }
        let window = min_activity(chip_window, self.link.activity_window());
        match window {
            Some(w) => Some(w),
            // Defensive, as in `ScatterPipeline::next_activity`.
            None if !self.is_drained() => Some(0),
            None => None,
        }
    }

    /// Chip windows are answered by the calendar queue; only the link
    /// (one component) is still polled directly.
    fn wheel_indexed(&self) -> bool {
        true
    }

    fn skip(&mut self, cycles: u64) {
        for chip in &mut self.chips {
            chip.skip(cycles);
        }
        self.link.skip(cycles);
        self.wheel.advance(cycles);
    }
}

impl<P: SnapValue + 'static> Snapshot for MultiChip<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(b"MCHP");
        w.usize(self.chips.len());
        for chip in &self.chips {
            chip.save(w);
        }
        self.link.save(w);
        for row in &self.staged {
            row.save(w);
        }
        self.wheel.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"MCHP")?;
        let chips = r.usize()?;
        if chips != self.chips.len() {
            return Err(SnapError::new(format!(
                "checkpoint has {chips} chips, engine has {}",
                self.chips.len()
            )));
        }
        for chip in &mut self.chips {
            chip.load(r)?;
        }
        self.link.load(r)?;
        for row in &mut self.staged {
            row.load(r)?;
        }
        self.wheel.load(r)
    }
}

/// A multi-chip accelerator instance bound to a partitioned graph.
#[derive(Debug)]
pub struct ShardedEngine<'g> {
    factory: NetworkFactory,
    shard: ShardConfig,
    graph: &'g Csr,
    slices: Vec<Slice>,
    /// Owning chip per vertex (destination-interval lookup).
    owner: Vec<usize>,
    /// Overrides the workload-derived stall guard when set.
    stall_guard: Option<u64>,
    /// Event-driven fast-forward of idle lock-step cycles (on by
    /// default; bit-identical — see `docs/simulation.md`).
    fast_forward: bool,
    /// Host worker threads for the lock-step drain (`None` = lease
    /// whatever the shared [`CorePool`] has idle, up to one per chip,
    /// at the start of every drain). Results are bit-identical for
    /// every setting — see `docs/performance.md`.
    threads: Option<usize>,
}

impl<'g> ShardedEngine<'g> {
    /// Creates a sharded engine: `shard.num_chips` identical chips built
    /// from `config`, over the destination-interval partition of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid; use
    /// [`ShardedEngine::try_new`] for a fallible constructor.
    pub fn new(config: AcceleratorConfig, shard: ShardConfig, graph: &'g Csr) -> Self {
        // lint:allow(panic-freedom): documented panicking convenience constructor; ShardedEngine::try_new is the fallible path
        ShardedEngine::try_new(config, shard, graph).expect("invalid sharded configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message for an invalid accelerator or
    /// shard configuration.
    pub fn try_new(
        config: AcceleratorConfig,
        shard: ShardConfig,
        graph: &'g Csr,
    ) -> Result<Self, String> {
        shard.validate()?;
        let factory = NetworkFactory::new(&config)?;
        let slices = partition(graph, shard.num_chips);
        let mut owner = vec![0usize; graph.num_vertices() as usize];
        for s in &slices {
            for v in s.dst_start..s.dst_end {
                owner[v as usize] = s.index;
            }
        }
        Ok(ShardedEngine {
            factory,
            shard,
            graph,
            slices,
            owner,
            stall_guard: None,
            fast_forward: true,
            threads: None,
        })
    }

    /// Replaces the workload-derived stall guard with a fixed cycle
    /// budget per lock-step drain (`None` restores the derived guard).
    pub fn set_stall_guard(&mut self, guard: Option<u64>) {
        self.stall_guard = guard;
    }

    /// Enables or disables event-driven fast-forward (on by default;
    /// bit-identical results either way, like [`crate::Engine`]'s).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Sets the host worker threads that tick the chips during the
    /// lock-step drain. `None` (the default) leases currently-idle
    /// workers from the process-wide [`CorePool`] at each drain — up to
    /// one per chip — so chip-level parallelism composes with
    /// batch-level parallelism instead of oversubscribing the host.
    /// `Some(n)` demands an exact `n`-worker team (temporary threads
    /// make up any shortfall); `Some(1)` forces the serial drain. Cycle
    /// counts and every metric are **bit-identical** for every setting;
    /// only host time changes. See `docs/performance.md`.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Worker threads a [`ShardedEngine::run`] drain uses at full pool
    /// availability: the explicit override, or the resident pool's
    /// worker count, capped at the chip count. Under the default
    /// (`None`) policy the actual per-drain team can be smaller when
    /// co-scheduled jobs keep pool workers busy; results are
    /// bit-identical regardless.
    pub fn worker_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| CorePool::global().workers())
            .clamp(1, self.shard.num_chips)
    }

    /// The per-chip accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        self.factory.config()
    }

    /// The shard/link configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard
    }

    /// The destination-interval shards, one per chip.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// The partitioner's total cut-edge count — the per-full-frontier
    /// cross-chip packet count.
    pub fn cut_edges(&self) -> u64 {
        total_cut_edges(&self.slices)
    }

    /// Executes `program` across all chips to completion.
    ///
    /// With more than one worker thread (see
    /// [`ShardedEngine::set_threads`]) the chips of each lock-step cycle
    /// tick concurrently — their slice graphs, metrics, and owned
    /// tProperty intervals are disjoint — with a barrier before the
    /// inter-chip exchange, so results stay bit-identical to the serial
    /// drain.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if the lock-step drain of an
    /// iteration fails to finish within its stall guard (a mis-sized
    /// fabric, link, or memory configuration).
    pub fn run<Prog>(
        &mut self,
        program: &Prog,
    ) -> Result<ShardedRunResult<Prog::Prop>, StallDiagnostic>
    where
        Prog: VertexProgram + Sync,
        Prog::Prop: Send,
    {
        let config = self.factory.config();
        let m = config.back_channels;
        let frequency_ghz = config.effective_frequency_ghz();
        let num_chips = self.shard.num_chips;
        let graph = self.graph;
        let num_v = graph.num_vertices();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut multi = MultiChip {
            chips: (0..num_chips)
                .map(|_| ScatterPipeline::new(&self.factory))
                .collect(),
            link: InterChipLink::new(
                num_chips,
                self.shard.link_latency,
                self.shard.link_bandwidth,
                self.shard.link_capacity,
            ),
            staged: vec![vec![0u64; num_chips]; num_chips],
            // `validate()` has already vetted the horizon, so this
            // cannot fail for a config that reached `run`.
            wheel: EventWheel::new(num_chips, config.wheel_horizon),
        };
        let faults = self.fault_runtime(&multi);
        // Fault windows land on exact global cycles, so fault runs force
        // per-cycle ticking.
        let mut scheduler =
            Scheduler::new().with_fast_forward(self.fast_forward && faults.is_none());
        let fresh_metrics = || Metrics {
            frequency_ghz,
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };
        let mut chip_metrics: Vec<Metrics> = (0..num_chips).map(|_| fresh_metrics()).collect();
        let mut agg = fresh_metrics();
        let mut cross_chip_packets = 0u64;

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if agg.iterations >= cap {
                    break;
                }
            }
            debug_assert!(
                multi.is_drained(),
                "a scatter phase must start from a drained multi-chip composite"
            );

            // Stage this iteration's cross-shard traffic: one packet per
            // edge a chip will process from a remotely-owned source,
            // counted per (source chip, destination chip) pair.
            for &u in &frontier {
                let src_chip = self.owner[u.index()];
                for slice in &self.slices {
                    if slice.index != src_chip {
                        multi.staged[src_chip][slice.index] += slice.graph.out_degree(u);
                    }
                }
            }
            let staged = multi.staged_total();
            cross_chip_packets += staged;

            // Load the global frontier into every chip's front-end.
            for chip in &mut multi.chips {
                chip.front.load_frontier(&frontier, &properties);
            }

            // One lock-step drain: all chips plus the link, per cycle.
            let iteration_edges: u64 = frontier.iter().map(|&v| graph.out_degree(v)).sum();
            let guard = self.stall_guard.unwrap_or_else(|| {
                derived_stall_guard(
                    self.factory.config(),
                    iteration_edges,
                    frontier.len() as u64,
                    num_chips as u64,
                    staged,
                ) + self.shard.link_latency
            }) + faults.as_ref().map_or(0, FaultRuntime::guard_bonus);
            let mut chip_cycles = vec![0u64; num_chips];
            // Host cores are acquired per drain: an explicit override
            // leases its exact team (temporary threads cover any
            // shortfall), the default leases whatever the shared pool
            // has idle *right now* — so this drain and concurrently
            // running batch jobs split the host instead of
            // oversubscribing it. An empty grant (fully busy pool),
            // `Some(1)`, or a single chip takes the serial drain;
            // results are bit-identical in every case.
            // Fault runs force the serial drain: fault windows clock-gate
            // individual chips per cycle, which the worker protocol does
            // not model.
            let lease = match self.threads {
                _ if faults.is_some() => None,
                Some(n) => {
                    let team = n.clamp(1, num_chips);
                    (team > 1).then(|| CorePool::global().lease_exact(team))
                }
                None if num_chips > 1 => {
                    let lease = CorePool::global().lease(num_chips);
                    (lease.team_size() > 0).then_some(lease)
                }
                None => None,
            };
            let drained = match &lease {
                Some(lease) => self
                    .drain_parallel(
                        program,
                        &mut multi,
                        &mut t_props,
                        &mut chip_metrics,
                        &mut chip_cycles,
                        lease,
                        guard,
                    )
                    .map_err(DrainError::Stall),
                None => {
                    scheduler.set_stall_guard(guard);
                    self.drain_serial(
                        program,
                        &mut multi,
                        &mut t_props,
                        &mut chip_metrics,
                        &mut chip_cycles,
                        &mut scheduler,
                        None,
                        faults.as_ref(),
                        agg.scatter_cycles,
                    )
                }
            };
            drop(lease); // workers rejoin the stealing rotation
            let spent = drained.map_err(|err| {
                let stall = match err {
                    DrainError::Stall(stall) => stall,
                    DrainError::Interrupted { .. } => {
                        // lint:allow(panic-freedom): a drain without a control has no cancellation path
                        unreachable!("uncontrolled drain cannot be interrupted")
                    }
                };
                StallDiagnostic {
                    config: self.factory.config().name.clone(),
                    num_chips,
                    iteration: agg.iterations,
                    iteration_edges,
                    staged_packets: staged,
                    stall,
                }
            })?;
            agg.scatter_cycles += spent;
            for (ci, cycles) in chip_cycles.iter().enumerate() {
                chip_metrics[ci].scatter_cycles += *cycles;
            }

            // Apply: functionally global (bit-identity), cycle-wise each
            // chip scans only its owned interval; the slowest chip gates
            // the iteration.
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            let mut max_apply = 0u64;
            for (ci, slice) in self.slices.iter().enumerate() {
                let a = apply_cycles(slice.num_owned(), m);
                chip_metrics[ci].apply_cycles += a;
                chip_metrics[ci].iterations += 1;
                max_apply = max_apply.max(a);
            }
            agg.apply_cycles += max_apply;
            agg.iterations += 1;
        }

        Ok(finish_result(
            agg,
            chip_metrics,
            &multi,
            properties,
            cross_chip_packets,
        ))
    }

    /// Expands the configuration's fault plan against this engine's
    /// topology (chip count, per-chip DRAM channels), if one is set.
    fn fault_runtime<P>(&self, multi: &MultiChip<P>) -> Option<FaultRuntime> {
        self.factory.config().fault_plan.as_ref().map(|plan| {
            FaultRuntime::new(
                plan,
                self.shard.num_chips,
                multi.chips.first().map_or(0, |c| c.mem.dram_channels()),
            )
        })
    }

    /// The serial lock-step drain: the whole [`MultiChip`] composite is
    /// driven by the shared [`Scheduler`] on this thread. With
    /// `control`, the drain polls for cancellation; with `faults`, each
    /// drained cycle applies the fault windows active at `base + cycle`
    /// of the global scatter timeline.
    ///
    /// # Errors
    ///
    /// [`DrainError::Stall`] when the composite fails to drain within
    /// the guard, [`DrainError::Interrupted`] when `control` observes a
    /// cancellation mid-drain.
    #[allow(clippy::too_many_arguments)]
    fn drain_serial<Prog: VertexProgram>(
        &self,
        program: &Prog,
        multi: &mut MultiChip<Prog::Prop>,
        t_props: &mut [Prog::Prop],
        chip_metrics: &mut [Metrics],
        chip_cycles: &mut [u64],
        scheduler: &mut Scheduler,
        control: Option<&RunControl>,
        faults: Option<&FaultRuntime>,
        base: u64,
    ) -> Result<u64, DrainError> {
        let mut t_slices = split_owned_intervals(t_props, &self.slices);
        // `load_frontier` refilled the chips since the last drain, so
        // every registered wake may be stale-late; re-register them all
        // before the first window selection.
        multi.wheel.mark_all_dirty();
        let callback = |multi: &mut MultiChip<Prog::Prop>, step: DrainStep| {
            let cycle = match step {
                DrainStep::Cycle(cycle) => cycle,
                DrainStep::Skipped { cycles, .. } => {
                    // Idle window: no chip stepped, no link
                    // traffic moved; commit each undrained
                    // chip's per-cycle accounting (drained chips
                    // idle without accruing starvation, exactly
                    // as in the per-cycle branch below).
                    for (ci, chip) in multi.chips.iter_mut().enumerate() {
                        if !chip.is_drained() {
                            chip.commit_idle(cycles, &mut chip_metrics[ci]);
                        }
                    }
                    return;
                }
            };
            // Fault windows index the *global* scatter timeline, so a
            // window straddling an iteration (or checkpoint) boundary
            // keeps holding the pipeline across drains.
            let now = base + cycle;
            for (ci, chip) in multi.chips.iter_mut().enumerate() {
                // A drained chip idles (no starvation accrues)
                // while slower chips and the link finish.
                if chip.is_drained() {
                    continue;
                }
                chip_cycles[ci] = cycle + 1;
                if let Some(f) = faults {
                    f.set_brownouts(now, |fault_chip, channel, active| {
                        if fault_chip == ci {
                            chip.mem.set_dram_channel_paused(channel, active);
                        }
                    });
                    if f.chip_paused(now, ci) {
                        // Clock-gated: held packets wait, nothing steps.
                        continue;
                    }
                }
                let slice_graph = &self.slices[ci].graph;
                let (t_slice, t_base) = &mut t_slices[ci];
                chip.back.step(
                    program,
                    slice_graph,
                    t_slice,
                    *t_base,
                    &mut chip_metrics[ci],
                );
                chip.front.step(
                    slice_graph,
                    &mut chip.back.edge_access,
                    &mut chip.mem,
                    &mut chip_metrics[ci],
                );
            }
            // The inter-chip exchange — one definition shared with the
            // parallel drain, so the two paths cannot diverge. A link
            // stall window refuses injections (in-flight packets keep
            // moving through `tick`).
            if faults.is_none_or(|f| !f.link_stalled(now)) {
                exchange_link(&mut multi.link, &mut multi.staged);
            }
        };
        match control {
            Some(ctrl) => scheduler.drain_ctrl(multi, ctrl, callback),
            None => scheduler
                .drain_with(multi, callback)
                .map_err(DrainError::Stall),
        }
    }

    /// The parallel lock-step drain: chips tick on the lease's team
    /// (pool workers, plus temporary threads for an exact override),
    /// the link exchange and fast-forward control stay here, with a
    /// barrier either side of each cycle ([`crate::parallel`]).
    /// Bit-identical to [`ShardedEngine::drain_serial`].
    ///
    /// # Errors
    ///
    /// [`StallError`] when the composite fails to drain within the
    /// guard, exactly as the serial drain reports it.
    #[allow(clippy::too_many_arguments)]
    fn drain_parallel<Prog>(
        &self,
        program: &Prog,
        multi: &mut MultiChip<Prog::Prop>,
        t_props: &mut [Prog::Prop],
        chip_metrics: &mut [Metrics],
        chip_cycles: &mut [u64],
        lease: &CoreLease<'_>,
        guard: u64,
    ) -> Result<u64, StallError>
    where
        Prog: VertexProgram + Sync,
        Prog::Prop: Send,
    {
        let MultiChip {
            chips,
            link,
            staged,
            // The parallel drain computes the composite window from the
            // workers' published per-chip activities; the wheel only
            // serves the serial drain.
            wheel: _,
        } = multi;
        let t_slices = split_owned_intervals(t_props, &self.slices);
        let lanes: Vec<ChipLane<'_, Prog::Prop>> = self
            .slices
            .iter()
            .zip(chips.iter_mut())
            .zip(chip_metrics.iter_mut())
            .zip(t_slices)
            .map(|(((slice, chip), metrics), (t_slice, t_base))| ChipLane {
                index: slice.index,
                chip,
                metrics,
                t_props: t_slice,
                t_base,
                graph: &slice.graph,
            })
            .collect();
        let outcome = drain_chips_parallel(
            lanes,
            link,
            staged,
            lease,
            self.fast_forward,
            guard,
            program,
        )?;
        chip_cycles.copy_from_slice(&outcome.chip_cycles);
        Ok(outcome.spent)
    }

    /// Executes `program` under cooperative run control, exactly as
    /// [`crate::Engine::run_controlled`] does for the serial engine:
    /// `control` can cancel mid-drain or park at the next committed
    /// iteration boundary into a restorable [`Checkpoint`]. Controlled
    /// runs always use the serial lock-step drain; a run that completes
    /// is bit-identical to [`ShardedEngine::run`] at any thread count.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] exactly as [`ShardedEngine::run`]
    /// does.
    pub fn run_controlled<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
    ) -> Result<ShardedOutcome<Prog::Prop>, StallDiagnostic>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let state = self.fresh_state(program);
        self.drive(program, control, state)
    }

    /// Continues a parked sharded run from `checkpoint` under `control`.
    /// The engine must be built over the same graph, accelerator
    /// configuration, and shard geometry that produced the checkpoint;
    /// mismatches are rejected with a precise error. A pending park
    /// request on `control` is cleared.
    ///
    /// # Errors
    ///
    /// [`ControlError::Snapshot`] for a rejected checkpoint,
    /// [`ControlError::Stall`] as for [`ShardedEngine::run`].
    pub fn resume_controlled<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
        checkpoint: &[u8],
    ) -> Result<ShardedOutcome<Prog::Prop>, ControlError>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let mut state = self.fresh_state(program);
        self.load_checkpoint(&mut state, checkpoint)?;
        control.clear_park();
        self.drive(program, control, state)
            .map_err(ControlError::Stall)
    }

    /// The state [`ShardedEngine::run`] starts from, bundled for the
    /// controlled paths (checkpoints restore over it).
    fn fresh_state<Prog: VertexProgram>(&self, program: &Prog) -> ShardedRunState<Prog::Prop> {
        let config = self.factory.config();
        let num_chips = self.shard.num_chips;
        let fresh_metrics = || Metrics {
            frequency_ghz: config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; config.back_channels],
            ..Metrics::default()
        };
        ShardedRunState {
            properties: self
                .graph
                .vertices()
                .map(|v| program.init_prop(v, self.graph))
                .collect(),
            t_props: vec![program.identity(); self.graph.num_vertices() as usize],
            frontier: program.initial_frontier(self.graph),
            multi: MultiChip {
                chips: (0..num_chips)
                    .map(|_| ScatterPipeline::new(&self.factory))
                    .collect(),
                link: InterChipLink::new(
                    num_chips,
                    self.shard.link_latency,
                    self.shard.link_bandwidth,
                    self.shard.link_capacity,
                ),
                staged: vec![vec![0u64; num_chips]; num_chips],
                wheel: EventWheel::new(num_chips, config.wheel_horizon),
            },
            chip_metrics: (0..num_chips).map(|_| fresh_metrics()).collect(),
            agg: fresh_metrics(),
            cross_chip_packets: 0,
        }
    }

    /// The controlled run loop: [`ShardedEngine::run`]'s loop (serial
    /// drain only) plus cancel checks and boundary parking.
    fn drive<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
        mut st: ShardedRunState<Prog::Prop>,
    ) -> Result<ShardedOutcome<Prog::Prop>, StallDiagnostic>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let config = self.factory.config();
        let m = config.back_channels;
        let num_chips = self.shard.num_chips;
        let graph = self.graph;
        let faults = self.fault_runtime(&st.multi);
        let mut scheduler =
            Scheduler::new().with_fast_forward(self.fast_forward && faults.is_none());

        while !st.frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if st.agg.iterations >= cap {
                    break;
                }
            }
            if control.cancelled() {
                return Ok(ShardedOutcome::Cancelled);
            }
            if control.should_park(st.agg.scatter_cycles + st.agg.apply_cycles) {
                return Ok(ShardedOutcome::Parked(self.save_checkpoint(&st)));
            }
            debug_assert!(
                st.multi.is_drained(),
                "a scatter phase must start from a drained multi-chip composite"
            );

            for &u in &st.frontier {
                let src_chip = self.owner[u.index()];
                for slice in &self.slices {
                    if slice.index != src_chip {
                        st.multi.staged[src_chip][slice.index] += slice.graph.out_degree(u);
                    }
                }
            }
            let staged = st.multi.staged_total();
            st.cross_chip_packets += staged;

            for chip in &mut st.multi.chips {
                chip.front.load_frontier(&st.frontier, &st.properties);
            }

            let iteration_edges: u64 = st.frontier.iter().map(|&v| graph.out_degree(v)).sum();
            let guard = self.stall_guard.unwrap_or_else(|| {
                derived_stall_guard(
                    config,
                    iteration_edges,
                    st.frontier.len() as u64,
                    num_chips as u64,
                    staged,
                ) + self.shard.link_latency
            }) + faults.as_ref().map_or(0, FaultRuntime::guard_bonus);
            scheduler.set_stall_guard(guard);
            let mut chip_cycles = vec![0u64; num_chips];
            let drained = self.drain_serial(
                program,
                &mut st.multi,
                &mut st.t_props,
                &mut st.chip_metrics,
                &mut chip_cycles,
                &mut scheduler,
                Some(control),
                faults.as_ref(),
                st.agg.scatter_cycles,
            );
            let spent = match drained {
                Ok(spent) => spent,
                Err(DrainError::Interrupted { .. }) => return Ok(ShardedOutcome::Cancelled),
                Err(DrainError::Stall(stall)) => {
                    return Err(StallDiagnostic {
                        config: self.factory.config().name.clone(),
                        num_chips,
                        iteration: st.agg.iterations,
                        iteration_edges,
                        staged_packets: staged,
                        stall,
                    })
                }
            };
            st.agg.scatter_cycles += spent;
            for (ci, cycles) in chip_cycles.iter().enumerate() {
                st.chip_metrics[ci].scatter_cycles += *cycles;
            }

            apply_phase(
                program,
                graph,
                &mut st.properties,
                &mut st.t_props,
                &mut st.frontier,
            );
            let mut max_apply = 0u64;
            for (ci, slice) in self.slices.iter().enumerate() {
                let a = apply_cycles(slice.num_owned(), m);
                st.chip_metrics[ci].apply_cycles += a;
                st.chip_metrics[ci].iterations += 1;
                max_apply = max_apply.max(a);
            }
            st.agg.apply_cycles += max_apply;
            st.agg.iterations += 1;
        }

        Ok(ShardedOutcome::Done(finish_result(
            st.agg,
            st.chip_metrics,
            &st.multi,
            st.properties,
            st.cross_chip_packets,
        )))
    }

    /// Serializes a boundary state: identity context (graph hash,
    /// canonical configuration encoding, shard geometry) followed by the
    /// run variables and the full multi-chip composite.
    fn save_checkpoint<P: SnapValue + 'static>(&self, st: &ShardedRunState<P>) -> Checkpoint {
        let mut w = SnapWriter::new();
        w.tag(b"SHRC");
        w.u64(self.graph.content_hash());
        w.u64(content_checksum(
            self.factory.config().canonical_encoding().as_bytes(),
        ));
        w.usize(self.shard.num_chips);
        w.u64(self.shard.link_latency);
        w.usize(self.shard.link_bandwidth);
        w.usize(self.shard.link_capacity);
        st.agg.save(&mut w);
        for chip in &st.chip_metrics {
            chip.save(&mut w);
        }
        w.u64(st.cross_chip_packets);
        w.usize(st.frontier.len());
        for v in &st.frontier {
            w.u32(v.0);
        }
        w.seq(st.properties.iter());
        w.seq(st.t_props.iter());
        st.multi.save(&mut w);
        Checkpoint {
            bytes: w.finish(),
            cycles: st.agg.scatter_cycles + st.agg.apply_cycles,
            iterations: st.agg.iterations,
        }
    }

    /// Restores a checkpoint over a freshly initialized state, verifying
    /// the identity context first.
    fn load_checkpoint<P: SnapValue + 'static>(
        &self,
        st: &mut ShardedRunState<P>,
        checkpoint: &[u8],
    ) -> Result<(), SnapError> {
        let num_v = self.graph.num_vertices() as usize;
        let mut r = SnapReader::open(checkpoint)?;
        r.expect_tag(b"SHRC")?;
        if r.u64()? != self.graph.content_hash() {
            return Err(SnapError::new(
                "checkpoint was taken on a different graph (content hash mismatch)",
            ));
        }
        let live_sum = content_checksum(self.factory.config().canonical_encoding().as_bytes());
        if r.u64()? != live_sum {
            return Err(SnapError::new(
                "checkpoint was taken under a different accelerator configuration",
            ));
        }
        let geometry = (r.usize()?, r.u64()?, r.usize()?, r.usize()?);
        let live = (
            self.shard.num_chips,
            self.shard.link_latency,
            self.shard.link_bandwidth,
            self.shard.link_capacity,
        );
        if geometry != live {
            return Err(SnapError::new(format!(
                "checkpoint shard geometry {geometry:?} does not match engine {live:?}"
            )));
        }
        st.agg.load(&mut r)?;
        for chip in &mut st.chip_metrics {
            chip.load(&mut r)?;
        }
        st.cross_chip_packets = r.u64()?;
        let frontier_len = r.usize()?;
        if frontier_len > num_v {
            return Err(SnapError::new(format!(
                "frontier length {frontier_len} exceeds vertex count {num_v}"
            )));
        }
        st.frontier.clear();
        for _ in 0..frontier_len {
            let raw = r.u32()?;
            if raw as usize >= num_v {
                return Err(SnapError::new(format!(
                    "frontier vertex {raw} out of range (graph has {num_v})"
                )));
            }
            st.frontier.push(VertexId(raw));
        }
        let properties: Vec<P> = r.seq(num_v)?;
        if properties.len() != num_v {
            return Err(SnapError::new(format!(
                "property array length {} does not match vertex count {num_v}",
                properties.len()
            )));
        }
        st.properties = properties;
        let t_props: Vec<P> = r.seq(num_v)?;
        if t_props.len() != num_v {
            return Err(SnapError::new(format!(
                "tProperty array length {} does not match vertex count {num_v}",
                t_props.len()
            )));
        }
        st.t_props = t_props;
        st.multi.load(&mut r)?;
        r.expect_exhausted()
    }
}

/// The live state of one sharded run, bundled so the controlled paths
/// can park it into a checkpoint at a committed iteration boundary and
/// restore it later (`docs/robustness.md`).
struct ShardedRunState<P> {
    properties: Vec<P>,
    t_props: Vec<P>,
    frontier: Vec<VertexId>,
    multi: MultiChip<P>,
    chip_metrics: Vec<Metrics>,
    agg: Metrics,
    cross_chip_packets: u64,
}

/// Final metric harvest and merge, shared by [`ShardedEngine::run`] and
/// the controlled completion path so the two cannot diverge.
fn finish_result<P: Copy + 'static>(
    mut agg: Metrics,
    mut chip_metrics: Vec<Metrics>,
    multi: &MultiChip<P>,
    properties: Vec<P>,
    cross_chip_packets: u64,
) -> ShardedRunResult<P> {
    for (ci, chip) in multi.chips.iter().enumerate() {
        finalize_metrics(&mut chip_metrics[ci], chip);
    }
    for chip in &chip_metrics {
        agg.edges_processed += chip.edges_processed;
        agg.vpe_starvation_cycles += chip.vpe_starvation_cycles;
        for (c, s) in chip.vpe_starvation_per_channel.iter().enumerate() {
            agg.vpe_starvation_per_channel[c] += s;
        }
        agg.offset_conflicts += chip.offset_conflicts;
        agg.offset_net.merge(&chip.offset_net);
        agg.edge_net.merge(&chip.edge_net);
        agg.dataflow_net.merge(&chip.dataflow_net);
        agg.memory.merge(&chip.memory);
    }
    agg.cycles = agg.scatter_cycles + agg.apply_cycles;
    // lint:allow(panic-freedom): infallible: every link constructor installs a stats block
    let link = multi.link.network_stats().expect("links keep stats");
    ShardedRunResult {
        properties,
        metrics: agg,
        chips: chip_metrics,
        cross_chip_packets,
        link,
    }
}

/// The host's available parallelism (the ceiling the shared
/// [`CorePool`] sizes itself from). [`ShardedEngine::set_threads`]`(None)`
/// no longer pins to this number — it leases idle pool workers per
/// drain — but harnesses still report it as the host context for a
/// measurement.
pub fn auto_worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits the global tProperty array into the per-chip owned intervals
/// of `slices` (destination-interval partitions are contiguous, in
/// order, and covering), returning each chip's window plus its base
/// vertex id. Disjointness is what lets chips step concurrently.
fn split_owned_intervals<'t, P>(t_props: &'t mut [P], slices: &[Slice]) -> Vec<(&'t mut [P], u32)> {
    let mut out = Vec::with_capacity(slices.len());
    let mut remaining = t_props;
    let mut consumed = 0u32;
    for slice in slices {
        debug_assert_eq!(
            slice.dst_start, consumed,
            "slices must be contiguous and in order"
        );
        let (mine, rest) = remaining.split_at_mut((slice.dst_end - slice.dst_start) as usize);
        out.push((mine, slice.dst_start));
        remaining = rest;
        consumed = slice.dst_end;
    }
    debug_assert!(
        remaining.is_empty(),
        "slices must cover the whole vertex range"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use higraph_graph::gen::{erdos_renyi, power_law};
    use higraph_vcpm::programs::{Bfs, PageRank, Sssp};
    use higraph_vcpm::reference;

    #[test]
    fn one_chip_is_bit_identical_to_serial() {
        let g = power_law(300, 2700, 2.0, 31, 23);
        let prog = Sssp::from_source(higraph_graph::stats::hub_vertex(&g).expect("non-empty").0);
        let serial = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let sharded = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(1), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(sharded.properties, serial.properties);
        assert_eq!(sharded.metrics, serial.metrics);
        assert_eq!(sharded.chips.len(), 1);
        assert_eq!(sharded.chips[0], serial.metrics);
        assert_eq!(sharded.cross_chip_packets, 0);
        assert_eq!(sharded.link.accepted, 0);
    }

    #[test]
    fn multi_chip_matches_reference_results() {
        let g = erdos_renyi(256, 2048, 31, 29);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        for p in [2usize, 3, 4, 8] {
            let r = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(p), &g)
                .run(&prog)
                .expect("no stall");
            assert_eq!(r.properties, expect.properties, "{p} chips");
            assert_eq!(
                r.metrics.edges_processed, expect.edges_processed,
                "{p} chips"
            );
            assert_eq!(r.num_chips(), p);
        }
    }

    #[test]
    fn cross_chip_traffic_is_delivered_and_counted() {
        let g = power_law(200, 1800, 2.0, 31, 37);
        let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g);
        // one full-frontier iteration: packets == the partition's cut edges
        let r = engine.run(&PageRank::new(1)).expect("no stall");
        assert_eq!(r.cross_chip_packets, engine.cut_edges());
        assert!(r.cross_chip_packets > 0, "4-way partition must cut edges");
        assert_eq!(r.link.delivered, r.cross_chip_packets);
        assert_eq!(r.link.accepted, r.cross_chip_packets);
    }

    #[test]
    fn lockstep_drain_covers_compute_and_link() {
        // With a huge link latency the drain must extend past the slowest
        // chip's compute: communication is simulated, not hand-waved.
        let g = power_law(200, 1800, 2.0, 31, 41);
        let shard = ShardConfig::new(4);
        let slow_link = ShardConfig {
            link_latency: 100_000,
            ..shard
        };
        let fast = ShardedEngine::new(AcceleratorConfig::higraph(), shard, &g)
            .run(&PageRank::new(1))
            .expect("no stall");
        let slow = ShardedEngine::new(AcceleratorConfig::higraph(), slow_link, &g)
            .run(&PageRank::new(1))
            .expect("no stall");
        assert_eq!(fast.properties, slow.properties);
        assert!(
            slow.metrics.scatter_cycles > fast.metrics.scatter_cycles,
            "slow {} vs fast {}",
            slow.metrics.scatter_cycles,
            fast.metrics.scatter_cycles
        );
        assert!(slow.metrics.scatter_cycles > 100_000);
        // compute-only critical path is unchanged by link latency
        assert_eq!(
            slow.max_chip_scatter_cycles(),
            fast.max_chip_scatter_cycles()
        );
    }

    #[test]
    fn aggregate_counters_sum_over_chips() {
        let g = erdos_renyi(192, 1600, 31, 43);
        let r = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(2), &g)
            .run(&Bfs::from_source(0))
            .expect("no stall");
        assert_eq!(
            r.metrics.edges_processed,
            r.chips.iter().map(|c| c.edges_processed).sum::<u64>()
        );
        assert_eq!(
            r.metrics.dataflow_net.delivered,
            r.chips
                .iter()
                .map(|c| c.dataflow_net.delivered)
                .sum::<u64>()
        );
        assert_eq!(
            r.metrics.cycles,
            r.metrics.scatter_cycles + r.metrics.apply_cycles
        );
        assert!(r.cycles_per_edge() > 0.0);
        for chip in &r.chips {
            assert!(chip.scatter_cycles <= r.metrics.scatter_cycles);
        }
    }

    #[test]
    fn per_chip_memory_channels_are_modeled_and_merged() {
        use crate::config::MemoryConfig;
        let g = power_law(300, 2700, 2.0, 31, 53);
        let prog = Sssp::from_source(higraph_graph::stats::hub_vertex(&g).expect("non-empty").0);
        let free = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
        let priced = ShardedEngine::new(cfg, ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(priced.properties, free.properties);
        // each chip owns its channels; the aggregate merges their counters
        let per_chip_misses: u64 = priced.chips.iter().map(|c| c.memory.cache_misses).sum();
        assert!(per_chip_misses > 0);
        assert_eq!(priced.metrics.memory.cache_misses, per_chip_misses);
        assert_eq!(
            priced.metrics.memory.stall_cycles,
            priced
                .chips
                .iter()
                .map(|c| c.memory.stall_cycles)
                .sum::<u64>()
        );
        assert!(priced.metrics.scatter_cycles >= free.metrics.scatter_cycles);
    }

    #[test]
    fn fast_forward_is_bit_identical_across_chips_and_memory() {
        use crate::config::MemoryConfig;
        let g = power_law(300, 2700, 2.0, 31, 61);
        let prog = PageRank::new(2);
        for memory in [None, Some(MemoryConfig::hbm2().with_cache_kb(16))] {
            let mut cfg = AcceleratorConfig::higraph();
            cfg.memory = memory;
            let run = |fast: bool| {
                let mut engine = ShardedEngine::new(cfg.clone(), ShardConfig::new(4), &g);
                engine.set_fast_forward(fast);
                engine.run(&prog).expect("no stall")
            };
            let naive = run(false);
            let fast = run(true);
            assert_eq!(fast.properties, naive.properties);
            assert_eq!(fast.metrics, naive.metrics);
            assert_eq!(fast.chips, naive.chips);
            assert_eq!(fast.link, naive.link);
            assert_eq!(fast.cross_chip_packets, naive.cross_chip_packets);
        }
    }

    #[test]
    fn sharded_stall_guard_override_fails_with_diagnostic() {
        let g = erdos_renyi(128, 1024, 31, 59);
        let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(2), &g);
        engine.set_stall_guard(Some(1));
        let err = engine.run(&Bfs::from_source(0)).expect_err("must stall");
        assert_eq!(err.num_chips, 2);
        assert_eq!(err.stall.limit, 1);
        engine.set_stall_guard(None);
        assert!(engine.run(&Bfs::from_source(0)).is_ok());
    }

    #[test]
    fn controlled_sharded_run_completes_bit_identical() {
        let g = power_law(300, 2700, 2.0, 31, 67);
        let prog = PageRank::new(2);
        let plain = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        let control = RunControl::new();
        let outcome = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g)
            .run_controlled(&prog, &control)
            .expect("no stall");
        match outcome {
            ShardedOutcome::Done(r) => {
                assert_eq!(r.properties, plain.properties);
                assert_eq!(r.metrics, plain.metrics);
                assert_eq!(r.chips, plain.chips);
                assert_eq!(r.link, plain.link);
                assert_eq!(r.cross_chip_packets, plain.cross_chip_packets);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn sharded_park_and_resume_is_bit_identical() {
        let g = power_law(300, 2700, 2.0, 31, 71);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let plain = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(3), &g)
            .run(&prog)
            .expect("no stall");

        let control = RunControl::new();
        control.set_budget_cycles(Some(1));
        let mut engine = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(3), &g);
        let parked = match engine.run_controlled(&prog, &control).expect("no stall") {
            ShardedOutcome::Parked(ck) => ck,
            other => panic!("expected a parked run, got {other:?}"),
        };
        control.set_budget_cycles(None);
        match engine
            .resume_controlled(&prog, &control, &parked.bytes)
            .expect("no stall")
        {
            ShardedOutcome::Done(r) => {
                assert_eq!(r.properties, plain.properties);
                assert_eq!(r.metrics, plain.metrics, "restore must be cycle-exact");
                assert_eq!(r.chips, plain.chips);
                assert_eq!(r.link, plain.link);
                assert_eq!(r.cross_chip_packets, plain.cross_chip_packets);
            }
            other => panic!("expected completion, got {other:?}"),
        }

        // Wrong shard geometry is rejected before any state is touched.
        let err = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(2), &g)
            .resume_controlled(&prog, &control, &parked.bytes)
            .expect_err("must reject");
        assert!(err.to_string().contains("geometry"), "{err}");
    }

    #[test]
    fn sharded_fault_plan_degrades_gracefully() {
        use crate::config::FaultPlan;
        let g = power_law(300, 2700, 2.0, 31, 73);
        let prog = PageRank::new(2);
        let clean = ShardedEngine::new(AcceleratorConfig::higraph(), ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        let mut cfg = AcceleratorConfig::higraph();
        cfg.fault_plan = Some(FaultPlan {
            seed: 3,
            events: 8,
            max_duration: 500,
            horizon: clean.metrics.scatter_cycles.max(1),
        });
        let faulty = ShardedEngine::new(cfg.clone(), ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(faulty.properties, clean.properties);
        assert!(faulty.metrics.scatter_cycles >= clean.metrics.scatter_cycles);
        let again = ShardedEngine::new(cfg, ShardConfig::new(4), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(again.metrics, faulty.metrics);
        assert_eq!(again.link, faulty.link);
    }

    #[test]
    fn invalid_shard_config_rejected() {
        let g = erdos_renyi(64, 256, 15, 47);
        let bad = ShardConfig {
            num_chips: 0,
            ..ShardConfig::new(1)
        };
        assert!(ShardedEngine::try_new(AcceleratorConfig::higraph(), bad, &g).is_err());
        let bad = ShardConfig {
            link_bandwidth: 0,
            ..ShardConfig::new(2)
        };
        assert!(ShardedEngine::try_new(AcceleratorConfig::higraph(), bad, &g).is_err());
    }
}
