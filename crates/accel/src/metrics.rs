//! Execution metrics: the quantities the paper's evaluation reports.
//!
//! # Finiteness
//!
//! Every derived ratio on [`Metrics`] (and [`MemoryMetrics`]) guards its
//! denominator and returns a finite number on degenerate runs — an empty
//! graph, an empty initial frontier, zero processed edges. `repro
//! --json` relies on this: the report writer serializes non-finite
//! values as `null`, which the `--check` perf gate then rejects, so a
//! NaN metric would fail CI rather than silently pass.

use crate::cache::CacheStats;
use higraph_sim::dram::MemoryStats;
use higraph_sim::NetworkStats;

/// Off-chip memory counters of one run (all zero under the default
/// infinite-bandwidth configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryMetrics {
    /// Edge/offset cache line touches served on chip.
    pub cache_hits: u64,
    /// Cache lines fetched from DRAM.
    pub cache_misses: u64,
    /// Pipeline-stage stall cycles waiting on off-chip data, summed over
    /// channels (one blocked channel-cycle = one stall cycle).
    pub stall_cycles: u64,
    /// DRAM channel counters (row-buffer locality lives here).
    pub dram: MemoryStats,
}

impl MemoryMetrics {
    /// Cache hit rate; 0.0 when memory is unmodeled or untouched.
    pub fn cache_hit_rate(&self) -> f64 {
        CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        }
        .hit_rate()
    }

    /// DRAM row-buffer hit rate; 0.0 when memory is unmodeled.
    pub fn row_hit_rate(&self) -> f64 {
        self.dram.row_hit_rate()
    }

    /// Folds `other` into `self` by summing every counter (multi-chip
    /// aggregation).
    pub fn merge(&mut self, other: &MemoryMetrics) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.stall_cycles += other.stall_cycles;
        self.dram.merge(&other.dram);
    }
}

/// Metrics of one accelerator run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Total simulated cycles (scatter + apply, all iterations).
    pub cycles: u64,
    /// Cycles spent in scatter phases only.
    pub scatter_cycles: u64,
    /// Cycles spent in apply phases only.
    pub apply_cycles: u64,
    /// Edge traversals executed (the TEPS numerator).
    pub edges_processed: u64,
    /// VCPM iterations executed.
    pub iterations: u32,
    /// Total vPE starvation cycles (Fig. 10b): scatter cycles in which a
    /// vPE had no input while work was still in flight, summed over vPEs.
    pub vpe_starvation_cycles: u64,
    /// Per-vPE starvation cycles (one entry per back-end channel); sums to
    /// [`Metrics::vpe_starvation_cycles`]. Useful for spotting hot-bank
    /// imbalance.
    pub vpe_starvation_per_channel: Vec<u64>,
    /// Offset Array access conflicts (failed bank-pair claims).
    pub offset_conflicts: u64,
    /// The design's effective clock, GHz (Fig. 4 / Sec. 5.3 model).
    pub frequency_ghz: f64,
    /// Offset-routing fabric statistics.
    pub offset_net: NetworkStats,
    /// Edge-access unit statistics.
    pub edge_net: NetworkStats,
    /// Dataflow-propagation fabric statistics.
    pub dataflow_net: NetworkStats,
    /// Off-chip memory statistics (cache + DRAM); all zero under the
    /// default infinite-bandwidth memory configuration.
    pub memory: MemoryMetrics,
}

impl Metrics {
    /// Throughput in giga-traversed-edges-per-second (the paper's GTEPS,
    /// Fig. 9): edges per cycle × clock (GHz).
    ///
    /// # Example
    ///
    /// ```
    /// use higraph_accel::Metrics;
    ///
    /// let m = Metrics {
    ///     cycles: 1_000,
    ///     edges_processed: 16_000,
    ///     frequency_ghz: 1.0,
    ///     ..Metrics::default()
    /// };
    /// assert!((m.gteps() - 16.0).abs() < 1e-12);
    /// ```
    pub fn gteps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 / self.cycles as f64 * self.frequency_ghz
        }
    }

    /// Wall-clock execution time in nanoseconds under the modeled clock.
    pub fn time_ns(&self) -> f64 {
        if self.frequency_ghz == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.frequency_ghz
        }
    }

    /// Speedup of `self` over `other` (ratio of modeled execution times,
    /// as in Fig. 8).
    ///
    /// Always finite: a comparison involving a degenerate run — zero
    /// modeled time (empty workload) or infinite time (zero clock) —
    /// carries no information and reports 1.0 instead of NaN/∞.
    pub fn speedup_over(&self, other: &Metrics) -> f64 {
        let (mine, theirs) = (self.time_ns(), other.time_ns());
        let degenerate = |t: f64| t == 0.0 || !t.is_finite();
        if degenerate(mine) || degenerate(theirs) {
            1.0
        } else {
            theirs / mine
        }
    }

    /// Mean starvation cycles per vPE.
    pub fn starvation_per_vpe(&self, num_vpes: usize) -> f64 {
        if num_vpes == 0 {
            0.0
        } else {
            self.vpe_starvation_cycles as f64 / num_vpes as f64
        }
    }

    /// Ratio of the most- to least-starved vPE (1.0 = perfectly even);
    /// large values indicate hot destination banks.
    pub fn starvation_imbalance(&self) -> f64 {
        let max = self.vpe_starvation_per_channel.iter().copied().max();
        let min = self.vpe_starvation_per_channel.iter().copied().min();
        match (max, min) {
            (Some(max), Some(min)) if min > 0 => max as f64 / min as f64,
            (Some(max), Some(_)) if max > 0 => f64::INFINITY,
            _ => 1.0,
        }
    }
}

impl higraph_sim::Snapshot for MemoryMetrics {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"MMET");
        w.u64(self.cache_hits);
        w.u64(self.cache_misses);
        w.u64(self.stall_cycles);
        self.dram.save(w);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"MMET")?;
        self.cache_hits = r.u64()?;
        self.cache_misses = r.u64()?;
        self.stall_cycles = r.u64()?;
        self.dram.load(r)?;
        Ok(())
    }
}

impl higraph_sim::Snapshot for Metrics {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"METR");
        w.u64(self.cycles);
        w.u64(self.scatter_cycles);
        w.u64(self.apply_cycles);
        w.u64(self.edges_processed);
        w.u32(self.iterations);
        w.u64(self.vpe_starvation_cycles);
        w.seq(self.vpe_starvation_per_channel.iter());
        w.u64(self.offset_conflicts);
        w.f64(self.frequency_ghz);
        self.offset_net.save(w);
        self.edge_net.save(w);
        self.dataflow_net.save(w);
        self.memory.save(w);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"METR")?;
        self.cycles = r.u64()?;
        self.scatter_cycles = r.u64()?;
        self.apply_cycles = r.u64()?;
        self.edges_processed = r.u64()?;
        self.iterations = r.u32()?;
        self.vpe_starvation_cycles = r.u64()?;
        self.vpe_starvation_per_channel = r.seq(u32::MAX as usize)?;
        self.offset_conflicts = r.u64()?;
        self.frequency_ghz = r.f64()?;
        self.offset_net.load(r)?;
        self.edge_net.load(r)?;
        self.dataflow_net.load(r)?;
        self.memory.load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gteps_zero_cycles() {
        assert_eq!(Metrics::default().gteps(), 0.0);
    }

    #[test]
    fn speedup_uses_modeled_time() {
        let fast = Metrics {
            cycles: 500,
            frequency_ghz: 1.0,
            ..Metrics::default()
        };
        let slow = Metrics {
            cycles: 1000,
            frequency_ghz: 1.0,
            ..Metrics::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        // lower clock hurts even at equal cycles
        let derated = Metrics {
            cycles: 500,
            frequency_ghz: 0.5,
            ..Metrics::default()
        };
        assert!((fast.speedup_over(&derated) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_metrics_stay_finite() {
        // the degenerate run (empty graph / empty frontier): every
        // derived quantity must be finite so `--json` never emits null
        let m = Metrics::default();
        assert_eq!(m.gteps(), 0.0);
        assert!(m.speedup_over(&Metrics::default()).is_finite());
        assert_eq!(m.speedup_over(&Metrics::default()), 1.0);
        // mixed zero/non-zero and zero-clock comparisons stay finite too
        let real = Metrics {
            cycles: 1000,
            frequency_ghz: 1.0,
            ..Metrics::default()
        };
        assert_eq!(m.speedup_over(&real), 1.0); // zero-time self
        assert_eq!(real.speedup_over(&m), 1.0); // zero-time other (0/1000)
        let unclocked = Metrics {
            cycles: 1000,
            frequency_ghz: 0.0, // time_ns() == ∞
            ..Metrics::default()
        };
        assert_eq!(real.speedup_over(&unclocked), 1.0);
        assert_eq!(unclocked.speedup_over(&real), 1.0);
        assert!(unclocked.speedup_over(&unclocked).is_finite());
        assert_eq!(m.starvation_per_vpe(0), 0.0);
        assert_eq!(m.starvation_imbalance(), 1.0);
        assert_eq!(m.memory.cache_hit_rate(), 0.0);
        assert_eq!(m.memory.row_hit_rate(), 0.0);
    }

    #[test]
    fn memory_metrics_merge_and_rates() {
        let mut a = MemoryMetrics {
            cache_hits: 6,
            cache_misses: 2,
            stall_cycles: 10,
            ..MemoryMetrics::default()
        };
        assert!((a.cache_hit_rate() - 0.75).abs() < 1e-12);
        let b = a;
        a.merge(&b);
        assert_eq!(a.cache_hits, 12);
        assert_eq!(a.stall_cycles, 20);
    }

    #[test]
    fn starvation_per_vpe() {
        let m = Metrics {
            vpe_starvation_cycles: 640,
            ..Metrics::default()
        };
        assert!((m.starvation_per_vpe(32) - 20.0).abs() < 1e-12);
        assert_eq!(m.starvation_per_vpe(0), 0.0);
    }
}
