//! Execution metrics: the quantities the paper's evaluation reports.

use higraph_sim::NetworkStats;

/// Metrics of one accelerator run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Total simulated cycles (scatter + apply, all iterations).
    pub cycles: u64,
    /// Cycles spent in scatter phases only.
    pub scatter_cycles: u64,
    /// Cycles spent in apply phases only.
    pub apply_cycles: u64,
    /// Edge traversals executed (the TEPS numerator).
    pub edges_processed: u64,
    /// VCPM iterations executed.
    pub iterations: u32,
    /// Total vPE starvation cycles (Fig. 10b): scatter cycles in which a
    /// vPE had no input while work was still in flight, summed over vPEs.
    pub vpe_starvation_cycles: u64,
    /// Per-vPE starvation cycles (one entry per back-end channel); sums to
    /// [`Metrics::vpe_starvation_cycles`]. Useful for spotting hot-bank
    /// imbalance.
    pub vpe_starvation_per_channel: Vec<u64>,
    /// Offset Array access conflicts (failed bank-pair claims).
    pub offset_conflicts: u64,
    /// The design's effective clock, GHz (Fig. 4 / Sec. 5.3 model).
    pub frequency_ghz: f64,
    /// Offset-routing fabric statistics.
    pub offset_net: NetworkStats,
    /// Edge-access unit statistics.
    pub edge_net: NetworkStats,
    /// Dataflow-propagation fabric statistics.
    pub dataflow_net: NetworkStats,
}

impl Metrics {
    /// Throughput in giga-traversed-edges-per-second (the paper's GTEPS,
    /// Fig. 9): edges per cycle × clock (GHz).
    ///
    /// # Example
    ///
    /// ```
    /// use higraph_accel::Metrics;
    ///
    /// let m = Metrics {
    ///     cycles: 1_000,
    ///     edges_processed: 16_000,
    ///     frequency_ghz: 1.0,
    ///     ..Metrics::default()
    /// };
    /// assert!((m.gteps() - 16.0).abs() < 1e-12);
    /// ```
    pub fn gteps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 / self.cycles as f64 * self.frequency_ghz
        }
    }

    /// Wall-clock execution time in nanoseconds under the modeled clock.
    pub fn time_ns(&self) -> f64 {
        if self.frequency_ghz == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.frequency_ghz
        }
    }

    /// Speedup of `self` over `other` (ratio of modeled execution times,
    /// as in Fig. 8).
    pub fn speedup_over(&self, other: &Metrics) -> f64 {
        other.time_ns() / self.time_ns()
    }

    /// Mean starvation cycles per vPE.
    pub fn starvation_per_vpe(&self, num_vpes: usize) -> f64 {
        if num_vpes == 0 {
            0.0
        } else {
            self.vpe_starvation_cycles as f64 / num_vpes as f64
        }
    }

    /// Ratio of the most- to least-starved vPE (1.0 = perfectly even);
    /// large values indicate hot destination banks.
    pub fn starvation_imbalance(&self) -> f64 {
        let max = self.vpe_starvation_per_channel.iter().copied().max();
        let min = self.vpe_starvation_per_channel.iter().copied().min();
        match (max, min) {
            (Some(max), Some(min)) if min > 0 => max as f64 / min as f64,
            (Some(max), Some(_)) if max > 0 => f64::INFINITY,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gteps_zero_cycles() {
        assert_eq!(Metrics::default().gteps(), 0.0);
    }

    #[test]
    fn speedup_uses_modeled_time() {
        let fast = Metrics {
            cycles: 500,
            frequency_ghz: 1.0,
            ..Metrics::default()
        };
        let slow = Metrics {
            cycles: 1000,
            frequency_ghz: 1.0,
            ..Metrics::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        // lower clock hurts even at equal cycles
        let derated = Metrics {
            cycles: 500,
            frequency_ghz: 0.5,
            ..Metrics::default()
        };
        assert!((fast.speedup_over(&derated) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_per_vpe() {
        let m = Metrics {
            vpe_starvation_cycles: 640,
            ..Metrics::default()
        };
        assert!((m.starvation_per_vpe(32) - 20.0).abs() < 1e-12);
        assert_eq!(m.starvation_per_vpe(0), 0.0);
    }
}
