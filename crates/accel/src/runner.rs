//! Parallel batch execution of accelerator simulations.
//!
//! A single [`Engine::run`] models one accelerator on one workload; the
//! paper's evaluation — and any serving deployment of the model — instead
//! sweeps whole *batches* of (graph × program × config) points: the Fig. 8
//! design comparison is a 4 × 6 × 3 sweep, Fig. 10 a 4 × 4 ablation grid,
//! the buffer/radix studies more still. Every point is an independent
//! deterministic simulation, so the batch is embarrassingly parallel.
//!
//! [`BatchRunner`] executes such batches through the process-wide
//! work-stealing [`CorePool`] and reports aggregate throughput.
//! Parallelism changes *only* wall-clock time: each simulation is
//! deterministic and seeded by its own inputs, so results are
//! bit-identical to running the same jobs serially through
//! [`Engine::run`] — `tests/batch_runner.rs` asserts this. Sharded jobs
//! compose with the batch: their lock-step drains lease whatever pool
//! workers the batch leaves idle (`docs/performance.md`), falling back
//! to the serial drain — bit-identically — when the host is saturated.
//!
//! Sliced large-graph schedules ([`Engine::run_sliced`], Sec. 5.3) ride
//! the same path through [`RunMode::Sliced`].
//!
//! # Example
//!
//! ```
//! use higraph_accel::{AcceleratorConfig, BatchJob, BatchRunner};
//! use higraph_graph::gen::erdos_renyi;
//! use higraph_vcpm::programs::Bfs;
//!
//! let graph = erdos_renyi(128, 1024, 31, 1);
//! let jobs: Vec<_> = [AcceleratorConfig::higraph(), AcceleratorConfig::graphdyns()]
//!     .into_iter()
//!     .map(|config| BatchJob::new(&config.name.clone(), &graph, Bfs::from_source(0), config))
//!     .collect();
//! let (results, report) = BatchRunner::parallel().run(jobs);
//! assert_eq!(results.len(), 2);
//! assert_eq!(report.jobs, 2);
//! assert!(report.total_edges_processed > 0);
//! ```

use crate::config::AcceleratorConfig;
use crate::engine::{Engine, StallDiagnostic};
use crate::metrics::Metrics;
use crate::sharded::{ShardConfig, ShardedEngine};
use higraph_graph::Csr;
use higraph_pool::CorePool;
use higraph_vcpm::VertexProgram;
use std::fmt;
// lint:allow(determinism): wall-clock only feeds host-side BatchReport throughput; simulated state never reads it
use std::time::Instant;

/// Why one batch entry failed while the rest of the batch ran on.
///
/// Construction-time validation failures (a zero buffer capacity, a
/// non-power-of-two channel count, a bad memory geometry…) fail the
/// entry exactly like a runtime stall does, instead of panicking and
/// aborting the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The accelerator or shard configuration failed validation; the
    /// entry never simulated.
    Config(String),
    /// The simulation stalled (deadlock/livelock under backpressure).
    Stall(StallDiagnostic),
}

impl BatchError {
    /// The stall diagnostic, when the entry failed at runtime.
    pub fn stall(&self) -> Option<&StallDiagnostic> {
        match self {
            BatchError::Stall(diagnostic) => Some(diagnostic),
            BatchError::Config(_) => None,
        }
    }
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Config(message) => write!(f, "invalid configuration: {message}"),
            BatchError::Stall(diagnostic) => diagnostic.fmt(f),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Config(_) => None,
            BatchError::Stall(diagnostic) => Some(diagnostic),
        }
    }
}

impl From<StallDiagnostic> for BatchError {
    fn from(diagnostic: StallDiagnostic) -> Self {
        BatchError::Stall(diagnostic)
    }
}

/// How one batched simulation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The whole graph resides on chip ([`Engine::run`]).
    Whole,
    /// The Sec. 5.3 large-graph schedule ([`Engine::run_sliced`]).
    Sliced {
        /// Destination-interval slice count (must be positive).
        num_slices: usize,
        /// Off-chip bandwidth for slice replacement, bytes per cycle.
        memory_bytes_per_cycle: u64,
    },
    /// Sharded multi-chip execution ([`ShardedEngine::run`]).
    Sharded {
        /// Chip count and inter-chip link model.
        shard: ShardConfig,
    },
}

/// One (graph × program × config) simulation in a batch.
#[derive(Debug, Clone)]
pub struct BatchJob<'g, Prog> {
    /// Label carried through to the result (design name, sweep point…).
    pub label: String,
    /// The input graph.
    pub graph: &'g Csr,
    /// The vertex program to execute.
    pub program: Prog,
    /// The accelerator design point.
    pub config: AcceleratorConfig,
    /// Whole-graph or sliced execution.
    pub mode: RunMode,
    /// Optional fixed stall guard (cycles per scatter phase) instead of
    /// the workload-derived one; bounds how long a mis-sized design
    /// point may simulate before failing its entry.
    pub stall_guard: Option<u64>,
}

impl<'g, Prog> BatchJob<'g, Prog> {
    /// A whole-graph job.
    pub fn new(label: &str, graph: &'g Csr, program: Prog, config: AcceleratorConfig) -> Self {
        BatchJob {
            label: label.to_string(),
            graph,
            program,
            config,
            mode: RunMode::Whole,
            stall_guard: None,
        }
    }

    /// Bounds this job's per-scatter-phase cycle budget; beyond it the
    /// entry fails with a [`StallDiagnostic`] instead of simulating on.
    pub fn with_stall_guard(mut self, guard: u64) -> Self {
        self.stall_guard = Some(guard);
        self
    }

    /// Switches this job to the sliced large-graph schedule.
    pub fn sliced(mut self, num_slices: usize, memory_bytes_per_cycle: u64) -> Self {
        self.mode = RunMode::Sliced {
            num_slices,
            memory_bytes_per_cycle,
        };
        self
    }

    /// Switches this job to sharded multi-chip execution.
    pub fn sharded(mut self, shard: ShardConfig) -> Self {
        self.mode = RunMode::Sharded { shard };
        self
    }
}

/// Timing detail only sliced runs produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicedTiming {
    /// Slices per iteration.
    pub num_slices: usize,
    /// Exposed replacement cycles, single-buffered.
    pub swap_cycles_sequential: u64,
    /// Exposed replacement cycles, double-buffered.
    pub swap_cycles_overlapped: u64,
}

/// Detail only sharded multi-chip runs produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedTiming {
    /// Chips the job executed on.
    pub num_chips: usize,
    /// Update packets that crossed the inter-chip link.
    pub cross_chip_packets: u64,
    /// Per-chip scatter+apply cycle totals, indexed by chip.
    pub per_chip_cycles: Vec<u64>,
}

/// Result of one batched simulation.
#[derive(Debug, Clone)]
pub struct BatchResult<P> {
    /// The job's label.
    pub label: String,
    /// Final Property Array — bit-identical to a serial [`Engine::run`]
    /// (or [`Engine::run_sliced`] / [`ShardedEngine::run`]) of the same
    /// job. Empty when the entry failed (see [`BatchResult::error`]).
    pub properties: Vec<P>,
    /// Performance metrics of the simulated accelerator (the aggregate
    /// critical-path metrics for sharded jobs); default-zero when the
    /// entry failed.
    pub metrics: Metrics,
    /// Slice-replacement timing for [`RunMode::Sliced`] jobs.
    pub sliced: Option<SlicedTiming>,
    /// Multi-chip detail for [`RunMode::Sharded`] jobs.
    pub sharded: Option<ShardedTiming>,
    /// Why this entry failed, if it did: an invalid configuration or a
    /// runtime stall. A bad design point fails its own entry; the rest
    /// of the batch runs to completion.
    pub error: Option<BatchError>,
}

impl<P> BatchResult<P> {
    /// Whether this entry simulated to completion.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Aggregate throughput of one batch execution.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Number of simulations executed.
    pub jobs: usize,
    /// Sum of edge traversals across all simulations.
    pub total_edges_processed: u64,
    /// Sum of simulated cycles across all simulations.
    pub total_simulated_cycles: u64,
    /// Sum of modeled execution time across all simulations, ns.
    pub total_simulated_ns: f64,
    /// Entries that failed with a stall diagnostic (their metrics are
    /// excluded from the totals above).
    pub failed_jobs: usize,
    /// Host wall-clock time for the whole batch, seconds.
    pub wall_seconds: f64,
    /// Worker threads available to the runner (1 when serial).
    pub workers: usize,
}

impl BatchReport {
    /// Aggregate modeled throughput: total edges over total modeled time
    /// (GTEPS), i.e. the batch viewed as one long accelerator run.
    pub fn aggregate_gteps(&self) -> f64 {
        if self.total_simulated_ns == 0.0 {
            0.0
        } else {
            self.total_edges_processed as f64 / self.total_simulated_ns
        }
    }

    /// Host-side simulation rate: simulations completed per wall second.
    pub fn sims_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            0.0
        } else {
            self.jobs as f64 / self.wall_seconds
        }
    }

    /// Host-side edge-traversal simulation rate, millions per wall second.
    pub fn simulated_meps(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            0.0
        } else {
            self.total_edges_processed as f64 / self.wall_seconds / 1e6
        }
    }
}

/// Executes batches of independent simulations, serially or in parallel.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    parallel: bool,
}

impl BatchRunner {
    /// A runner that spreads jobs across all available cores.
    pub fn parallel() -> Self {
        BatchRunner { parallel: true }
    }

    /// A runner that executes jobs one by one on the calling thread
    /// (reference path for the bit-identity tests, and for callers that
    /// already parallelize at a higher level).
    pub fn serial() -> Self {
        BatchRunner { parallel: false }
    }

    /// Worker threads this runner will use: the pool's resident workers
    /// plus the submitting thread, which always participates.
    pub fn workers(&self) -> usize {
        if self.parallel {
            CorePool::global().workers() + 1
        } else {
            1
        }
    }

    /// Executes a typed batch and returns per-job results (in job order)
    /// plus the aggregate report.
    ///
    /// A job with an invalid configuration fails its own entry with
    /// [`BatchError::Config`] — sweeps over generated design points
    /// (buffer sizes down to zero, arbitrary channel geometries) lose
    /// one cell, not the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if a sliced job has zero slices — the slice count is
    /// harness-controlled, not part of the swept design space.
    pub fn run<Prog>(
        &self,
        jobs: Vec<BatchJob<'_, Prog>>,
    ) -> (Vec<BatchResult<Prog::Prop>>, BatchReport)
    where
        Prog: VertexProgram + Sync,
        Prog::Prop: Send,
    {
        // lint:allow(determinism): wall-clock only feeds host-side BatchReport throughput; simulated state never reads it
        let started = Instant::now();
        let results = self.execute(&jobs, run_one);
        let mut report = self.summarize(
            results.iter().filter(|r| r.is_ok()).map(|r| &r.metrics),
            started,
        );
        report.jobs = results.len();
        report.failed_jobs = results.iter().filter(|r| !r.is_ok()).count();
        (results, report)
    }

    /// The untyped execution primitive: applies `work` to every job,
    /// in parallel when the runner is parallel, preserving job order.
    ///
    /// The figure sweeps in `higraph-bench` run on this directly — their
    /// result rows are not property arrays, but the execution layer is
    /// the same one the typed [`BatchRunner::run`] uses.
    pub fn execute<J, R, F>(&self, jobs: &[J], work: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        if self.parallel && jobs.len() > 1 {
            CorePool::global().run_ordered(jobs.len(), |i| work(&jobs[i]))
        } else {
            jobs.iter().map(work).collect()
        }
    }

    /// Builds the aggregate report for a set of per-job metrics.
    pub fn summarize<'m>(
        &self,
        metrics: impl Iterator<Item = &'m Metrics>,
        // lint:allow(determinism): wall-clock only feeds host-side BatchReport throughput; simulated state never reads it
        started: Instant,
    ) -> BatchReport {
        let mut report = BatchReport {
            jobs: 0,
            total_edges_processed: 0,
            total_simulated_cycles: 0,
            total_simulated_ns: 0.0,
            failed_jobs: 0,
            wall_seconds: 0.0,
            workers: self.workers(),
        };
        for m in metrics {
            report.jobs += 1;
            report.total_edges_processed += m.edges_processed;
            report.total_simulated_cycles += m.cycles;
            report.total_simulated_ns += m.time_ns();
        }
        report.wall_seconds = started.elapsed().as_secs_f64();
        report
    }
}

fn run_one<Prog>(job: &BatchJob<'_, Prog>) -> BatchResult<Prog::Prop>
where
    Prog: VertexProgram + Sync,
    Prog::Prop: Send,
{
    let outcome = (|| match job.mode {
        RunMode::Whole => {
            let mut engine =
                Engine::try_new(job.config.clone(), job.graph).map_err(BatchError::Config)?;
            engine.set_stall_guard(job.stall_guard);
            let r = engine.run(&job.program)?;
            Ok(BatchResult {
                label: job.label.clone(),
                properties: r.properties,
                metrics: r.metrics,
                sliced: None,
                sharded: None,
                error: None,
            })
        }
        RunMode::Sliced {
            num_slices,
            memory_bytes_per_cycle,
        } => {
            let mut engine =
                Engine::try_new(job.config.clone(), job.graph).map_err(BatchError::Config)?;
            engine.set_stall_guard(job.stall_guard);
            let r = engine.run_sliced(&job.program, num_slices, memory_bytes_per_cycle)?;
            Ok(BatchResult {
                label: job.label.clone(),
                properties: r.properties,
                metrics: r.metrics,
                sliced: Some(SlicedTiming {
                    num_slices: r.num_slices,
                    swap_cycles_sequential: r.swap_cycles_sequential,
                    swap_cycles_overlapped: r.swap_cycles_overlapped,
                }),
                sharded: None,
                error: None,
            })
        }
        RunMode::Sharded { shard } => {
            let mut engine = ShardedEngine::try_new(job.config.clone(), shard, job.graph)
                .map_err(BatchError::Config)?;
            engine.set_stall_guard(job.stall_guard);
            // Default (auto) threading: each lock-step drain leases
            // whatever pool workers the batch leaves idle, so batch- and
            // chip-level parallelism compose instead of oversubscribing.
            // Results are bit-identical for any worker count.
            let r = engine.run(&job.program)?;
            Ok(BatchResult {
                label: job.label.clone(),
                properties: r.properties,
                sliced: None,
                sharded: Some(ShardedTiming {
                    num_chips: r.chips.len(),
                    cross_chip_packets: r.cross_chip_packets,
                    per_chip_cycles: r.chips.iter().map(|c| c.cycles).collect(),
                }),
                metrics: r.metrics,
                error: None,
            })
        }
    })();
    outcome.unwrap_or_else(|e: BatchError| BatchResult {
        label: job.label.clone(),
        properties: Vec::new(),
        metrics: Metrics::default(),
        sliced: None,
        sharded: None,
        error: Some(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use higraph_graph::gen::{erdos_renyi, power_law};
    use higraph_vcpm::programs::{Bfs, PageRank};

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let g = erdos_renyi(128, 1024, 31, 2);
        let make_jobs = || {
            vec![
                BatchJob::new("hi", &g, Bfs::from_source(0), AcceleratorConfig::higraph()),
                BatchJob::new(
                    "mini",
                    &g,
                    Bfs::from_source(0),
                    AcceleratorConfig::higraph_mini(),
                ),
                BatchJob::new(
                    "gd",
                    &g,
                    Bfs::from_source(0),
                    AcceleratorConfig::graphdyns(),
                ),
                BatchJob::new(
                    "hi16",
                    &g,
                    Bfs::from_source(0),
                    AcceleratorConfig::higraph().scaled_to(16),
                ),
            ]
        };
        let (par, _) = BatchRunner::parallel().run(make_jobs());
        let (ser, _) = BatchRunner::serial().run(make_jobs());
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.properties, s.properties, "{}", p.label);
            assert_eq!(p.metrics, s.metrics, "{}", p.label);
        }
    }

    #[test]
    fn sliced_jobs_ride_the_batch_path() {
        let g = power_law(300, 2400, 2.0, 31, 5);
        let jobs = vec![
            BatchJob::new("whole", &g, PageRank::new(3), AcceleratorConfig::higraph()),
            BatchJob::new("sliced", &g, PageRank::new(3), AcceleratorConfig::higraph())
                .sliced(3, 64),
        ];
        let (results, report) = BatchRunner::parallel().run(jobs);
        assert_eq!(report.jobs, 2);
        assert_eq!(results[0].properties, results[1].properties);
        assert!(results[0].sliced.is_none());
        let t = results[1].sliced.expect("sliced timing");
        assert_eq!(t.num_slices, 3);
        assert!(t.swap_cycles_overlapped <= t.swap_cycles_sequential);
    }

    #[test]
    fn sharded_jobs_ride_the_batch_path() {
        let g = power_law(320, 2700, 2.0, 31, 9);
        let jobs = vec![
            BatchJob::new("serial", &g, PageRank::new(3), AcceleratorConfig::higraph()),
            BatchJob::new("p4", &g, PageRank::new(3), AcceleratorConfig::higraph())
                .sharded(crate::sharded::ShardConfig::new(4)),
        ];
        let (results, report) = BatchRunner::parallel().run(jobs);
        assert_eq!(report.jobs, 2);
        assert_eq!(results[0].properties, results[1].properties);
        assert!(results[0].sharded.is_none());
        let t = results[1].sharded.as_ref().expect("sharded timing");
        assert_eq!(t.num_chips, 4);
        assert_eq!(t.per_chip_cycles.len(), 4);
        assert!(t.cross_chip_packets > 0);
    }

    #[test]
    fn report_aggregates_across_jobs() {
        let g = erdos_renyi(64, 512, 15, 7);
        let jobs = vec![
            BatchJob::new("a", &g, Bfs::from_source(0), AcceleratorConfig::higraph()),
            BatchJob::new("b", &g, Bfs::from_source(1), AcceleratorConfig::higraph()),
        ];
        let (results, report) = BatchRunner::parallel().run(jobs);
        assert_eq!(report.jobs, 2);
        assert_eq!(
            report.total_edges_processed,
            results
                .iter()
                .map(|r| r.metrics.edges_processed)
                .sum::<u64>()
        );
        assert_eq!(
            report.total_simulated_cycles,
            results.iter().map(|r| r.metrics.cycles).sum::<u64>()
        );
        assert!(report.aggregate_gteps() > 0.0);
        assert!(report.wall_seconds >= 0.0);
        assert!(report.workers >= 1);
    }

    #[test]
    fn execute_preserves_job_order() {
        let runner = BatchRunner::parallel();
        let jobs: Vec<u64> = (0..100).collect();
        let out = runner.execute(&jobs, |&j| j * 3);
        assert_eq!(out, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }
}
