//! The Edge Array access unit (Fig. 3 ② / Sec. 4.2).
//!
//! Two implementations:
//!
//! * [`EdgeAccess::Mdp`] — the paper's range-splitting MDP-network plus
//!   per-output Dispatchers (Opt-E). Each dispatcher owns a private group
//!   of consecutive edge banks, so once a range reaches its output it
//!   issues all of its bank reads in one cycle with no cross-channel
//!   conflicts.
//! * [`EdgeAccess::Direct`] — the baseline: replayed ranges wait in
//!   per-channel queues and arbitrate for the edge banks directly. A range
//!   needs *all* of its banks in the same cycle; overlapping requests from
//!   other channels stall it (the datapath conflict of Fig. 3 ②).

use higraph_mdp::{Dispatcher, EdgeRange, RangeMdpNetwork, Topology};
use higraph_sim::{BankPorts, ClockedComponent, Fifo, NetworkStats};

/// One edge read issued to a bank this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRead<P> {
    /// Edge bank (equals the back-end channel of the ePE that receives
    /// the edge).
    pub bank: usize,
    /// Global Edge Array index to read.
    pub edge_index: u64,
    /// Payload carried from the front-end (source vertex property).
    pub payload: P,
}

/// The Edge Array access unit.
#[derive(Debug, Clone)]
pub enum EdgeAccess<P> {
    /// Range-splitting MDP-network + dispatchers (Opt-E).
    Mdp {
        /// The range network (front-end channels wide).
        net: RangeMdpNetwork<P>,
        /// Terminal dispatcher shared across outputs (stateless).
        dispatcher: Dispatcher,
        /// Ranges each dispatcher may pop per cycle (final-stage read
        /// ports; 2 for the paper's 2W2R modules).
        read_ports: usize,
        /// Per-bank used-this-output scratch, reused every issue call
        /// (hot path: no per-cycle allocation).
        used: Vec<bool>,
    },
    /// Direct bank arbitration (baseline).
    Direct {
        /// Per-front-end-channel request queues.
        queues: Vec<Fifo<EdgeRange<P>>>,
        /// Number of edge banks.
        num_banks: usize,
        /// Rotating arbitration pointer.
        next: usize,
        /// Aggregate statistics.
        stats: NetworkStats,
        /// Per-cycle bank-port scratch, reset every issue call.
        ports: BankPorts,
    },
}

impl<P: Copy> EdgeAccess<P> {
    /// Builds the MDP variant: `front_channels`-wide fabric over
    /// `num_banks` banks, `capacity` entries per stage FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the validated-config invariants don't hold
    /// (`front_channels` a power of `radix`, `num_banks` a multiple).
    pub fn new_mdp(
        front_channels: usize,
        num_banks: usize,
        capacity: usize,
        radix: usize,
        read_ports: usize,
    ) -> Self {
        let topo = Topology::new_mixed(front_channels, radix)
            // lint:allow(panic-freedom): infallible: try_new validated the power-of-two channel count
            .expect("validated config guarantees power-of-two front channels");
        EdgeAccess::Mdp {
            net: RangeMdpNetwork::new(topo, num_banks, capacity)
                // lint:allow(panic-freedom): infallible: try_new validated bank/channel divisibility
                .expect("validated config guarantees bank/channel divisibility"),
            dispatcher: Dispatcher::new(num_banks),
            read_ports: read_ports.max(1),
            used: vec![false; num_banks],
        }
    }

    /// Builds the direct-arbitration variant with `capacity`-entry queues.
    pub fn new_direct(front_channels: usize, num_banks: usize, capacity: usize) -> Self {
        EdgeAccess::Direct {
            queues: (0..front_channels).map(|_| Fifo::new(capacity)).collect(),
            num_banks,
            next: 0,
            stats: NetworkStats::new(),
            ports: BankPorts::new(num_banks),
        }
    }

    /// Whether channel `ch` can accept `range` this cycle.
    pub fn can_accept(&self, ch: usize, range: &EdgeRange<P>) -> bool {
        match self {
            EdgeAccess::Mdp { net, .. } => net.can_accept(ch, range),
            EdgeAccess::Direct { queues, .. } => !queues[ch].is_full(),
        }
    }

    /// Offers `range` at channel `ch`.
    ///
    /// # Errors
    ///
    /// Returns the range back if the unit cannot accept it this cycle.
    pub fn push(&mut self, ch: usize, range: EdgeRange<P>) -> Result<(), EdgeRange<P>> {
        match self {
            EdgeAccess::Mdp { net, .. } => net.push(ch, range),
            EdgeAccess::Direct { queues, stats, .. } => match queues[ch].push(range) {
                Ok(()) => {
                    stats.accepted += 1;
                    Ok(())
                }
                Err(r) => {
                    stats.rejected += 1;
                    Err(r)
                }
            },
        }
    }

    /// Issues this cycle's bank reads. `epe_has_space[b]` reports whether
    /// the ePE queue behind bank `b` can take one more edge; every bank
    /// issues at most one read per cycle.
    ///
    /// Convenience wrapper over [`EdgeAccess::issue_reads_into`] that
    /// allocates the result vector; the per-cycle hot path hands in a
    /// reusable buffer instead.
    pub fn issue_reads(&mut self, epe_has_space: &[bool]) -> Vec<BankRead<P>> {
        let mut reads = Vec::new();
        self.issue_reads_into(epe_has_space, &mut reads);
        reads
    }

    /// Issues this cycle's bank reads into `reads` (cleared first) —
    /// the allocation-free twin of [`EdgeAccess::issue_reads`].
    pub fn issue_reads_into(&mut self, epe_has_space: &[bool], reads: &mut Vec<BankRead<P>>) {
        reads.clear();
        match self {
            EdgeAccess::Mdp {
                net,
                dispatcher,
                read_ports,
                used,
            } => {
                for o in 0..net.num_channels() {
                    // A dispatcher's banks are private to it, so only the
                    // ePE queues (and intra-group bank ports) gate the
                    // issue. The final stage is a 2W2R module, so up to
                    // `read_ports` ranges per output can issue per cycle
                    // when their bank sets are disjoint.
                    used.iter_mut().for_each(|u| *u = false);
                    for _read_port in 0..*read_ports {
                        let Some(range) = net.peek(o) else { break };
                        let ok = dispatcher
                            .expand(range)
                            .all(|(bank, _)| epe_has_space[bank] && !used[bank]);
                        if !ok {
                            break;
                        }
                        // lint:allow(panic-freedom): infallible: the pop follows a successful peek on the same queue this cycle
                        let range = net.pop(o).expect("peeked");
                        reads.extend(dispatcher.expand(&range).map(|(bank, edge_index)| {
                            used[bank] = true;
                            BankRead {
                                bank,
                                edge_index,
                                payload: range.payload,
                            }
                        }));
                    }
                }
            }
            EdgeAccess::Direct {
                queues,
                num_banks,
                next,
                stats,
                ports,
            } => {
                ports.reset();
                let n = queues.len();
                for off in 0..n {
                    let ch = (*next + off) % n;
                    let Some(range) = queues[ch].peek() else {
                        continue;
                    };
                    let first = (range.off % *num_banks as u64) as usize;
                    let row = range.off / *num_banks as u64;
                    let banks = first..first + range.len as usize;
                    // The whole range must win all its banks and have ePE
                    // space; otherwise the head stalls (datapath conflict).
                    // Each bank read targets a distinct row, so banks are
                    // exclusive per cycle (no same-address sharing here).
                    // Like the offset arbitration, this is a centralized
                    // priority chain: the first blocked claim stops grant
                    // propagation for the cycle.
                    let ok = banks.clone().all(|b| ports.is_free(b) && epe_has_space[b]);
                    if !ok {
                        stats.hol_blocked += 1;
                        break;
                    }
                    for b in banks {
                        let claimed = ports.try_claim(b, row);
                        debug_assert!(claimed);
                    }
                    // lint:allow(panic-freedom): infallible: the pop follows a successful peek on the same queue this cycle
                    let range = queues[ch].pop().expect("peeked");
                    stats.delivered += 1;
                    for k in 0..u64::from(range.len) {
                        let idx = range.off + k;
                        reads.push(BankRead {
                            bank: (idx % *num_banks as u64) as usize,
                            edge_index: idx,
                            payload: range.payload,
                        });
                    }
                }
                *next = (*next + 1) % n;
            }
        }
    }

    /// Advances internal state one cycle.
    pub fn tick(&mut self) {
        match self {
            EdgeAccess::Mdp { net, .. } => net.tick(),
            EdgeAccess::Direct { stats, .. } => stats.cycles += 1,
        }
    }

    /// Commits the per-cycle effect of [`EdgeAccess::issue_reads`] over
    /// `cycles` empty-unit cycles: the direct variant's arbitration
    /// pointer rotates every call even when nothing issues (the MDP
    /// variant's empty issue path is pure).
    pub(crate) fn commit_idle_issue(&mut self, cycles: u64) {
        if let EdgeAccess::Direct { queues, next, .. } = self {
            let n = queues.len();
            *next = (*next + (cycles % n as u64) as usize) % n;
        }
    }

    /// Whether any ranges are waiting or in flight.
    pub fn is_empty(&self) -> bool {
        match self {
            EdgeAccess::Mdp { net, .. } => net.is_empty(),
            EdgeAccess::Direct { queues, .. } => queues.iter().all(Fifo::is_empty),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NetworkStats {
        match self {
            EdgeAccess::Mdp { net, .. } => *net.stats(),
            EdgeAccess::Direct { stats, .. } => *stats,
        }
    }
}

impl<P: Copy> ClockedComponent for EdgeAccess<P> {
    fn tick(&mut self) {
        EdgeAccess::tick(self);
    }

    fn in_flight(&self) -> usize {
        match self {
            EdgeAccess::Mdp { net, .. } => net.in_flight(),
            EdgeAccess::Direct { queues, .. } => queues.iter().map(Fifo::len).sum(),
        }
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(self.stats())
    }

    /// An idle tick of an empty unit only advances cycle counters.
    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            cycles == 0 || ClockedComponent::in_flight(self) == 0,
            "skip() on an edge-access unit holding ranges"
        );
        match self {
            EdgeAccess::Mdp { net, .. } => ClockedComponent::skip(net, cycles),
            EdgeAccess::Direct { stats, .. } => stats.cycles += cycles,
        }
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for EdgeAccess<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"EDGA");
        match self {
            EdgeAccess::Mdp { net, .. } => {
                w.u8(0);
                net.save(w);
            }
            EdgeAccess::Direct {
                queues,
                num_banks,
                next,
                stats,
                ..
            } => {
                w.u8(1);
                w.usize(*num_banks);
                w.usize(*next);
                stats.save(w);
                queues[..].save(w);
            }
        }
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"EDGA")?;
        let variant = r.u8()?;
        match (variant, self) {
            (0, EdgeAccess::Mdp { net, used, .. }) => {
                net.load(r)?;
                used.iter_mut().for_each(|u| *u = false);
                Ok(())
            }
            (
                1,
                EdgeAccess::Direct {
                    queues,
                    num_banks,
                    next,
                    stats,
                    ..
                },
            ) => {
                let banks = r.usize()?;
                if banks != *num_banks {
                    return Err(higraph_sim::SnapError::new(format!(
                        "edge-access bank mismatch: snapshot {banks}, live {num_banks}"
                    )));
                }
                let pointer = r.usize()?;
                if pointer >= queues.len() {
                    return Err(higraph_sim::SnapError::new(format!(
                        "edge-access arbitration pointer {pointer} out of range"
                    )));
                }
                *next = pointer;
                stats.load(r)?;
                queues[..].load(r)?;
                Ok(())
            }
            (v @ (0 | 1), _) => Err(higraph_sim::SnapError::new(format!(
                "edge-access variant mismatch: snapshot variant {v} does not match live unit"
            ))),
            (v, _) => Err(higraph_sim::SnapError::new(format!(
                "unknown edge-access variant {v}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(off: u64, len: u32) -> EdgeRange<u64> {
        EdgeRange {
            off,
            len,
            payload: 9,
        }
    }

    #[test]
    fn direct_grants_non_overlapping_ranges_together() {
        let mut ea = EdgeAccess::new_direct(2, 8, 4);
        ea.push(0, range(0, 4)).unwrap(); // banks 0..4
        ea.push(1, range(12, 4)).unwrap(); // banks 4..8
        let free = vec![true; 8];
        let reads = ea.issue_reads(&free);
        // banks 4..8 overlap? range(12,4) covers indices 12,13,14,15 →
        // banks 4,5,6,7; range(0,4) banks 0,1,2,3 → disjoint, both issue.
        assert_eq!(reads.len(), 8);
        assert!(ea.is_empty());
    }

    #[test]
    fn direct_serializes_overlapping_ranges() {
        let mut ea = EdgeAccess::new_direct(2, 8, 4);
        ea.push(0, range(0, 5)).unwrap(); // banks 0..5
        ea.push(1, range(8, 5)).unwrap(); // banks 0..5 too (8%8=0)
        let free = vec![true; 8];
        let first = ea.issue_reads(&free);
        assert_eq!(first.len(), 5);
        assert!(!ea.is_empty());
        ea.tick();
        let second = ea.issue_reads(&free);
        assert_eq!(second.len(), 5);
        assert!(ea.stats().hol_blocked >= 1);
    }

    #[test]
    fn direct_respects_epe_backpressure() {
        let mut ea = EdgeAccess::new_direct(1, 4, 2);
        ea.push(0, range(0, 3)).unwrap();
        let mut free = vec![true; 4];
        free[1] = false; // one target ePE is full
        assert!(ea.issue_reads(&free).is_empty());
        free[1] = true;
        assert_eq!(ea.issue_reads(&free).len(), 3);
    }

    #[test]
    fn mdp_variant_delivers_all_edges() {
        let mut ea = EdgeAccess::new_mdp(4, 16, 8, 2, 2);
        ea.push(0, range(0, 16)).unwrap(); // a full row
        let free = vec![true; 16];
        let mut got = Vec::new();
        for _ in 0..20 {
            got.extend(ea.issue_reads(&free).into_iter().map(|r| r.edge_index));
            ea.tick();
        }
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert!(ea.is_empty());
    }

    #[test]
    fn mdp_reads_carry_payload_and_bank() {
        let mut ea = EdgeAccess::new_mdp(2, 8, 8, 2, 2);
        ea.push(1, range(9, 2)).unwrap(); // banks 1,2
        let free = vec![true; 8];
        let mut reads = Vec::new();
        for _ in 0..8 {
            reads.extend(ea.issue_reads(&free));
            ea.tick();
        }
        assert_eq!(reads.len(), 2);
        for r in &reads {
            assert_eq!(r.payload, 9);
            assert_eq!(r.bank, (r.edge_index % 8) as usize);
        }
    }
}
