//! Deterministic intra-run chip-level parallelism for the sharded
//! executor.
//!
//! `crate::sharded::ShardedEngine` clocks P independent
//! [`ScatterPipeline`]s plus one `InterChipLink` in lock step. The chips
//! never touch each other's state inside a cycle — each scatters its own
//! slice graph into its own tProperty interval and its own `Metrics` —
//! so the per-cycle combinational phase and clock edge of different
//! chips can run on different host threads. Everything that couples the
//! chips (the link exchange, the fast-forward window decision, the stall
//! guard) stays on the coordinating thread, separated from the chip work
//! by a barrier on each side of every cycle: the cycle-level schedule is
//! exactly the serial drain's, so cycle counts and every metric are
//! **bit-identical** to the serial path and independent of the worker
//! count (`tests/thread_determinism.rs` asserts this).
//!
//! # Protocol
//!
//! One drain leases `workers` participants from the process-wide
//! [`higraph_pool::CorePool`] (idle resident workers, topped up with
//! temporary threads only for an explicit thread-count override) and
//! hands each a team task; chips are dealt to them round-robin. Per
//! cycle:
//!
//! 1. the coordinator publishes a [`Command`] and releases barrier A;
//! 2. workers step + tick their chips (or bulk-`skip` an idle window)
//!    while the coordinator performs the link exchange and link tick —
//!    chip state and link state are disjoint, so this overlap is safe;
//! 3. everyone meets at barrier B; workers have published each chip's
//!    `next_activity` / `in_flight`, from which the coordinator computes
//!    the composite drain state exactly as `MultiChip` does serially.
//!
//! The barrier is a spin-then-yield sense barrier: lock-free on the
//! multi-core fast path, yielding quickly so oversubscribed hosts (or a
//! single-core CI container) degrade gracefully instead of livelocking.
//! Chip lanes migrate freely across pool workers between drains — each
//! lane owns its chip, metrics, slice graph, and `split_at_mut` interval
//! outright, so *which* host thread executes a lane is invisible to the
//! simulated state. See `docs/performance.md` for the full determinism
//! argument.

use crate::engine::ScatterPipeline;
use crate::metrics::Metrics;
use crate::sharded::ShardPacket;
use higraph_graph::Csr;
use higraph_pool::{CoreLease, TeamTask};
use higraph_sim::{min_activity, ClockedComponent, InterChipLink, Network, StallError};
use higraph_vcpm::VertexProgram;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// One chip's share of a lock-step drain: the pipeline plus everything
/// only this chip writes (its metrics, its owned tProperty interval).
pub(crate) struct ChipLane<'a, P> {
    /// Chip index within the shard (= slice index).
    pub(crate) index: usize,
    /// The chip's scatter pipeline.
    pub(crate) chip: &'a mut ScatterPipeline<P>,
    /// The chip's metrics accumulator.
    pub(crate) metrics: &'a mut Metrics,
    /// The chip's owned tProperty interval (disjoint across lanes).
    pub(crate) t_props: &'a mut [P],
    /// Global vertex id of `t_props[0]`.
    pub(crate) t_base: u32,
    /// The chip's slice graph.
    pub(crate) graph: &'a Csr,
}

/// Result of one parallel lock-step drain.
pub(crate) struct ParallelDrainOutcome {
    /// Cycles the drain consumed (== the serial drain's return value).
    pub(crate) spent: u64,
    /// Per-chip last-active cycle count (the serial path's
    /// `chip_cycles[ci] = cycle + 1` accounting), indexed by chip.
    pub(crate) chip_cycles: Vec<u64>,
}

/// Command word: `0` = step one cycle, `1` = exit, even values `>= 2`
/// encode `skip(cycles = word >> 1)`.
const CMD_STEP: u64 = 0;
const CMD_EXIT: u64 = 1;

#[inline]
fn encode_skip(cycles: u64) -> u64 {
    debug_assert!(cycles > 0 && cycles <= u64::MAX >> 1);
    cycles << 1
}

/// Published activity sentinel for "quiescent" (`next_activity() ==
/// None`); real windows are clamped one below it.
const QUIESCENT: u64 = u64::MAX;

/// One cycle's inter-chip exchange, shared verbatim by the serial and
/// parallel drains (their bit-identity depends on it): chips sink
/// whatever updates arrived this cycle, then staged updates
/// (synthesized from the counts) are offered until the link
/// back-pressures.
pub(crate) fn exchange_link(link: &mut InterChipLink<ShardPacket>, staged: &mut [Vec<u64>]) {
    for ci in 0..staged.len() {
        while link.pop(ci).is_some() {}
    }
    for (src_chip, row) in staged.iter_mut().enumerate() {
        // a full egress queue blocks every destination of this source
        // chip alike — move to the next chip
        'dsts: for (dst_chip, count) in row.iter_mut().enumerate() {
            while *count > 0 {
                let pkt = ShardPacket { src_chip, dst_chip };
                match link.push(src_chip, pkt) {
                    Ok(()) => *count -= 1,
                    Err(_) => break 'dsts,
                }
            }
        }
    }
}

/// A sense-reversing counting barrier that spins briefly and then
/// yields. All `total` participants must call [`SpinBarrier::wait`] the
/// same number of times.
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub(crate) fn new(total: usize) -> Self {
        // lint:allow(panic-freedom): internal constructor contract; the runner derives worker counts from max(1, ..)
        assert!(total > 0, "a barrier needs at least one participant");
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all participants arrive.
    pub(crate) fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the count, then release the cohort.
            // The Relaxed reset is ordered by the Release bump below.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            // Spin briefly for the common lock-step cadence, then yield
            // so oversubscribed or single-core hosts make progress.
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Coordinator ↔ worker shared state for one drain.
struct DrainShared {
    barrier: SpinBarrier,
    /// The current command word (valid between barrier A and barrier B).
    cmd: AtomicU64,
    /// Per-chip published `next_activity` ([`QUIESCENT`] = `None`).
    activity: Vec<AtomicU64>,
    /// Per-chip published `in_flight`.
    in_flight: Vec<AtomicUsize>,
    /// Set by a worker whose chip work panicked; the coordinator exits
    /// the protocol and re-raises on join.
    panicked: AtomicBool,
}

impl DrainShared {
    fn new(participants: usize, num_chips: usize) -> Self {
        DrainShared {
            barrier: SpinBarrier::new(participants),
            cmd: AtomicU64::new(CMD_EXIT),
            activity: (0..num_chips).map(|_| AtomicU64::new(QUIESCENT)).collect(),
            in_flight: (0..num_chips).map(|_| AtomicUsize::new(0)).collect(),
            panicked: AtomicBool::new(false),
        }
    }
}

/// Publishes one chip's composite-relevant state. Ordering is Relaxed:
/// the barrier's AcqRel handoff is what makes it visible.
fn publish<P: Copy + 'static>(shared: &DrainShared, index: usize, chip: &mut ScatterPipeline<P>) {
    let activity = match chip.next_activity() {
        None => QUIESCENT,
        Some(window) => window.min(QUIESCENT - 1),
    };
    shared.activity[index].store(activity, Ordering::Relaxed);
    shared.in_flight[index].store(chip.in_flight(), Ordering::Relaxed);
}

/// The worker side of the drain protocol: executes commands on its lanes
/// until told to exit, returning each lane's last-active cycle count.
fn worker_drain<P, Prog>(
    mut lanes: Vec<ChipLane<'_, P>>,
    shared: &DrainShared,
    program: &Prog,
) -> Vec<(usize, u64)>
where
    P: Copy + 'static,
    Prog: VertexProgram<Prop = P>,
{
    let mut spent = 0u64;
    let mut cycles_of: Vec<(usize, u64)> = lanes.iter().map(|lane| (lane.index, 0)).collect();
    for lane in &mut lanes {
        publish(shared, lane.index, lane.chip);
    }
    shared.barrier.wait(); // initial state visible to the coordinator
    loop {
        shared.barrier.wait(); // barrier A: command is published
        let cmd = shared.cmd.load(Ordering::Relaxed);
        if cmd == CMD_EXIT {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if cmd == CMD_STEP {
                for (k, lane) in lanes.iter_mut().enumerate() {
                    // A drained chip idles (no starvation accrues) while
                    // slower chips and the link finish — exactly the
                    // serial callback's per-chip branch.
                    if !lane.chip.is_drained() {
                        cycles_of[k].1 = spent + 1;
                        lane.chip.back.step(
                            program,
                            lane.graph,
                            lane.t_props,
                            lane.t_base,
                            lane.metrics,
                        );
                        lane.chip.front.step(
                            lane.graph,
                            &mut lane.chip.back.edge_access,
                            &mut lane.chip.mem,
                            lane.metrics,
                        );
                    }
                    lane.chip.tick();
                }
                spent += 1;
            } else {
                let cycles = cmd >> 1;
                for lane in lanes.iter_mut() {
                    #[cfg(debug_assertions)]
                    let in_flight_before = lane.chip.in_flight();
                    lane.chip.skip(cycles);
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        lane.chip.in_flight(),
                        in_flight_before,
                        "skip() must not create or retire in-flight work"
                    );
                    if !lane.chip.is_drained() {
                        lane.chip.commit_idle(cycles, lane.metrics);
                    }
                }
                spent += cycles;
            }
            for lane in lanes.iter_mut() {
                publish(shared, lane.index, lane.chip);
            }
        }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.barrier.wait(); // barrier B: results visible
        if let Err(payload) = outcome {
            // Stay in the protocol (the coordinator will send Exit on
            // its next round), then re-raise so the join propagates it.
            shared.barrier.wait();
            resume_unwind(payload);
        }
    }
    cycles_of
}

/// Drains P chips plus the inter-chip link in lock step across the
/// lease's team — the parallel twin of the serial
/// `Scheduler::drain_with` over `MultiChip`, bit-identical in cycle
/// counts and metrics for any team size.
///
/// The lease's participants each run [`worker_drain`] as a team task
/// while the calling thread coordinates; callers with an empty lease
/// (`team_size() == 0`, a fully busy pool) must take the serial drain
/// instead.
///
/// # Errors
///
/// [`StallError`] when the composite fails to drain within
/// `stall_guard` cycles, with the same accounting as the serial drain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_chips_parallel<P, Prog>(
    lanes: Vec<ChipLane<'_, P>>,
    link: &mut InterChipLink<ShardPacket>,
    staged: &mut [Vec<u64>],
    lease: &CoreLease<'_>,
    fast_forward: bool,
    stall_guard: u64,
    program: &Prog,
) -> Result<ParallelDrainOutcome, StallError>
where
    P: Copy + Send + 'static,
    Prog: VertexProgram<Prop = P> + Sync,
{
    let num_chips = lanes.len();
    let workers = lease.team_size();
    // lint:allow(panic-freedom): caller contract; `ShardedEngine::run` routes empty leases to the serial drain
    assert!(workers > 0, "an empty lease cannot host a drain team");
    let shared = DrainShared::new(workers + 1, num_chips);
    let mut bins: Vec<Vec<ChipLane<'_, P>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, lane) in lanes.into_iter().enumerate() {
        bins[i % workers].push(lane);
    }
    let tasks: Vec<TeamTask<'_, Vec<(usize, u64)>>> = bins
        .into_iter()
        .map(|bin| {
            let shared = &shared;
            Box::new(move || worker_drain(bin, shared, program)) as TeamTask<'_, _>
        })
        .collect();

    let ((drained_result, coordinator_panic), worker_results) = lease.run_team(tasks, || {
        let mut spent = 0u64;
        let mut coordinator_panic = None;
        shared.barrier.wait(); // initial chip state published
        let drained_result = loop {
            if shared.panicked.load(Ordering::Acquire) {
                shared.cmd.store(CMD_EXIT, Ordering::Relaxed);
                shared.barrier.wait();
                // join below re-raises the worker's panic
                break Err(StallError {
                    cycles: spent,
                    limit: stall_guard,
                });
            }
            // Composite drain state, exactly as `MultiChip` reports it.
            let chips_in_flight: usize = shared
                .in_flight
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .sum();
            let staged_total: u64 = staged.iter().flatten().sum();
            let drained = chips_in_flight == 0 && link.is_drained() && staged_total == 0;
            if drained {
                shared.cmd.store(CMD_EXIT, Ordering::Relaxed);
                shared.barrier.wait();
                break Ok(spent);
            }
            if spent >= stall_guard {
                shared.cmd.store(CMD_EXIT, Ordering::Relaxed);
                shared.barrier.wait();
                break Err(StallError {
                    cycles: spent,
                    limit: stall_guard,
                });
            }
            if fast_forward {
                // The composite window: staged traffic is offered (and
                // its rejections counted) every cycle, so it pins the
                // window to zero; otherwise the minimum across chips and
                // link, with `MultiChip`'s defensive Some(0) for a
                // quiescent-but-undrained composite.
                let window = if staged_total > 0 {
                    0
                } else {
                    let chip_window = shared
                        .activity
                        .iter()
                        .map(|a| match a.load(Ordering::Relaxed) {
                            QUIESCENT => None,
                            w => Some(w),
                        })
                        .fold(None, min_activity);
                    min_activity(chip_window, link.next_activity()).unwrap_or(0)
                };
                if window > 0 {
                    let window = window.min(stall_guard - spent);
                    shared.cmd.store(encode_skip(window), Ordering::Relaxed);
                    shared.barrier.wait(); // A: workers skip their chips…
                                           // …while the link skips here. Caught so a
                                           // coordinator-side panic (e.g. a debug assert in the
                                           // link's skip) unwinds through the exit protocol
                                           // instead of leaving workers parked at a barrier.
                    let link_work = catch_unwind(AssertUnwindSafe(|| link.skip(window)));
                    shared.barrier.wait(); // B
                    if let Err(payload) = link_work {
                        coordinator_panic = Some(payload);
                        shared.cmd.store(CMD_EXIT, Ordering::Relaxed);
                        shared.barrier.wait();
                        break Err(StallError {
                            cycles: spent,
                            limit: stall_guard,
                        });
                    }
                    spent += window;
                    continue;
                }
            }
            shared.cmd.store(CMD_STEP, Ordering::Relaxed);
            shared.barrier.wait(); // A: workers step + tick their chips…
                                   // …while this thread runs the link exchange of the same
                                   // cycle (chip and link state are disjoint), then the link
                                   // takes its clock edge. Caught so a coordinator-side panic
                                   // unwinds through the exit protocol instead of leaving
                                   // workers parked at a barrier.
            let link_work = catch_unwind(AssertUnwindSafe(|| {
                exchange_link(link, staged);
                link.tick();
            }));
            shared.barrier.wait(); // B
            if let Err(payload) = link_work {
                coordinator_panic = Some(payload);
                shared.cmd.store(CMD_EXIT, Ordering::Relaxed);
                shared.barrier.wait();
                break Err(StallError {
                    cycles: spent,
                    limit: stall_guard,
                });
            }
            spent += 1;
        };
        (drained_result, coordinator_panic)
    });
    // `run_team` has already re-raised any team-task (worker) panic; a
    // link-side panic captured by the coordinator loop comes next.
    if let Some(payload) = coordinator_panic {
        resume_unwind(payload);
    }

    let mut chip_cycles = vec![0u64; num_chips];
    for list in worker_results {
        for (ci, cycles) in list {
            chip_cycles[ci] = cycles;
        }
    }
    drained_result.map(|spent| ParallelDrainOutcome { spent, chip_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        let barrier = SpinBarrier::new(3);
        let counter = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for round in 1..=32u32 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        // every participant observes the full round
                        assert_eq!(counter.load(Ordering::Acquire), round * 3);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 96);
    }

    #[test]
    fn skip_command_round_trips() {
        assert_eq!(encode_skip(1) >> 1, 1);
        assert_eq!(encode_skip(1 << 40) >> 1, 1 << 40);
        assert_ne!(encode_skip(1), CMD_STEP);
        assert_ne!(encode_skip(1), CMD_EXIT);
    }
}
