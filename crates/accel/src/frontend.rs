//! The scatter pipeline's front-end (Fig. 6, left): ActiveVertex parts →
//! offset-routing fabric → Offset Array access under the odd-even
//! arbiter → Replay Engines feeding the Edge Array access unit.
//!
//! [`FrontEnd`] owns stages 4–6 of the per-cycle protocol (the engine's
//! back-end owns 1–3); its [`FrontEnd::step`] method is the combinational
//! phase, and the clock edge comes from its
//! [`ClockedComponent`] implementation, driven by the shared
//! `higraph_sim::Scheduler`.

use crate::arena::PairArena;
use crate::cache::{MemorySubsystem, QueryState};
use crate::edge_access::EdgeAccess;
use crate::metrics::Metrics;
use crate::netfactory::{AnyNetwork, NetworkFactory};
use crate::packets::VertexRef;
use higraph_graph::{Csr, VertexId};
use higraph_mdp::{EdgeRange, ReplayEngine};
use higraph_sim::{BankPorts, ClockedComponent, Fifo, Network, NetworkStats, OddEvenArbiter};
use std::collections::VecDeque;

/// Front-end microarchitectural state, reused across scatter phases (and
/// across slices — it drains completely between phases, like the real
/// hardware).
#[derive(Debug)]
pub(crate) struct FrontEnd<P> {
    /// Per-part ActiveVertex queues, filled round-robin in activation
    /// order at the start of each scatter phase.
    av_parts: Vec<VecDeque<(u32, P)>>,
    /// The vertex-routing fabric in front of the Offset Array. Moves
    /// 8-byte [`VertexRef`] handles; the `(u, prop)` payloads stay put
    /// in `vertices` until the Offset Array stage consumes them.
    offset_net: AnyNetwork<VertexRef>,
    /// Per-channel staging queues between the fabric and the Offset banks.
    offset_q: Vec<Fifo<VertexRef>>,
    /// SoA store for the `(u, prop)` payloads of in-flight vertex
    /// packets (see `crate::arena` for the lifetime conventions).
    vertices: PairArena<P>,
    /// Per-channel Replay Engines turning `{Off, nOff}` into chunks.
    replay: Vec<ReplayEngine<P>>,
    /// One-entry skid buffer per channel between replay and edge access.
    replay_out: Vec<Option<EdgeRange<P>>>,
    /// Odd-even alternating priority (HiGraph's Sec. 4.1 arbitration).
    odd_even: OddEvenArbiter,
    /// Rotating pointer of the GraphDynS-style centralized priority chain.
    offset_rr: usize,
    /// Whether the offset point uses the MDP-network (odd-even issue) or
    /// the centralized chain.
    mdp_offset: bool,
    /// Stage-5 issue-order scratch, reused every cycle (hot path: no
    /// per-cycle allocation).
    issue_order: Vec<usize>,
    /// Stage-5 Offset Array bank-port scratch, reset every cycle.
    offset_banks: BankPorts,
}

impl<P: Copy + 'static> FrontEnd<P> {
    /// Builds the front-end for a validated configuration.
    pub(crate) fn new(factory: &NetworkFactory) -> Self {
        let config = factory.config();
        let n = config.front_channels;
        let m = config.back_channels;
        // lint:allow-item(hot-path-alloc): construction-time: per-channel queues and replay scratch are built once per validated configuration
        FrontEnd {
            av_parts: vec![VecDeque::new(); n],
            offset_net: factory.offset_fabric(),
            offset_q: (0..n).map(|_| Fifo::new(config.staging_capacity)).collect(),
            replay: (0..n).map(|_| ReplayEngine::new(m)).collect(),
            replay_out: vec![None; n],
            vertices: PairArena::with_capacity(config.arena_capacity),
            odd_even: OddEvenArbiter::new(),
            offset_rr: 0,
            mdp_offset: config.offset_network == crate::config::NetworkKind::Mdp,
            issue_order: Vec::with_capacity(n),
            offset_banks: BankPorts::new(n),
        }
    }

    /// Loads a frontier into the ActiveVertex parts, round-robin in
    /// activation order.
    pub(crate) fn load_frontier(&mut self, frontier: &[VertexId], properties: &[P]) {
        let n = self.av_parts.len();
        for (seq, &v) in frontier.iter().enumerate() {
            self.av_parts[seq % n].push_back((v.0, properties[v.index()]));
        }
    }

    /// The front-end's combinational phase: replay staging, Offset Array
    /// arbitration, fabric drain, and ActiveVertex fetch (stages 4–6).
    ///
    /// Off-chip fetches gate two stages through `mem` (`docs/memory.md`):
    /// a replayed edge range may only enter the edge-access unit once its
    /// Edge Array lines are cached, and an Offset Array claim waits for
    /// its offset pair's line. Blocked channel-cycles accrue to
    /// `metrics.memory.stall_cycles`. With the default infinite
    /// subsystem both gates are always open and behaviour is
    /// bit-identical to the pre-memory-model pipeline.
    pub(crate) fn step(
        &mut self,
        graph: &Csr,
        edge_access: &mut EdgeAccess<P>,
        mem: &mut MemorySubsystem,
        metrics: &mut Metrics,
    ) {
        let n = self.av_parts.len();
        mem.begin_cycle();

        // (4) Replay engines: stage one chunk, offer it downstream once
        // its edge lines are resident.
        for c in 0..n {
            if self.replay_out[c].is_none() {
                self.replay_out[c] = self.replay[c].emit();
            }
            if let Some(chunk) = self.replay_out[c].take() {
                if mem.edges_ready(c, chunk.off, chunk.len) {
                    match edge_access.push(c, chunk) {
                        Ok(()) => {}
                        Err(chunk) => self.replay_out[c] = Some(chunk),
                    }
                } else {
                    metrics.memory.stall_cycles += 1;
                    self.replay_out[c] = Some(chunk);
                }
            }
        }

        // (5) Offset Array access: claim (u, u+1) bank pairs. Both the
        // issue order and the bank-port tracker are per-cycle state kept
        // in reusable scratch buffers owned by the front-end.
        self.offset_banks.reset();
        let claim = |u: u32, ports: &mut BankPorts| -> bool {
            let b0 = (u as usize) % n;
            let b1 = (u as usize + 1) % n;
            let r0 = u64::from(u) / n as u64;
            let r1 = (u64::from(u) + 1) / n as u64;
            ports.try_claim_pair((b0, r0), (b1, r1))
        };
        self.issue_order.clear();
        if self.mdp_offset {
            // HiGraph: odd-even alternating priority (Sec. 4.1). Every
            // channel's conflict check is local (its own and its
            // neighbour's banks), so channels issue independently.
            self.issue_order
                .extend((0..n).filter(|&c| self.odd_even.has_priority(c)));
            self.issue_order
                .extend((0..n).filter(|&c| !self.odd_even.has_priority(c)));
        } else {
            // GraphDynS: the "delicate" centralized arbitration — a
            // rotating priority *chain*. Grants propagate down the chain
            // until the first conflicting claim; later channels cannot be
            // granted past a blocked one (skip-over would require full
            // per-bank parallel arbitration, exactly the centralization
            // the paper says caps this design at 4 channels).
            self.issue_order
                .extend((0..n).map(|off| (self.offset_rr + off) % n));
            self.offset_rr = (self.offset_rr + 1) % n;
        }
        for i in 0..n {
            let c = self.issue_order[i];
            let Some(head) = self.offset_q[c].peek() else {
                continue;
            };
            if !self.replay[c].is_idle() {
                continue;
            }
            let u = self.vertices.key(head.handle);
            // The offset pair must be on chip before the bank claim is
            // even attempted (a memory stall, not an arbitration
            // conflict — the grant chain is unaffected).
            if !mem.offset_ready(c, u) {
                metrics.memory.stall_cycles += 1;
                continue;
            }
            if claim(u, &mut self.offset_banks) {
                // lint:allow(panic-freedom): infallible: the pop follows a successful peek on the same queue this cycle
                let pkt = self.offset_q[c].pop().expect("peeked head");
                let prop = self.vertices.payload(pkt.handle);
                self.vertices.free(pkt.handle);
                let (off, n_off) = graph.offset_pair(VertexId(u));
                let loaded = self.replay[c].load(off, n_off, prop);
                debug_assert!(loaded, "replay engine checked idle");
            } else {
                metrics.offset_conflicts += 1;
                if !self.mdp_offset {
                    break;
                }
            }
        }

        // (5b) Drain the offset-routing fabric into the channel queues.
        for c in 0..n {
            if !self.offset_q[c].is_full() {
                if let Some(pkt) = self.offset_net.pop(c) {
                    debug_assert_eq!(pkt.dest as usize, c);
                    self.offset_q[c]
                        .push(pkt)
                        // lint:allow(panic-freedom): push cannot fail: space was checked against this cycle's snapshot before the transfer
                        .unwrap_or_else(|_| unreachable!("space checked"));
                }
            }
        }

        // (6) ActiveVertex fetch: one vertex per part per cycle. The
        // payload enters the arena only if the fabric takes the ref
        // (alloc-then-free-on-reject, see `crate::arena`).
        for c in 0..n {
            let Some(&(u, prop)) = self.av_parts[c].front() else {
                continue;
            };
            let handle = self.vertices.alloc(u, prop);
            let pkt = VertexRef {
                handle,
                dest: (u % n as u32),
            };
            if self.offset_net.push(c, pkt).is_ok() {
                self.av_parts[c].pop_front();
            } else {
                self.vertices.free(handle);
            }
        }
    }

    /// Cumulative statistics of the offset-routing fabric.
    pub(crate) fn offset_stats(&self) -> NetworkStats {
        // lint:allow(panic-freedom): infallible: every fabric constructor installs a stats block
        self.offset_net.network_stats().expect("fabrics keep stats")
    }

    /// Whether the next [`FrontEnd::step`] can do anything beyond stall
    /// accounting. Mirrors `step` stage by stage: vertices to fetch or
    /// route, a replay engine that can emit, a staged chunk or offset
    /// head whose memory query is ready (or would advance) — any of
    /// these makes the cycle active. When it returns `false`, every
    /// held item is purely waiting on DRAM (or the front-end is
    /// drained), and [`MemorySubsystem::next_activity`] bounds the wait.
    pub(crate) fn has_immediate_work(&self, mem: &MemorySubsystem) -> bool {
        let n = self.av_parts.len();
        // (6) an ActiveVertex push that would be *accepted* is activity;
        // one the fabric keeps rejecting is deterministic bookkeeping
        // (committed in bulk by `commit_idle`).
        for c in 0..n {
            if let Some(&(u, _)) = self.av_parts[c].front() {
                // Capacity probe only — nothing is allocated; the
                // fabrics never dereference a handle.
                let probe = VertexRef {
                    handle: u32::MAX,
                    dest: (u % n as u32),
                };
                if self.offset_net.can_accept(c, &probe) {
                    return true;
                }
            }
        }
        // (5b) + clock edge: internal fabric movement, or a delivery a
        // staging queue has room to take.
        if self.offset_net.in_flight() > 0 {
            if !self.offset_net.is_wedged() {
                return true;
            }
            for c in 0..n {
                if !self.offset_q[c].is_full() && self.offset_net.peek(c).is_some() {
                    return true;
                }
            }
        }
        for c in 0..self.av_parts.len() {
            match &self.replay_out[c] {
                // (4) a staged chunk advances unless its lines are still
                // on their way from DRAM.
                Some(chunk) => {
                    if mem.edge_query_state(c, chunk.off, chunk.len) != QueryState::Blocked {
                        return true;
                    }
                }
                // (4) a busy replay engine refills the skid buffer.
                None => {
                    if !self.replay[c].is_idle() {
                        return true;
                    }
                }
            }
            // (5) an offset head claims its bank pair once the replay
            // engine is free and its offset pair is on chip.
            if let Some(head) = self.offset_q[c].peek() {
                if self.replay[c].is_idle()
                    && mem.offset_query_state(c, self.vertices.key(head.handle))
                        != QueryState::Blocked
                {
                    return true;
                }
            }
        }
        false
    }

    /// Commits the per-cycle effects of `cycles` idle [`FrontEnd::step`]s
    /// in O(channels): one memory-stall cycle per blocked chunk and per
    /// ready-to-issue-but-waiting offset head, plus the GraphDynS
    /// rotating grant chain. Only valid when
    /// [`FrontEnd::has_immediate_work`] is `false` (the fast-forward
    /// precondition) — every counted item is then genuinely mem-blocked.
    pub(crate) fn commit_idle(&mut self, cycles: u64, metrics: &mut Metrics) {
        let n = self.av_parts.len();
        let mut stalled_channels = 0u64;
        let mut rejected_pushes = 0u64;
        for c in 0..n {
            if self.replay_out[c].is_some() {
                stalled_channels += 1;
            }
            if !self.offset_q[c].is_empty() && self.replay[c].is_idle() {
                stalled_channels += 1;
            }
            // (6) one rejected ActiveVertex push per blocked channel per
            // cycle (the fast-forward precondition: none could land)
            if !self.av_parts[c].is_empty() {
                rejected_pushes += 1;
            }
        }
        metrics.memory.stall_cycles += stalled_channels * cycles;
        self.offset_net.commit_rejected(rejected_pushes * cycles);
        if !self.mdp_offset {
            self.offset_rr = (self.offset_rr + (cycles % n as u64) as usize) % n;
        }
    }
}

impl<P: Copy + 'static> ClockedComponent for FrontEnd<P> {
    fn tick(&mut self) {
        self.offset_net.tick();
        self.odd_even.tick();
    }

    fn in_flight(&self) -> usize {
        self.av_parts.in_flight()
            + self.offset_net.in_flight()
            + self.offset_q.in_flight()
            + self.replay.iter().filter(|r| !r.is_idle()).count()
            + self.replay_out.iter().filter(|o| o.is_some()).count()
    }

    /// Short-circuiting drain check — evaluated every cycle by the
    /// scheduler, so it must not pay the full `in_flight` sum while any
    /// early part still holds work.
    fn is_drained(&self) -> bool {
        self.av_parts.is_drained()
            && self.offset_net.is_drained()
            && self.offset_q.is_drained()
            && self.replay.iter().all(ReplayEngine::is_idle)
            && self.replay_out.iter().all(Option::is_none)
    }

    // `next_activity` keeps the conservative default; the memory-aware
    // hint lives in `ScatterPipeline`, which owns the subsystem this
    // front-end's gates depend on (`FrontEnd::has_immediate_work`).

    /// The front-end's sequential state during an idle window: fabric
    /// cycle counters and the odd-even parity.
    fn skip(&mut self, cycles: u64) {
        self.offset_net.skip(cycles);
        self.odd_even.advance(cycles);
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for FrontEnd<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"FRNT");
        w.usize(self.av_parts.len());
        w.bool(self.mdp_offset);
        w.usize(self.offset_rr);
        self.av_parts[..].save(w);
        self.offset_net.save(w);
        self.offset_q[..].save(w);
        self.vertices.save(w);
        self.replay[..].save(w);
        self.replay_out.save(w);
        self.odd_even.save(w);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"FRNT")?;
        let n = r.usize()?;
        let mdp_offset = r.bool()?;
        if n != self.av_parts.len() || mdp_offset != self.mdp_offset {
            return Err(higraph_sim::SnapError::new(format!(
                "front-end shape mismatch: snapshot {n} channels (mdp_offset={mdp_offset}), \
                 live {} (mdp_offset={})",
                self.av_parts.len(),
                self.mdp_offset
            )));
        }
        let offset_rr = r.usize()?;
        if offset_rr >= n {
            return Err(higraph_sim::SnapError::new(format!(
                "front-end arbitration pointer {offset_rr} out of range"
            )));
        }
        self.offset_rr = offset_rr;
        self.av_parts[..].load(r)?;
        self.offset_net.load(r)?;
        self.offset_q[..].load(r)?;
        self.vertices.load(r)?;
        self.replay[..].load(r)?;
        self.replay_out.load(r)?;
        self.odd_even.load(r)?;
        // Per-cycle scratch is not state.
        self.issue_order.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use higraph_graph::gen::erdos_renyi;

    #[test]
    fn drains_a_small_frontier_into_edge_access() {
        let factory = NetworkFactory::new(&AcceleratorConfig::higraph_mini()).expect("valid");
        let graph = erdos_renyi(64, 512, 15, 3);
        let mut fe: FrontEnd<u64> = FrontEnd::new(&factory);
        let mut ea: EdgeAccess<u64> = factory.edge_access();
        let mut metrics = Metrics::default();
        let frontier: Vec<VertexId> = graph.vertices().take(8).collect();
        let props: Vec<u64> = (0..64).collect();
        fe.load_frontier(&frontier, &props);
        assert!(!fe.is_drained());
        let mut mem = MemorySubsystem::infinite();
        let mut scheduler = higraph_sim::Scheduler::new().with_stall_guard(10_000);
        let epe_space = vec![true; 32];
        let mut edges = 0usize;
        scheduler
            .drain(&mut fe, |fe, _| {
                edges += ea.issue_reads(&epe_space).len();
                fe.step(&graph, &mut ea, &mut mem, &mut metrics);
                ea.tick();
            })
            .expect("front-end drains");
        // keep draining the edge unit after the front-end empties
        for _ in 0..64 {
            edges += ea.issue_reads(&epe_space).len();
            ea.tick();
        }
        let expect: u64 = frontier.iter().map(|&v| graph.out_degree(v)).sum();
        assert_eq!(edges as u64, expect);
        assert!(fe.offset_stats().delivered >= 1);
    }
}
