//! Packet types flowing through the accelerator's fabrics.
//!
//! The hot path moves the *ref* types ([`VertexRef`], [`ImmRef`],
//! [`EdgeRef`]): 8-byte handles into the per-chip SoA arenas of
//! [`crate::arena`], carrying only what the fabrics inspect in flight
//! (the destination). The materialized structs ([`VertexPacket`],
//! [`ImmPacket`], [`PendingEdge`]) document the modeled payload each
//! handle stands for and serve as the struct-copy baseline in the
//! host-performance microbenchmarks.

use higraph_sim::Packet;

/// Handle to a vertex packet whose `(u, prop)` payload lives in the
/// front-end's [`crate::arena::PairArena`]. This is what the
/// offset-routing fabric and staging FIFOs move per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexRef {
    /// Arena handle of the `(u, prop)` pair.
    pub handle: u32,
    /// `u % n` — the only field inspected in flight.
    pub dest: u32,
}

impl Packet for VertexRef {
    fn dest(&self) -> usize {
        self.dest as usize
    }
}

/// Handle to an update packet whose `(v, imm)` payload lives in the
/// back-end's [`crate::arena::PairArena`]. This is what the dataflow
/// propagation fabric moves per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmRef {
    /// Arena handle of the `(v, imm)` pair.
    pub handle: u32,
    /// `v % m` — the only field inspected in flight.
    pub dest: u32,
}

impl Packet for ImmRef {
    fn dest(&self) -> usize {
        self.dest as usize
    }
}

/// Handle to a pending edge whose `(dst, weight, u_prop)` payload lives
/// in the back-end's [`crate::arena::EdgeArena`]. This is what the ePE
/// queues hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef(pub u32);

/// A source vertex travelling from the ActiveVertex Array to its Offset
/// Array channel (front-end routing; Fig. 6 "MDP-network for Offset Array
/// Access"). Destination: channel `u % n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexPacket<P> {
    /// Source vertex ID.
    pub u: u32,
    /// The vertex's current property (rides along so the back-end never
    /// re-reads the Property Array mid-scatter).
    pub prop: P,
    /// `u % n`.
    pub dest: usize,
}

impl<P> Packet for VertexPacket<P> {
    fn dest(&self) -> usize {
        self.dest
    }
}

/// An update travelling from an ePE to the vPE owning its destination
/// vertex (Fig. 6 dataflow propagation). Destination: channel `v % m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmPacket<P> {
    /// Destination vertex ID.
    pub v: u32,
    /// `Imm = Process_Edge(u.prop, e.weight)`.
    pub imm: P,
    /// `v % m`.
    pub dest: usize,
}

impl<P> Packet for ImmPacket<P> {
    fn dest(&self) -> usize {
        self.dest
    }
}

/// An edge waiting at an ePE: read from the Edge Array, paired with the
/// source property it must be combined with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEdge<P> {
    /// Destination vertex of the edge.
    pub dst: u32,
    /// Edge weight.
    pub weight: u32,
    /// Property of the source vertex.
    pub u_prop: P,
}

impl higraph_sim::SnapValue for VertexRef {
    fn save_value(&self, w: &mut higraph_sim::SnapWriter) {
        w.u32(self.handle);
        w.u32(self.dest);
    }
    fn load_value(r: &mut higraph_sim::SnapReader<'_>) -> Result<Self, higraph_sim::SnapError> {
        Ok(VertexRef {
            handle: r.u32()?,
            dest: r.u32()?,
        })
    }
}

impl higraph_sim::SnapValue for ImmRef {
    fn save_value(&self, w: &mut higraph_sim::SnapWriter) {
        w.u32(self.handle);
        w.u32(self.dest);
    }
    fn load_value(r: &mut higraph_sim::SnapReader<'_>) -> Result<Self, higraph_sim::SnapError> {
        Ok(ImmRef {
            handle: r.u32()?,
            dest: r.u32()?,
        })
    }
}

impl higraph_sim::SnapValue for EdgeRef {
    fn save_value(&self, w: &mut higraph_sim::SnapWriter) {
        w.u32(self.0);
    }
    fn load_value(r: &mut higraph_sim::SnapReader<'_>) -> Result<Self, higraph_sim::SnapError> {
        Ok(EdgeRef(r.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_report_dest() {
        let v = VertexPacket {
            u: 10,
            prop: 5u64,
            dest: 2,
        };
        assert_eq!(v.dest(), 2);
        let i = ImmPacket {
            v: 9,
            imm: 1u64,
            dest: 7,
        };
        assert_eq!(i.dest(), 7);
    }
}
