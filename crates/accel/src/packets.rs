//! Packet types flowing through the accelerator's fabrics.

use higraph_sim::Packet;

/// A source vertex travelling from the ActiveVertex Array to its Offset
/// Array channel (front-end routing; Fig. 6 "MDP-network for Offset Array
/// Access"). Destination: channel `u % n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexPacket<P> {
    /// Source vertex ID.
    pub u: u32,
    /// The vertex's current property (rides along so the back-end never
    /// re-reads the Property Array mid-scatter).
    pub prop: P,
    /// `u % n`.
    pub dest: usize,
}

impl<P> Packet for VertexPacket<P> {
    fn dest(&self) -> usize {
        self.dest
    }
}

/// An update travelling from an ePE to the vPE owning its destination
/// vertex (Fig. 6 dataflow propagation). Destination: channel `v % m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmPacket<P> {
    /// Destination vertex ID.
    pub v: u32,
    /// `Imm = Process_Edge(u.prop, e.weight)`.
    pub imm: P,
    /// `v % m`.
    pub dest: usize,
}

impl<P> Packet for ImmPacket<P> {
    fn dest(&self) -> usize {
        self.dest
    }
}

/// An edge waiting at an ePE: read from the Edge Array, paired with the
/// source property it must be combined with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEdge<P> {
    /// Destination vertex of the edge.
    pub dst: u32,
    /// Edge weight.
    pub weight: u32,
    /// Property of the source vertex.
    pub u_prop: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_report_dest() {
        let v = VertexPacket {
            u: 10,
            prop: 5u64,
            dest: 2,
        };
        assert_eq!(v.dest(), 2);
        let i = ImmPacket {
            v: 9,
            imm: 1u64,
            dest: 7,
        };
        assert_eq!(i.dest(), 7);
    }
}
