//! The cycle-level accelerator engine (Fig. 6).
//!
//! One [`Engine`] executes a [`VertexProgram`] on a graph under a chosen
//! [`AcceleratorConfig`], producing both the algorithm result (validated
//! bit-exactly against the software reference) and the paper's
//! performance metrics. [`Engine::run_sliced`] additionally models the
//! Sec. 5.3 large-graph schedule: destination-interval slices processed
//! back to back, with single- or double-buffered slice replacement.
//!
//! # Pipeline
//!
//! Per scatter cycle, stages are evaluated consumer-first so data advances
//! one stage per cycle under backpressure:
//!
//! 1. **vPE** — pop one update per back-end channel from the dataflow
//!    fabric and fold it into the tProperty bank (`Reduce`); a vPE with no
//!    input while work remains in flight records a starvation cycle
//!    (Fig. 10b);
//! 2. **ePE** — pop one pending edge per channel, compute
//!    `Process_Edge`, push the `Imm` into the dataflow fabric;
//! 3. **Edge banks** — the edge-access unit issues at most one read per
//!    bank into the ePE queues;
//! 4. **Replay** — each front-end channel's Replay Engine emits one
//!    `{Off, Len}` chunk into the edge-access unit;
//! 5. **Offset access** — queue heads claim their `(u, u+1)` offset-bank
//!    pair under the odd-even arbiter (HiGraph) or a rotating centralized
//!    priority chain (GraphDynS), with the paper's same-address sharing
//!    rule;
//! 6. **ActiveVertex fetch** — each part feeds one vertex into the
//!    offset-routing fabric.
//!
//! The apply phase is modeled as an `⌈V/m⌉`-cycle scan (identical for all
//! designs) that applies `Apply( )`, rebuilds the frontier, and resets the
//! tProperty banks.

use crate::config::{AcceleratorConfig, NetworkKind};
use crate::edge_access::EdgeAccess;
use crate::metrics::Metrics;
use crate::netfactory::AnyNetwork;
use crate::packets::{ImmPacket, PendingEdge, VertexPacket};
use higraph_graph::slicing::{partition, slice_swap_cycles, Slice};
use higraph_graph::{Csr, EdgeId, VertexId};
use higraph_mdp::{EdgeRange, ReplayEngine};
use higraph_sim::{BankPorts, Fifo, Network, OddEvenArbiter};
use higraph_vcpm::VertexProgram;
use std::collections::VecDeque;

/// Extra cycles per apply phase for pipeline fill/drain.
const APPLY_PIPELINE_OVERHEAD: u64 = 4;

/// Result of running a program on the accelerator.
#[derive(Debug, Clone)]
pub struct RunResult<P> {
    /// Final Property Array (bit-identical to the reference executor).
    pub properties: Vec<P>,
    /// Performance metrics.
    pub metrics: Metrics,
}

/// Result of a sliced run ([`Engine::run_sliced`]).
#[derive(Debug, Clone)]
pub struct SlicedRunResult<P> {
    /// Final Property Array — identical to an unsliced run.
    pub properties: Vec<P>,
    /// Compute metrics (scatter + apply cycles, as in [`RunResult`]).
    pub metrics: Metrics,
    /// Number of slices processed per iteration.
    pub num_slices: usize,
    /// Total slice-replacement cycles if loads run sequentially with
    /// compute (single-buffered).
    pub swap_cycles_sequential: u64,
    /// Slice-replacement cycles left exposed under double buffering
    /// (Sec. 5.3: replacement overlaps the previous slice's compute).
    pub swap_cycles_overlapped: u64,
}

impl<P> SlicedRunResult<P> {
    /// End-to-end cycles with single-buffered slice replacement.
    pub fn total_cycles_single_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_sequential
    }

    /// End-to-end cycles with double-buffered slice replacement.
    pub fn total_cycles_double_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_overlapped
    }
}

/// The microarchitectural state of the scatter pipeline; reused across
/// scatter phases (and across slices — the fabrics drain completely
/// between phases, like the real hardware).
struct ScatterState<P> {
    av_parts: Vec<VecDeque<(u32, P)>>,
    offset_net: AnyNetwork<VertexPacket<P>>,
    offset_q: Vec<Fifo<VertexPacket<P>>>,
    replay: Vec<ReplayEngine<P>>,
    replay_out: Vec<Option<EdgeRange<P>>>,
    edge_access: EdgeAccess<P>,
    epe_q: Vec<Fifo<PendingEdge<P>>>,
    dataflow: AnyNetwork<ImmPacket<P>>,
    odd_even: OddEvenArbiter,
    offset_rr: usize,
}

impl<P: Copy + 'static> ScatterState<P> {
    fn new(config: &AcceleratorConfig) -> Self {
        let n = config.front_channels;
        let m = config.back_channels;
        ScatterState {
            av_parts: vec![VecDeque::new(); n],
            offset_net: AnyNetwork::build(
                config.offset_network,
                n,
                config.staging_capacity.max(4),
                config.radix,
            ),
            offset_q: (0..n).map(|_| Fifo::new(config.staging_capacity)).collect(),
            replay: (0..n).map(|_| ReplayEngine::new(m)).collect(),
            replay_out: vec![None; n],
            edge_access: match config.edge_network {
                NetworkKind::Mdp => EdgeAccess::new_mdp(
                    n,
                    m,
                    config.staging_capacity.max(4),
                    config.radix,
                    config.dispatcher_read_ports,
                ),
                _ => EdgeAccess::new_direct(n, m, config.staging_capacity.max(4)),
            },
            epe_q: (0..m).map(|_| Fifo::new(config.staging_capacity)).collect(),
            dataflow: AnyNetwork::build(
                config.dataflow_network,
                m,
                config.dataflow_buffer_per_channel,
                config.radix,
            ),
            odd_even: OddEvenArbiter::new(),
            offset_rr: 0,
        }
    }

    fn is_drained(&self) -> bool {
        self.av_parts.iter().all(VecDeque::is_empty)
            && self.offset_net.is_empty()
            && self.offset_q.iter().all(Fifo::is_empty)
            && self.replay.iter().all(ReplayEngine::is_idle)
            && self.replay_out.iter().all(Option::is_none)
            && self.edge_access.is_empty()
            && self.epe_q.iter().all(Fifo::is_empty)
            && self.dataflow.is_empty()
    }
}

/// A cycle-level accelerator instance bound to a graph.
#[derive(Debug)]
pub struct Engine<'g> {
    config: AcceleratorConfig,
    graph: &'g Csr,
}

impl<'g> Engine<'g> {
    /// Creates an engine for `graph` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (see
    /// [`AcceleratorConfig::validate`]). Use [`Engine::try_new`] for a
    /// fallible constructor.
    pub fn new(config: AcceleratorConfig, graph: &'g Csr) -> Self {
        Engine::try_new(config, graph).expect("invalid accelerator configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message for invalid configurations.
    pub fn try_new(config: AcceleratorConfig, graph: &'g Csr) -> Result<Self, String> {
        config.validate()?;
        Ok(Engine { config, graph })
    }

    /// The configuration this engine simulates.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Executes `program` to completion and returns properties + metrics.
    pub fn run<Prog: VertexProgram>(&mut self, program: &Prog) -> RunResult<Prog::Prop> {
        let m = self.config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut state = ScatterState::new(&self.config);
        let mut metrics = Metrics {
            frequency_ghz: self.config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            self.simulate_scatter(
                program,
                graph,
                &frontier,
                &properties,
                &mut t_props,
                &mut state,
                &mut metrics,
            );
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles +=
                u64::from(num_v).div_ceil(m as u64) + APPLY_PIPELINE_OVERHEAD;
            metrics.iterations += 1;
        }

        self.finalize_metrics(&mut metrics, &state);
        RunResult {
            properties,
            metrics,
        }
    }

    /// Executes `program` with the Sec. 5.3 large-graph schedule: the graph
    /// is partitioned into `num_slices` destination-interval slices, each
    /// iteration scatters slice by slice over the same frontier, and slice
    /// replacement cost is modeled at `memory_bytes_per_cycle` off-chip
    /// bandwidth — both single- and double-buffered.
    ///
    /// The final Property Array is identical to [`Engine::run`]'s (the
    /// integration tests assert this); only the timing model differs.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn run_sliced<Prog: VertexProgram>(
        &mut self,
        program: &Prog,
        num_slices: usize,
        memory_bytes_per_cycle: u64,
    ) -> SlicedRunResult<Prog::Prop> {
        assert!(num_slices > 0, "need at least one slice");
        let m = self.config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();
        let slices: Vec<Slice> = partition(graph, num_slices);
        let swap_per_slice: Vec<u64> = slices
            .iter()
            .map(|s| slice_swap_cycles(s, memory_bytes_per_cycle))
            .collect();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut state = ScatterState::new(&self.config);
        let mut metrics = Metrics {
            frequency_ghz: self.config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };
        let mut swap_sequential = 0u64;
        let mut swap_overlapped = 0u64;

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            // Scatter each slice over the shared frontier & tProps. The
            // first slice's load is always exposed; later loads overlap
            // the previous slice's compute under double buffering.
            let mut prev_compute = 0u64;
            for (i, slice) in slices.iter().enumerate() {
                let before = metrics.scatter_cycles;
                self.simulate_scatter(
                    program,
                    &slice.graph,
                    &frontier,
                    &properties,
                    &mut t_props,
                    &mut state,
                    &mut metrics,
                );
                let compute = metrics.scatter_cycles - before;
                swap_sequential += swap_per_slice[i];
                swap_overlapped += if i == 0 {
                    swap_per_slice[i]
                } else {
                    swap_per_slice[i].saturating_sub(prev_compute)
                };
                prev_compute = compute;
            }
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles +=
                u64::from(num_v).div_ceil(m as u64) + APPLY_PIPELINE_OVERHEAD;
            metrics.iterations += 1;
        }

        self.finalize_metrics(&mut metrics, &state);
        SlicedRunResult {
            properties,
            metrics,
            num_slices,
            swap_cycles_sequential: swap_sequential,
            swap_cycles_overlapped: swap_overlapped,
        }
    }

    /// Simulates one scatter phase of `frontier` over `graph` (which may
    /// be a slice of the full graph), folding updates into `t_props`.
    #[allow(clippy::too_many_arguments)]
    fn simulate_scatter<Prog: VertexProgram>(
        &self,
        program: &Prog,
        graph: &Csr,
        frontier: &[VertexId],
        properties: &[Prog::Prop],
        t_props: &mut [Prog::Prop],
        state: &mut ScatterState<Prog::Prop>,
        metrics: &mut Metrics,
    ) {
        let n = self.config.front_channels;
        let m = self.config.back_channels;
        debug_assert!(state.is_drained(), "scatter must start from a drained pipeline");

        // Load the ActiveVertex parts round-robin in activation order.
        for (seq, &v) in frontier.iter().enumerate() {
            state.av_parts[seq % n].push_back((v.0, properties[v.index()]));
        }

        let mut guard: u64 = 0;
        let iteration_edges: u64 = frontier.iter().map(|&v| graph.out_degree(v)).sum();
        let guard_limit = 10_000 + iteration_edges * 64;
        loop {
            if state.is_drained() {
                break;
            }
            guard += 1;
            assert!(
                guard <= guard_limit,
                "scatter phase of {} stalled: no completion after {guard} cycles \
                 (iteration edges: {iteration_edges})",
                self.config.name
            );

            // (1) vPEs: drain the dataflow fabric, fold into tProperty.
            for c in 0..m {
                match state.dataflow.pop(c) {
                    Some(pkt) => {
                        debug_assert_eq!(pkt.dest, c);
                        let t = &mut t_props[pkt.v as usize];
                        *t = program.reduce(*t, pkt.imm);
                    }
                    None => {
                        metrics.vpe_starvation_cycles += 1;
                        metrics.vpe_starvation_per_channel[c] += 1;
                    }
                }
            }

            // (2) ePEs: Process_Edge and inject into the dataflow fabric.
            for c in 0..m {
                let Some(&PendingEdge { dst, weight, u_prop }) = state.epe_q[c].peek() else {
                    continue;
                };
                let pkt = ImmPacket {
                    v: dst,
                    imm: program.process_edge(u_prop, weight),
                    dest: (dst as usize) % m,
                };
                if state.dataflow.push(c, pkt).is_ok() {
                    state.epe_q[c].pop();
                }
            }

            // (3) Edge banks: one read per bank into the ePE queues.
            let epe_space: Vec<bool> = state.epe_q.iter().map(|q| !q.is_full()).collect();
            for read in state.edge_access.issue_reads(&epe_space) {
                let e = graph.edge(EdgeId(read.edge_index));
                let pushed = state.epe_q[read.bank].push(PendingEdge {
                    dst: e.dst.0,
                    weight: e.weight,
                    u_prop: read.payload,
                });
                debug_assert!(pushed.is_ok(), "edge unit overran an ePE queue");
                metrics.edges_processed += 1;
            }

            // (4) Replay engines: stage one chunk, offer it downstream.
            for c in 0..n {
                if state.replay_out[c].is_none() {
                    state.replay_out[c] = state.replay[c].emit();
                }
                if let Some(chunk) = state.replay_out[c].take() {
                    match state.edge_access.push(c, chunk) {
                        Ok(()) => {}
                        Err(chunk) => state.replay_out[c] = Some(chunk),
                    }
                }
            }

            // (5) Offset Array access: claim (u, u+1) bank pairs.
            let mut offset_banks = BankPorts::new(n);
            let claim = |u: u32, ports: &mut BankPorts| -> bool {
                let b0 = (u as usize) % n;
                let b1 = (u as usize + 1) % n;
                let r0 = u64::from(u) / n as u64;
                let r1 = (u64::from(u) + 1) / n as u64;
                ports.try_claim_pair((b0, r0), (b1, r1))
            };
            let strict_chain = self.config.offset_network != NetworkKind::Mdp;
            let mut issue_order: Vec<usize> = Vec::with_capacity(n);
            if self.config.offset_network == NetworkKind::Mdp {
                // HiGraph: odd-even alternating priority (Sec. 4.1).
                // Every channel's conflict check is local (its own and its
                // neighbour's banks), so channels issue independently.
                issue_order.extend((0..n).filter(|&c| state.odd_even.has_priority(c)));
                issue_order.extend((0..n).filter(|&c| !state.odd_even.has_priority(c)));
            } else {
                // GraphDynS: the "delicate" centralized arbitration — a
                // rotating priority *chain*. Grants propagate down the
                // chain until the first conflicting claim; later channels
                // cannot be granted past a blocked one (skip-over would
                // require full per-bank parallel arbitration, exactly the
                // centralization the paper says caps this design at 4
                // channels).
                issue_order.extend((0..n).map(|off| (state.offset_rr + off) % n));
                state.offset_rr = (state.offset_rr + 1) % n;
            }
            for c in issue_order {
                let Some(head) = state.offset_q[c].peek() else { continue };
                if !state.replay[c].is_idle() {
                    continue;
                }
                let u = head.u;
                if claim(u, &mut offset_banks) {
                    let pkt = state.offset_q[c].pop().expect("peeked head");
                    let (off, n_off) = graph.offset_pair(VertexId(pkt.u));
                    let loaded = state.replay[c].load(off, n_off, pkt.prop);
                    debug_assert!(loaded, "replay engine checked idle");
                } else {
                    metrics.offset_conflicts += 1;
                    if strict_chain {
                        break;
                    }
                }
            }

            // (5b) Drain the offset-routing fabric into the channel queues.
            for c in 0..n {
                if !state.offset_q[c].is_full() {
                    if let Some(pkt) = state.offset_net.pop(c) {
                        debug_assert_eq!(pkt.dest, c);
                        state.offset_q[c]
                            .push(pkt)
                            .unwrap_or_else(|_| unreachable!("space checked"));
                    }
                }
            }

            // (6) ActiveVertex fetch: one vertex per part per cycle.
            for c in 0..n {
                let Some(&(u, prop)) = state.av_parts[c].front() else {
                    continue;
                };
                let pkt = VertexPacket {
                    u,
                    prop,
                    dest: (u as usize) % n,
                };
                if state.offset_net.push(c, pkt).is_ok() {
                    state.av_parts[c].pop_front();
                }
            }

            // (7) clock edge
            state.offset_net.tick();
            state.edge_access.tick();
            state.dataflow.tick();
            state.odd_even.tick();
            metrics.scatter_cycles += 1;
        }
    }

    fn finalize_metrics<P: Copy + 'static>(&self, metrics: &mut Metrics, state: &ScatterState<P>) {
        metrics.cycles = metrics.scatter_cycles + metrics.apply_cycles;
        metrics.offset_net = *state.offset_net.stats();
        metrics.edge_net = state.edge_access.stats();
        metrics.dataflow_net = *state.dataflow.stats();
    }
}

/// The apply phase (identical across designs): scan all vertices, apply,
/// rebuild the frontier in vertex-ID order, and reset tProperty.
fn apply_phase<Prog: VertexProgram>(
    program: &Prog,
    graph: &Csr,
    properties: &mut [Prog::Prop],
    t_props: &mut [Prog::Prop],
    frontier: &mut Vec<VertexId>,
) {
    frontier.clear();
    for v in graph.vertices() {
        let apply_res = program.apply(v, properties[v.index()], t_props[v.index()], graph);
        if properties[v.index()] != apply_res {
            properties[v.index()] = apply_res;
            frontier.push(v);
        }
        t_props[v.index()] = program.identity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::{erdos_renyi, power_law};
    use higraph_vcpm::programs::{Bfs, PageRank, Sssp, Sswp, Wcc};
    use higraph_vcpm::reference;

    fn small_graph(seed: u64) -> Csr {
        erdos_renyi(128, 1024, 31, seed)
    }

    fn all_configs() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::higraph(),
            AcceleratorConfig::higraph_mini(),
            AcceleratorConfig::graphdyns(),
        ]
    }

    #[test]
    fn bfs_matches_reference_on_all_configs() {
        let g = small_graph(1);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog);
            assert_eq!(got.properties, expect.properties, "{name}");
            assert_eq!(got.metrics.iterations, expect.iterations, "{name}");
            assert_eq!(got.metrics.edges_processed, expect.edges_processed, "{name}");
        }
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph(2);
        let prog = Sssp::from_source(3);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph(), &g).run(&prog);
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn sswp_matches_reference() {
        let g = small_graph(3);
        let prog = Sswp::from_source(5);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::graphdyns(), &g).run(&prog);
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn wcc_matches_reference() {
        let g = small_graph(9);
        let prog = Wcc::new();
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph_mini(), &g).run(&prog);
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn pagerank_matches_reference_bit_exactly() {
        let g = power_law(200, 2000, 2.0, 15, 4);
        let prog = PageRank::new(8);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog);
            assert_eq!(got.properties, expect.properties, "{name}");
        }
    }

    #[test]
    fn ablation_configs_match_reference() {
        let g = small_graph(4);
        let prog = Bfs::from_source(1);
        let expect = reference::execute(&prog, &g);
        for opts in OptLevel::ALL {
            let cfg = AcceleratorConfig::higraph_with_opts(opts);
            let got = Engine::new(cfg, &g).run(&prog);
            assert_eq!(got.properties, expect.properties, "{}", opts.label());
        }
    }

    #[test]
    fn higraph_beats_graphdyns_on_skewed_graph() {
        // A low-degree power-law graph is front-end-bound, where HiGraph's
        // 32 MDP-routed channels shine (small RMAT graphs instead saturate
        // on their own hot-vertex serialization, hiding fabric effects —
        // see the dataset-scale notes in DESIGN.md).
        let g = power_law(4000, 28_000, 2.0, 31, 7);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let hi = Engine::new(AcceleratorConfig::higraph(), &g).run(&prog);
        let gd = Engine::new(AcceleratorConfig::graphdyns(), &g).run(&prog);
        let speedup = hi.metrics.speedup_over(&gd.metrics);
        assert!(speedup > 1.05, "speedup {speedup}");
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        let g = small_graph(5);
        let prog = Bfs::from_source(9999); // out of range → empty frontier
        let got = Engine::new(AcceleratorConfig::higraph(), &g).run(&prog);
        assert_eq!(got.metrics.cycles, 0);
        assert_eq!(got.metrics.iterations, 0);
    }

    #[test]
    fn isolated_source_runs_one_iteration() {
        let mut list = EdgeList::new(64);
        list.push(1, 2, 1).unwrap();
        let g = list.into_csr();
        let prog = Bfs::from_source(0); // source has no edges
        let got = Engine::new(AcceleratorConfig::higraph(), &g).run(&prog);
        assert_eq!(got.metrics.iterations, 1);
        assert_eq!(got.metrics.edges_processed, 0);
    }

    #[test]
    fn starvation_is_lower_with_full_opts() {
        let g = power_law(2000, 16_000, 2.0, 31, 11);
        let prog = PageRank::new(3);
        let base = Engine::new(
            AcceleratorConfig::higraph_with_opts(OptLevel::BASELINE),
            &g,
        )
        .run(&prog);
        let full =
            Engine::new(AcceleratorConfig::higraph_with_opts(OptLevel::OED), &g).run(&prog);
        assert!(
            full.metrics.vpe_starvation_cycles < base.metrics.vpe_starvation_cycles,
            "full {} vs base {}",
            full.metrics.vpe_starvation_cycles,
            base.metrics.vpe_starvation_cycles
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let g = small_graph(6);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.front_channels = 3;
        assert!(Engine::try_new(cfg, &g).is_err());
    }

    #[test]
    fn metrics_are_populated() {
        let g = small_graph(7);
        let got = Engine::new(AcceleratorConfig::higraph(), &g).run(&Bfs::from_source(0));
        let m = &got.metrics;
        assert!(m.cycles > 0);
        assert_eq!(m.cycles, m.scatter_cycles + m.apply_cycles);
        assert!(m.gteps() > 0.0);
        assert_eq!(m.frequency_ghz, 1.0);
        assert!(m.dataflow_net.delivered > 0);
    }

    #[test]
    fn sliced_run_matches_unsliced() {
        let g = power_law(400, 3600, 2.0, 31, 13);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let whole = Engine::new(AcceleratorConfig::higraph(), &g).run(&prog);
        for slices in [1usize, 2, 5] {
            let sliced = Engine::new(AcceleratorConfig::higraph(), &g)
                .run_sliced(&prog, slices, 64);
            assert_eq!(sliced.properties, whole.properties, "{slices} slices");
            assert_eq!(
                sliced.metrics.edges_processed,
                whole.metrics.edges_processed
            );
        }
    }

    #[test]
    fn double_buffering_hides_swap_time() {
        let g = power_law(600, 9000, 2.0, 31, 17);
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        let r = engine.run_sliced(&PageRank::new(3), 4, 16);
        assert!(r.swap_cycles_overlapped <= r.swap_cycles_sequential);
        assert!(
            r.total_cycles_double_buffered() <= r.total_cycles_single_buffered()
        );
        assert!(r.swap_cycles_sequential > 0);
    }

    #[test]
    fn sliced_radix_and_channel_variants() {
        let g = erdos_renyi(256, 2048, 15, 19);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        let mut cfg = AcceleratorConfig::higraph().scaled_to(16);
        cfg.radix = 4; // mixed-radix topology: 4 × 4
        let got = Engine::new(cfg, &g).run_sliced(&prog, 3, 32);
        assert_eq!(got.properties, expect.properties);
    }
}
