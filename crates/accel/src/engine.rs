//! The cycle-level accelerator engine (Fig. 6).
//!
//! One [`Engine`] executes a [`VertexProgram`] on a graph under a chosen
//! [`AcceleratorConfig`], producing both the algorithm result (validated
//! bit-exactly against the software reference) and the paper's
//! performance metrics. [`Engine::run_sliced`] additionally models the
//! Sec. 5.3 large-graph schedule: destination-interval slices processed
//! back to back, with single- or double-buffered slice replacement.
//!
//! # Pipeline
//!
//! The scatter pipeline is split across two composable stages driven by
//! the shared [`higraph_sim::Scheduler`]:
//!
//! * `backend::BackEnd` — stages 1–3 (vPE reduce, ePE
//!   process-edge, edge-bank reads), evaluated consumer-first so data
//!   advances one stage per cycle under backpressure;
//! * `frontend::FrontEnd` — stages 4–6 (Replay Engines, Offset
//!   Array arbitration, ActiveVertex fetch).
//!
//! Each scatter phase is one [`Scheduler::drain`] call over the combined
//! `ScatterPipeline`; there is no hand-rolled clock loop here. The
//! apply phase (identical for all designs) is modeled analytically in
//! the `apply` module.

use crate::apply::{apply_cycles, apply_phase};
use crate::backend::BackEnd;
use crate::cache::MemorySubsystem;
use crate::config::AcceleratorConfig;
use crate::frontend::FrontEnd;
use crate::metrics::Metrics;
use crate::netfactory::NetworkFactory;
use higraph_graph::slicing::{partition, slice_swap_cycles, Slice};
use higraph_graph::{Csr, VertexId};
use higraph_sim::{ClockedComponent, DrainStep, Scheduler, StallError};
use higraph_vcpm::VertexProgram;
use std::fmt;

/// A scatter phase failed to drain within its stall guard: the modeled
/// fabric (or memory) configuration deadlocked or livelocked under
/// backpressure.
///
/// This is a *diagnostic* error, not a panic: a mis-sized design point
/// fails its own run (one batch entry, one sweep cell) and reports what
/// it was doing, instead of aborting the whole process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// Name of the accelerator configuration that stalled.
    pub config: String,
    /// Chips in the run (1 for the serial engine).
    pub num_chips: usize,
    /// VCPM iteration (0-based) whose scatter phase stalled.
    pub iteration: u32,
    /// Edges the stalled iteration was scattering.
    pub iteration_edges: u64,
    /// Cross-chip packets staged for the stalled iteration (0 serial).
    pub staged_packets: u64,
    /// The scheduler's underlying stall report (cycles spent, guard).
    pub stall: StallError,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scatter phase of {} x{} stalled at iteration {}: {} \
             (iteration edges: {}, staged packets: {})",
            self.config,
            self.num_chips,
            self.iteration,
            self.stall,
            self.iteration_edges,
            self.staged_packets
        )
    }
}

impl std::error::Error for StallDiagnostic {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.stall)
    }
}

/// Result of running a program on the accelerator.
#[derive(Debug, Clone)]
pub struct RunResult<P> {
    /// Final Property Array (bit-identical to the reference executor).
    pub properties: Vec<P>,
    /// Performance metrics.
    pub metrics: Metrics,
}

/// Result of a sliced run ([`Engine::run_sliced`]).
#[derive(Debug, Clone)]
pub struct SlicedRunResult<P> {
    /// Final Property Array — identical to an unsliced run.
    pub properties: Vec<P>,
    /// Compute metrics (scatter + apply cycles, as in [`RunResult`]).
    pub metrics: Metrics,
    /// Number of slices processed per iteration.
    pub num_slices: usize,
    /// Total slice-replacement cycles if loads run sequentially with
    /// compute (single-buffered).
    pub swap_cycles_sequential: u64,
    /// Slice-replacement cycles left exposed under double buffering
    /// (Sec. 5.3: replacement overlaps the previous slice's compute).
    pub swap_cycles_overlapped: u64,
}

impl<P> SlicedRunResult<P> {
    /// End-to-end cycles with single-buffered slice replacement.
    pub fn total_cycles_single_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_sequential
    }

    /// End-to-end cycles with double-buffered slice replacement.
    pub fn total_cycles_double_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_overlapped
    }
}

/// The whole scatter pipeline: front-end and back-end clocked as one
/// component by the scheduler. One instance is one chip; the sharded
/// executor (`crate::sharded`) clocks several of them in lock step.
pub(crate) struct ScatterPipeline<P> {
    pub(crate) front: FrontEnd<P>,
    pub(crate) back: BackEnd<P>,
    /// The chip's off-chip memory path (cache → DRAM channels); the
    /// infinite stub unless the configuration models memory.
    pub(crate) mem: MemorySubsystem,
}

impl<P: Copy + 'static> ScatterPipeline<P> {
    pub(crate) fn new(factory: &NetworkFactory) -> Self {
        ScatterPipeline {
            front: FrontEnd::new(factory),
            back: BackEnd::new(factory),
            mem: factory.memory_subsystem(),
        }
    }
}

impl<P: Copy + 'static> ScatterPipeline<P> {
    /// Commits the per-cycle combinational effects of `cycles` idle
    /// steps (stall and starvation accounting, rotating grant chains);
    /// the sequential state was already advanced by
    /// [`ClockedComponent::skip`]. Drives [`DrainStep::Skipped`].
    pub(crate) fn commit_idle(&mut self, cycles: u64, metrics: &mut Metrics) {
        self.back.commit_idle(cycles, metrics);
        self.front.commit_idle(cycles, metrics);
        self.mem.commit_idle(cycles);
    }
}

impl<P: Copy + 'static> ClockedComponent for ScatterPipeline<P> {
    fn tick(&mut self) {
        self.front.tick();
        self.back.tick();
        self.mem.tick();
    }

    fn in_flight(&self) -> usize {
        self.front.in_flight() + self.back.in_flight() + self.mem.in_flight()
    }

    /// Short-circuiting drain check — evaluated every cycle by the
    /// scheduler (and per chip by the sharded drains).
    fn is_drained(&self) -> bool {
        self.back.is_drained() && self.front.is_drained() && self.mem.is_drained()
    }

    /// The pipeline is busy while the back-end holds anything (its next
    /// step always acts) or the front-end can move without memory; when
    /// everything held is waiting on DRAM, the memory subsystem's next
    /// event bounds the idle window.
    fn next_activity(&mut self) -> Option<u64> {
        if !self.back.is_drained() || self.front.has_immediate_work(&self.mem) {
            return Some(0);
        }
        match self.mem.next_activity() {
            Some(window) => Some(window),
            // Defensive: a held item the activity model failed to map to
            // a memory event must fall back to naive stepping, never to
            // a spurious stall.
            None if !self.is_drained() => Some(0),
            None => None,
        }
    }

    /// A modeled memory subsystem answers the dominant window queries
    /// through the DRAM event wheel; pipeline-local probes stay O(1).
    fn wheel_indexed(&self) -> bool {
        self.mem.wheel_indexed()
    }

    fn skip(&mut self, cycles: u64) {
        self.front.skip(cycles);
        self.back.skip(cycles);
        self.mem.skip(cycles);
    }
}

/// A cycle-level accelerator instance bound to a graph.
#[derive(Debug)]
pub struct Engine<'g> {
    factory: NetworkFactory,
    graph: &'g Csr,
    /// Overrides the workload-derived stall guard when set (bounding
    /// simulation time for serving deployments and stall-path tests).
    stall_guard: Option<u64>,
    /// Event-driven fast-forward of idle scatter cycles (on by default;
    /// bit-identical to per-cycle ticking — see `docs/simulation.md`).
    fast_forward: bool,
}

impl<'g> Engine<'g> {
    /// Creates an engine for `graph` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (see
    /// [`NetworkFactory::new`]). Use [`Engine::try_new`] for a fallible
    /// constructor.
    pub fn new(config: AcceleratorConfig, graph: &'g Csr) -> Self {
        // lint:allow(panic-freedom): documented panicking convenience constructor; Engine::try_new is the fallible path
        Engine::try_new(config, graph).expect("invalid accelerator configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message for invalid configurations.
    pub fn try_new(config: AcceleratorConfig, graph: &'g Csr) -> Result<Self, String> {
        Ok(Engine {
            factory: NetworkFactory::new(&config)?,
            graph,
            stall_guard: None,
            fast_forward: true,
        })
    }

    /// The configuration this engine simulates.
    pub fn config(&self) -> &AcceleratorConfig {
        self.factory.config()
    }

    /// Replaces the workload-derived stall guard with a fixed cycle
    /// budget per scatter phase (`None` restores the derived guard). A
    /// run that exceeds it fails with a [`StallDiagnostic`] instead of
    /// simulating indefinitely.
    pub fn set_stall_guard(&mut self, guard: Option<u64>) {
        self.stall_guard = guard;
    }

    /// Enables or disables the event-driven fast-forward of idle scatter
    /// cycles (on by default). Results — cycle counts and every metric —
    /// are bit-identical either way; disabling it only reverts host
    /// performance to per-cycle ticking (the `simspeed` repro target
    /// measures the difference).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    fn scheduler(&self) -> Scheduler {
        Scheduler::new().with_fast_forward(self.fast_forward)
    }

    /// Executes `program` to completion and returns properties + metrics.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if a scatter phase fails to drain
    /// within its stall guard (a mis-sized fabric or memory
    /// configuration); the run's partial work is discarded.
    pub fn run<Prog: VertexProgram>(
        &mut self,
        program: &Prog,
    ) -> Result<RunResult<Prog::Prop>, StallDiagnostic> {
        let config = self.factory.config();
        let m = config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut pipeline = ScatterPipeline::new(&self.factory);
        let mut scheduler = self.scheduler();
        let mut metrics = Metrics {
            frequency_ghz: config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            self.simulate_scatter(
                program,
                graph,
                &frontier,
                &properties,
                &mut t_props,
                &mut pipeline,
                &mut scheduler,
                &mut metrics,
            )?;
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles += apply_cycles(num_v, m);
            metrics.iterations += 1;
        }

        finalize_metrics(&mut metrics, &pipeline);
        Ok(RunResult {
            properties,
            metrics,
        })
    }

    /// Executes `program` with the Sec. 5.3 large-graph schedule: the graph
    /// is partitioned into `num_slices` destination-interval slices, each
    /// iteration scatters slice by slice over the same frontier, and slice
    /// replacement cost is modeled at `memory_bytes_per_cycle` off-chip
    /// bandwidth — both single- and double-buffered.
    ///
    /// The final Property Array is identical to [`Engine::run`]'s (the
    /// integration tests assert this); only the timing model differs.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if a slice's scatter phase fails to
    /// drain within its stall guard.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn run_sliced<Prog: VertexProgram>(
        &mut self,
        program: &Prog,
        num_slices: usize,
        memory_bytes_per_cycle: u64,
    ) -> Result<SlicedRunResult<Prog::Prop>, StallDiagnostic> {
        // lint:allow(panic-freedom): documented panic on the cold slicing entry point; zero slices has no semantics
        assert!(num_slices > 0, "need at least one slice");
        let config = self.factory.config();
        let m = config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();
        let slices: Vec<Slice> = partition(graph, num_slices);
        let swap_per_slice: Vec<u64> = slices
            .iter()
            .map(|s| slice_swap_cycles(s, memory_bytes_per_cycle))
            .collect();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut pipeline = ScatterPipeline::new(&self.factory);
        let mut scheduler = self.scheduler();
        let mut metrics = Metrics {
            frequency_ghz: config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };
        let mut swap_sequential = 0u64;
        let mut swap_overlapped = 0u64;

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            // Scatter each slice over the shared frontier & tProps. The
            // first slice's load is always exposed; later loads overlap
            // the previous slice's compute under double buffering.
            let mut prev_compute = 0u64;
            for (i, slice) in slices.iter().enumerate() {
                let before = metrics.scatter_cycles;
                self.simulate_scatter(
                    program,
                    &slice.graph,
                    &frontier,
                    &properties,
                    &mut t_props,
                    &mut pipeline,
                    &mut scheduler,
                    &mut metrics,
                )?;
                let compute = metrics.scatter_cycles - before;
                swap_sequential += swap_per_slice[i];
                swap_overlapped += if i == 0 {
                    swap_per_slice[i]
                } else {
                    swap_per_slice[i].saturating_sub(prev_compute)
                };
                prev_compute = compute;
            }
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles += apply_cycles(num_v, m);
            metrics.iterations += 1;
        }

        finalize_metrics(&mut metrics, &pipeline);
        Ok(SlicedRunResult {
            properties,
            metrics,
            num_slices,
            swap_cycles_sequential: swap_sequential,
            swap_cycles_overlapped: swap_overlapped,
        })
    }

    /// Simulates one scatter phase of `frontier` over `graph` (which may
    /// be a slice of the full graph), folding updates into `t_props`: one
    /// scheduler drain of the scatter pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if the drain exceeds its guard.
    #[allow(clippy::too_many_arguments)]
    fn simulate_scatter<Prog: VertexProgram>(
        &self,
        program: &Prog,
        graph: &Csr,
        frontier: &[VertexId],
        properties: &[Prog::Prop],
        t_props: &mut [Prog::Prop],
        pipeline: &mut ScatterPipeline<Prog::Prop>,
        scheduler: &mut Scheduler,
        metrics: &mut Metrics,
    ) -> Result<(), StallDiagnostic> {
        debug_assert!(
            pipeline.is_drained(),
            "scatter must start from a drained pipeline"
        );
        pipeline.front.load_frontier(frontier, properties);

        let iteration_edges: u64 = frontier.iter().map(|&v| graph.out_degree(v)).sum();
        let guard = self.stall_guard.unwrap_or_else(|| {
            derived_stall_guard(
                self.factory.config(),
                iteration_edges,
                frontier.len() as u64,
                1,
                0,
            )
        });
        scheduler.set_stall_guard(guard);
        let spent = scheduler
            .drain_with(pipeline, |pipeline, step| match step {
                DrainStep::Cycle(_) => {
                    // Stages evaluate consumer-first: back-end (1–3),
                    // then front-end (4–6) feeding the back-end's edge
                    // unit.
                    pipeline.back.step(program, graph, t_props, 0, metrics);
                    pipeline.front.step(
                        graph,
                        &mut pipeline.back.edge_access,
                        &mut pipeline.mem,
                        metrics,
                    );
                }
                DrainStep::Skipped { cycles, .. } => pipeline.commit_idle(cycles, metrics),
            })
            .map_err(|stall| StallDiagnostic {
                config: self.factory.config().name.clone(),
                num_chips: 1,
                iteration: metrics.iterations,
                iteration_edges,
                staged_packets: 0,
                stall,
            })?;
        metrics.scatter_cycles += spent;
        Ok(())
    }
}

/// The workload-derived stall guard of one scatter phase: compute slack
/// per edge, plus the link term for sharded runs, plus the worst-case
/// off-chip latency when memory is modeled.
pub(crate) fn derived_stall_guard(
    config: &AcceleratorConfig,
    iteration_edges: u64,
    frontier_len: u64,
    num_chips: u64,
    staged_packets: u64,
) -> u64 {
    let mem_bonus = config
        .memory
        .as_ref()
        .map(|m| m.stall_guard_bonus(iteration_edges, frontier_len))
        .unwrap_or(0);
    10_000 + iteration_edges * 64 * num_chips + staged_packets * 8 + mem_bonus
}

/// Harvests the fabric statistics through the unified
/// [`ClockedComponent::network_stats`] collection point.
pub(crate) fn finalize_metrics<P: Copy + 'static>(
    metrics: &mut Metrics,
    pipeline: &ScatterPipeline<P>,
) {
    metrics.cycles = metrics.scatter_cycles + metrics.apply_cycles;
    metrics.offset_net = pipeline.front.offset_stats();
    metrics.edge_net = pipeline.back.edge_stats();
    metrics.dataflow_net = pipeline.back.dataflow_stats();
    let cache = pipeline.mem.cache_stats();
    metrics.memory.cache_hits = cache.hits;
    metrics.memory.cache_misses = cache.misses;
    metrics.memory.dram = pipeline.mem.dram_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::{erdos_renyi, power_law};
    use higraph_vcpm::programs::{Bfs, PageRank, Sssp, Sswp, Wcc};
    use higraph_vcpm::reference;

    fn small_graph(seed: u64) -> Csr {
        erdos_renyi(128, 1024, 31, seed)
    }

    fn all_configs() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::higraph(),
            AcceleratorConfig::higraph_mini(),
            AcceleratorConfig::graphdyns(),
        ]
    }

    #[test]
    fn bfs_matches_reference_on_all_configs() {
        let g = small_graph(1);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{name}");
            assert_eq!(got.metrics.iterations, expect.iterations, "{name}");
            assert_eq!(
                got.metrics.edges_processed, expect.edges_processed,
                "{name}"
            );
        }
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph(2);
        let prog = Sssp::from_source(3);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn sswp_matches_reference() {
        let g = small_graph(3);
        let prog = Sswp::from_source(5);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::graphdyns(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn wcc_matches_reference() {
        let g = small_graph(9);
        let prog = Wcc::new();
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph_mini(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn pagerank_matches_reference_bit_exactly() {
        let g = power_law(200, 2000, 2.0, 15, 4);
        let prog = PageRank::new(8);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{name}");
        }
    }

    #[test]
    fn ablation_configs_match_reference() {
        let g = small_graph(4);
        let prog = Bfs::from_source(1);
        let expect = reference::execute(&prog, &g);
        for opts in OptLevel::ALL {
            let cfg = AcceleratorConfig::higraph_with_opts(opts);
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{}", opts.label());
        }
    }

    #[test]
    fn higraph_beats_graphdyns_on_skewed_graph() {
        // A low-degree power-law graph is front-end-bound, where HiGraph's
        // 32 MDP-routed channels shine (small RMAT graphs instead saturate
        // on their own hot-vertex serialization, hiding fabric effects —
        // see the dataset-scale notes in DESIGN.md).
        let g = power_law(4000, 28_000, 2.0, 31, 7);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let hi = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let gd = Engine::new(AcceleratorConfig::graphdyns(), &g)
            .run(&prog)
            .expect("no stall");
        let speedup = hi.metrics.speedup_over(&gd.metrics);
        assert!(speedup > 1.05, "speedup {speedup}");
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        let g = small_graph(5);
        let prog = Bfs::from_source(9999); // out of range → empty frontier
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.metrics.cycles, 0);
        assert_eq!(got.metrics.iterations, 0);
    }

    #[test]
    fn isolated_source_runs_one_iteration() {
        let mut list = EdgeList::new(64);
        list.push(1, 2, 1).unwrap();
        let g = list.into_csr();
        let prog = Bfs::from_source(0); // source has no edges
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.metrics.iterations, 1);
        assert_eq!(got.metrics.edges_processed, 0);
    }

    #[test]
    fn starvation_is_lower_with_full_opts() {
        let g = power_law(2000, 16_000, 2.0, 31, 11);
        let prog = PageRank::new(3);
        let base = Engine::new(AcceleratorConfig::higraph_with_opts(OptLevel::BASELINE), &g)
            .run(&prog)
            .expect("no stall");
        let full = Engine::new(AcceleratorConfig::higraph_with_opts(OptLevel::OED), &g)
            .run(&prog)
            .expect("no stall");
        assert!(
            full.metrics.vpe_starvation_cycles < base.metrics.vpe_starvation_cycles,
            "full {} vs base {}",
            full.metrics.vpe_starvation_cycles,
            base.metrics.vpe_starvation_cycles
        );
    }

    #[test]
    fn modeled_memory_keeps_results_and_costs_cycles() {
        use crate::config::MemoryConfig;
        let g = power_law(400, 3200, 2.0, 31, 21);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let free = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
        let priced = Engine::new(cfg, &g).run(&prog).expect("no stall");
        // timing model only: the algorithm result is untouched
        assert_eq!(priced.properties, free.properties);
        assert_eq!(priced.metrics.edges_processed, free.metrics.edges_processed);
        // …but off-chip fetches now cost cycles and are accounted
        assert!(priced.metrics.cycles > free.metrics.cycles);
        let mem = &priced.metrics.memory;
        assert!(mem.stall_cycles > 0, "finite memory must stall sometimes");
        assert!(mem.cache_misses > 0);
        assert!(mem.dram.completed >= mem.cache_misses);
        assert!(mem.cache_hit_rate() > 0.0 && mem.cache_hit_rate() <= 1.0);
        assert!(mem.row_hit_rate() >= 0.0 && mem.row_hit_rate() <= 1.0);
        // the infinite default keeps the memory counters at zero
        assert_eq!(
            free.metrics.memory,
            crate::metrics::MemoryMetrics::default()
        );
    }

    #[test]
    fn larger_cache_stalls_less() {
        use crate::config::MemoryConfig;
        let g = power_law(600, 6000, 2.0, 31, 25);
        let prog = PageRank::new(3);
        let run_with = |kb: usize| {
            let mut cfg = AcceleratorConfig::higraph();
            cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(kb));
            Engine::new(cfg, &g).run(&prog).expect("no stall").metrics
        };
        let small = run_with(4);
        let large = run_with(4096);
        assert!(
            small.memory.cache_hit_rate() < large.memory.cache_hit_rate(),
            "small {} vs large {}",
            small.memory.cache_hit_rate(),
            large.memory.cache_hit_rate()
        );
        assert!(
            small.memory.stall_cycles > large.memory.stall_cycles,
            "small {} vs large {}",
            small.memory.stall_cycles,
            large.memory.stall_cycles
        );
        assert!(small.cycles >= large.cycles);
    }

    #[test]
    fn fast_forward_is_bit_identical_under_modeled_memory() {
        use crate::config::MemoryConfig;
        let g = power_law(400, 3200, 2.0, 31, 33);
        let prog = PageRank::new(3);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
        let run = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run(&prog).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        assert_eq!(fast.properties, naive.properties);
        assert_eq!(fast.metrics, naive.metrics);
        assert!(fast.metrics.memory.stall_cycles > 0, "memory must stall");
    }

    #[test]
    fn fast_forward_is_bit_identical_on_sliced_runs() {
        use crate::config::MemoryConfig;
        let g = power_law(300, 2400, 2.0, 31, 35);
        let prog = Sssp::from_source(higraph_graph::stats::hub_vertex(&g).expect("non-empty").0);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(32));
        let run = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run_sliced(&prog, 3, 32).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        assert_eq!(fast.properties, naive.properties);
        assert_eq!(fast.metrics, naive.metrics);
        assert_eq!(fast.swap_cycles_sequential, naive.swap_cycles_sequential);
        assert_eq!(fast.swap_cycles_overlapped, naive.swap_cycles_overlapped);
    }

    #[test]
    fn stall_guard_override_fails_run_with_diagnostic() {
        let g = small_graph(10);
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        engine.set_stall_guard(Some(1));
        let err = engine.run(&Bfs::from_source(0)).expect_err("must stall");
        assert_eq!(err.config, "HiGraph");
        assert_eq!(err.num_chips, 1);
        assert_eq!(err.stall.limit, 1);
        let text = err.to_string();
        assert!(
            text.contains("HiGraph") && text.contains("stalled"),
            "{text}"
        );
        // restoring the derived guard completes the run
        engine.set_stall_guard(None);
        assert!(engine.run(&Bfs::from_source(0)).is_ok());
    }

    #[test]
    fn invalid_config_rejected() {
        let g = small_graph(6);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.front_channels = 3;
        assert!(Engine::try_new(cfg, &g).is_err());
    }

    #[test]
    fn metrics_are_populated() {
        let g = small_graph(7);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&Bfs::from_source(0))
            .expect("no stall");
        let m = &got.metrics;
        assert!(m.cycles > 0);
        assert_eq!(m.cycles, m.scatter_cycles + m.apply_cycles);
        assert!(m.gteps() > 0.0);
        assert_eq!(m.frequency_ghz, 1.0);
        assert!(m.dataflow_net.delivered > 0);
    }

    #[test]
    fn sliced_run_matches_unsliced() {
        let g = power_law(400, 3600, 2.0, 31, 13);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let whole = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        for slices in [1usize, 2, 5] {
            let sliced = Engine::new(AcceleratorConfig::higraph(), &g)
                .run_sliced(&prog, slices, 64)
                .expect("no stall");
            assert_eq!(sliced.properties, whole.properties, "{slices} slices");
            assert_eq!(
                sliced.metrics.edges_processed,
                whole.metrics.edges_processed
            );
        }
    }

    #[test]
    fn double_buffering_hides_swap_time() {
        let g = power_law(600, 9000, 2.0, 31, 17);
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        let r = engine
            .run_sliced(&PageRank::new(3), 4, 16)
            .expect("no stall");
        assert!(r.swap_cycles_overlapped <= r.swap_cycles_sequential);
        assert!(r.total_cycles_double_buffered() <= r.total_cycles_single_buffered());
        assert!(r.swap_cycles_sequential > 0);
    }

    #[test]
    fn sliced_radix_and_channel_variants() {
        let g = erdos_renyi(256, 2048, 15, 19);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        let mut cfg = AcceleratorConfig::higraph().scaled_to(16);
        cfg.radix = 4; // mixed-radix topology: 4 × 4
        let got = Engine::new(cfg, &g)
            .run_sliced(&prog, 3, 32)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn scheduler_cycle_accounting_matches_fabric_counters() {
        // The scheduler's per-drain cycle counts (summed into
        // `scatter_cycles`) must agree with the fabrics' own independent
        // counters: every fabric ticks exactly once per scatter cycle,
        // so its `NetworkStats::cycles` is a second clock to check the
        // scheduler against — the engine has no clock loop of its own.
        let g = small_graph(8);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&Bfs::from_source(0))
            .expect("no stall");
        assert!(got.metrics.scatter_cycles > 0);
        assert_eq!(got.metrics.dataflow_net.cycles, got.metrics.scatter_cycles);
        assert_eq!(got.metrics.offset_net.cycles, got.metrics.scatter_cycles);
        assert_eq!(got.metrics.edge_net.cycles, got.metrics.scatter_cycles);
    }
}
