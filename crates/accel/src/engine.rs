//! The cycle-level accelerator engine (Fig. 6).
//!
//! One [`Engine`] executes a [`VertexProgram`] on a graph under a chosen
//! [`AcceleratorConfig`], producing both the algorithm result (validated
//! bit-exactly against the software reference) and the paper's
//! performance metrics. [`Engine::run_sliced`] additionally models the
//! Sec. 5.3 large-graph schedule: destination-interval slices processed
//! back to back, with single- or double-buffered slice replacement.
//!
//! # Pipeline
//!
//! The scatter pipeline is split across two composable stages driven by
//! the shared [`higraph_sim::Scheduler`]:
//!
//! * `backend::BackEnd` — stages 1–3 (vPE reduce, ePE
//!   process-edge, edge-bank reads), evaluated consumer-first so data
//!   advances one stage per cycle under backpressure;
//! * `frontend::FrontEnd` — stages 4–6 (Replay Engines, Offset
//!   Array arbitration, ActiveVertex fetch).
//!
//! Each scatter phase is one [`Scheduler::drain`] call over the combined
//! `ScatterPipeline`; there is no hand-rolled clock loop here. The
//! apply phase (identical for all designs) is modeled analytically in
//! the `apply` module.

use crate::apply::{apply_cycles, apply_phase};
use crate::backend::BackEnd;
use crate::cache::MemorySubsystem;
use crate::config::AcceleratorConfig;
use crate::faults::FaultRuntime;
use crate::frontend::FrontEnd;
use crate::metrics::Metrics;
use crate::netfactory::NetworkFactory;
use higraph_graph::slicing::{partition, slice_swap_cycles, Slice};
use higraph_graph::{Csr, VertexId};
use higraph_sim::{
    content_checksum, ClockedComponent, DrainError, DrainStep, RunControl, Scheduler, SnapError,
    SnapReader, SnapValue, SnapWriter, Snapshot, StallError,
};
use higraph_vcpm::VertexProgram;
use std::fmt;

/// A scatter phase failed to drain within its stall guard: the modeled
/// fabric (or memory) configuration deadlocked or livelocked under
/// backpressure.
///
/// This is a *diagnostic* error, not a panic: a mis-sized design point
/// fails its own run (one batch entry, one sweep cell) and reports what
/// it was doing, instead of aborting the whole process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// Name of the accelerator configuration that stalled.
    pub config: String,
    /// Chips in the run (1 for the serial engine).
    pub num_chips: usize,
    /// VCPM iteration (0-based) whose scatter phase stalled.
    pub iteration: u32,
    /// Edges the stalled iteration was scattering.
    pub iteration_edges: u64,
    /// Cross-chip packets staged for the stalled iteration (0 serial).
    pub staged_packets: u64,
    /// The scheduler's underlying stall report (cycles spent, guard).
    pub stall: StallError,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scatter phase of {} x{} stalled at iteration {}: {} \
             (iteration edges: {}, staged packets: {})",
            self.config,
            self.num_chips,
            self.iteration,
            self.stall,
            self.iteration_edges,
            self.staged_packets
        )
    }
}

impl std::error::Error for StallDiagnostic {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.stall)
    }
}

/// Result of running a program on the accelerator.
#[derive(Debug, Clone)]
pub struct RunResult<P> {
    /// Final Property Array (bit-identical to the reference executor).
    pub properties: Vec<P>,
    /// Performance metrics.
    pub metrics: Metrics,
}

/// Result of a sliced run ([`Engine::run_sliced`]).
#[derive(Debug, Clone)]
pub struct SlicedRunResult<P> {
    /// Final Property Array — identical to an unsliced run.
    pub properties: Vec<P>,
    /// Compute metrics (scatter + apply cycles, as in [`RunResult`]).
    pub metrics: Metrics,
    /// Number of slices processed per iteration.
    pub num_slices: usize,
    /// Total slice-replacement cycles if loads run sequentially with
    /// compute (single-buffered).
    pub swap_cycles_sequential: u64,
    /// Slice-replacement cycles left exposed under double buffering
    /// (Sec. 5.3: replacement overlaps the previous slice's compute).
    pub swap_cycles_overlapped: u64,
}

impl<P> SlicedRunResult<P> {
    /// End-to-end cycles with single-buffered slice replacement.
    pub fn total_cycles_single_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_sequential
    }

    /// End-to-end cycles with double-buffered slice replacement.
    pub fn total_cycles_double_buffered(&self) -> u64 {
        self.metrics.cycles + self.swap_cycles_overlapped
    }
}

/// The whole scatter pipeline: front-end and back-end clocked as one
/// component by the scheduler. One instance is one chip; the sharded
/// executor (`crate::sharded`) clocks several of them in lock step.
pub(crate) struct ScatterPipeline<P> {
    pub(crate) front: FrontEnd<P>,
    pub(crate) back: BackEnd<P>,
    /// The chip's off-chip memory path (cache → DRAM channels); the
    /// infinite stub unless the configuration models memory.
    pub(crate) mem: MemorySubsystem,
}

impl<P: Copy + 'static> ScatterPipeline<P> {
    pub(crate) fn new(factory: &NetworkFactory) -> Self {
        ScatterPipeline {
            front: FrontEnd::new(factory),
            back: BackEnd::new(factory),
            mem: factory.memory_subsystem(),
        }
    }
}

impl<P: Copy + 'static> ScatterPipeline<P> {
    /// Commits the per-cycle combinational effects of `cycles` idle
    /// steps (stall and starvation accounting, rotating grant chains);
    /// the sequential state was already advanced by
    /// [`ClockedComponent::skip`]. Drives [`DrainStep::Skipped`].
    pub(crate) fn commit_idle(&mut self, cycles: u64, metrics: &mut Metrics) {
        self.back.commit_idle(cycles, metrics);
        self.front.commit_idle(cycles, metrics);
        self.mem.commit_idle(cycles);
    }
}

impl<P: Copy + 'static> ClockedComponent for ScatterPipeline<P> {
    fn tick(&mut self) {
        self.front.tick();
        self.back.tick();
        self.mem.tick();
    }

    fn in_flight(&self) -> usize {
        self.front.in_flight() + self.back.in_flight() + self.mem.in_flight()
    }

    /// Short-circuiting drain check — evaluated every cycle by the
    /// scheduler (and per chip by the sharded drains).
    fn is_drained(&self) -> bool {
        self.back.is_drained() && self.front.is_drained() && self.mem.is_drained()
    }

    /// The pipeline is busy while the back-end holds anything (its next
    /// step always acts) or the front-end can move without memory; when
    /// everything held is waiting on DRAM, the memory subsystem's next
    /// event bounds the idle window.
    fn next_activity(&mut self) -> Option<u64> {
        if !self.back.is_drained() || self.front.has_immediate_work(&self.mem) {
            return Some(0);
        }
        match self.mem.next_activity() {
            Some(window) => Some(window),
            // Defensive: a held item the activity model failed to map to
            // a memory event must fall back to naive stepping, never to
            // a spurious stall.
            None if !self.is_drained() => Some(0),
            None => None,
        }
    }

    /// A modeled memory subsystem answers the dominant window queries
    /// through the DRAM event wheel; pipeline-local probes stay O(1).
    fn wheel_indexed(&self) -> bool {
        self.mem.wheel_indexed()
    }

    fn skip(&mut self, cycles: u64) {
        self.front.skip(cycles);
        self.back.skip(cycles);
        self.mem.skip(cycles);
    }
}

/// One chip's complete microarchitectural state: front-end, back-end,
/// and the memory path, in pipeline order.
impl<P: SnapValue + 'static> Snapshot for ScatterPipeline<P> {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(b"PIPE");
        self.front.save(w);
        self.back.save(w);
        self.mem.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"PIPE")?;
        self.front.load(r)?;
        self.back.load(r)?;
        self.mem.load(r)
    }
}

/// An engine checkpoint taken at a committed iteration boundary: opaque
/// versioned bytes (the `higraph_sim::snapshot` wire format) plus the
/// boundary coordinates for reporting. Restoring it into an engine built
/// from the same graph and configuration continues the run bit-exactly
/// (`docs/robustness.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The serialized run state (header + payload, checksummed).
    pub bytes: Vec<u8>,
    /// Aggregate simulated cycles (scatter + apply) at the boundary.
    pub cycles: u64,
    /// Committed VCPM iterations at the boundary.
    pub iterations: u32,
}

/// Outcome of a controlled run ([`Engine::run_controlled`]).
// Done carries the full result inline so matching on an outcome reads
// exactly like consuming `Engine::run`; outcomes are matched once and
// destructured, never stored in bulk, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunOutcome<P> {
    /// Ran to completion — identical to what [`Engine::run`] returns.
    Done(RunResult<P>),
    /// Parked at a committed boundary (explicit park request or an
    /// exhausted cycle budget) with a restorable checkpoint.
    Parked(Checkpoint),
    /// Cancelled mid-drain; partial work is discarded.
    Cancelled,
}

/// Why a controlled run or resume failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// The checkpoint was rejected (corrupt bytes, version skew, or a
    /// graph/configuration mismatch).
    Snapshot(SnapError),
    /// A scatter phase stalled, exactly as in an uncontrolled run.
    Stall(StallDiagnostic),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Snapshot(e) => e.fmt(f),
            ControlError::Stall(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<SnapError> for ControlError {
    fn from(e: SnapError) -> Self {
        ControlError::Snapshot(e)
    }
}

impl From<StallDiagnostic> for ControlError {
    fn from(e: StallDiagnostic) -> Self {
        ControlError::Stall(e)
    }
}

/// The complete per-run state of a serial engine between iteration
/// boundaries — everything a checkpoint must capture.
struct SerialRunState<P> {
    properties: Vec<P>,
    t_props: Vec<P>,
    frontier: Vec<VertexId>,
    pipeline: ScatterPipeline<P>,
    metrics: Metrics,
}

/// A cycle-level accelerator instance bound to a graph.
#[derive(Debug)]
pub struct Engine<'g> {
    factory: NetworkFactory,
    graph: &'g Csr,
    /// Overrides the workload-derived stall guard when set (bounding
    /// simulation time for serving deployments and stall-path tests).
    stall_guard: Option<u64>,
    /// Event-driven fast-forward of idle scatter cycles (on by default;
    /// bit-identical to per-cycle ticking — see `docs/simulation.md`).
    fast_forward: bool,
}

impl<'g> Engine<'g> {
    /// Creates an engine for `graph` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (see
    /// [`NetworkFactory::new`]). Use [`Engine::try_new`] for a fallible
    /// constructor.
    pub fn new(config: AcceleratorConfig, graph: &'g Csr) -> Self {
        // lint:allow(panic-freedom): documented panicking convenience constructor; Engine::try_new is the fallible path
        Engine::try_new(config, graph).expect("invalid accelerator configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message for invalid configurations.
    pub fn try_new(config: AcceleratorConfig, graph: &'g Csr) -> Result<Self, String> {
        Ok(Engine {
            factory: NetworkFactory::new(&config)?,
            graph,
            stall_guard: None,
            fast_forward: true,
        })
    }

    /// The configuration this engine simulates.
    pub fn config(&self) -> &AcceleratorConfig {
        self.factory.config()
    }

    /// Replaces the workload-derived stall guard with a fixed cycle
    /// budget per scatter phase (`None` restores the derived guard). A
    /// run that exceeds it fails with a [`StallDiagnostic`] instead of
    /// simulating indefinitely.
    pub fn set_stall_guard(&mut self, guard: Option<u64>) {
        self.stall_guard = guard;
    }

    /// Enables or disables the event-driven fast-forward of idle scatter
    /// cycles (on by default). Results — cycle counts and every metric —
    /// are bit-identical either way; disabling it only reverts host
    /// performance to per-cycle ticking (the `simspeed` repro target
    /// measures the difference).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Fault windows land on exact global cycles, so a fault plan forces
    /// per-cycle ticking regardless of the fast-forward setting.
    fn scheduler(&self) -> Scheduler {
        let fast = self.fast_forward && self.factory.config().fault_plan.is_none();
        Scheduler::new().with_fast_forward(fast)
    }

    /// Expands the configuration's fault plan (if any) for this serial,
    /// single-chip engine.
    fn fault_runtime(&self, dram_channels: usize) -> Option<FaultRuntime> {
        self.factory
            .config()
            .fault_plan
            .as_ref()
            .map(|plan| FaultRuntime::new(plan, 1, dram_channels))
    }

    /// Executes `program` to completion and returns properties + metrics.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if a scatter phase fails to drain
    /// within its stall guard (a mis-sized fabric or memory
    /// configuration); the run's partial work is discarded.
    pub fn run<Prog: VertexProgram>(
        &mut self,
        program: &Prog,
    ) -> Result<RunResult<Prog::Prop>, StallDiagnostic> {
        let config = self.factory.config();
        let m = config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut pipeline = ScatterPipeline::new(&self.factory);
        let mut scheduler = self.scheduler();
        let mut metrics = Metrics {
            frequency_ghz: config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };

        let faults = self.fault_runtime(pipeline.mem.dram_channels());
        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            self.simulate_scatter(
                program,
                graph,
                &frontier,
                &properties,
                &mut t_props,
                &mut pipeline,
                &mut scheduler,
                &mut metrics,
                faults.as_ref(),
            )?;
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles += apply_cycles(num_v, m);
            metrics.iterations += 1;
        }

        finalize_metrics(&mut metrics, &pipeline);
        Ok(RunResult {
            properties,
            metrics,
        })
    }

    /// Executes `program` under cooperative run control: `control` can
    /// cancel the run mid-drain, or park it — by explicit request or an
    /// exhausted simulated-cycle budget — at the next committed
    /// iteration boundary, where the drained pipeline checkpoints into a
    /// restorable [`Checkpoint`]. A run that completes is bit-identical
    /// to [`Engine::run`] (cycles and every metric).
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] exactly as [`Engine::run`] does.
    pub fn run_controlled<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
    ) -> Result<RunOutcome<Prog::Prop>, StallDiagnostic>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let state = self.fresh_state(program);
        self.drive(program, control, state)
    }

    /// Continues a parked run from `checkpoint` under `control`. The
    /// engine must be built over the same graph and configuration that
    /// produced the checkpoint; mismatches are rejected with a precise
    /// error before any state is touched. A pending park request on
    /// `control` is cleared (otherwise the resume would re-park at the
    /// first boundary); callers raising a cycle budget set it before the
    /// call.
    ///
    /// # Errors
    ///
    /// [`ControlError::Snapshot`] for a rejected checkpoint,
    /// [`ControlError::Stall`] as for [`Engine::run`].
    pub fn resume_controlled<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
        checkpoint: &[u8],
    ) -> Result<RunOutcome<Prog::Prop>, ControlError>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let mut state = self.fresh_state(program);
        self.load_checkpoint(&mut state, checkpoint)?;
        control.clear_park();
        self.drive(program, control, state)
            .map_err(ControlError::Stall)
    }

    /// The state [`Engine::run`] starts from, bundled for the controlled
    /// paths (checkpoints restore over it).
    fn fresh_state<Prog: VertexProgram>(&self, program: &Prog) -> SerialRunState<Prog::Prop> {
        let config = self.factory.config();
        SerialRunState {
            properties: self
                .graph
                .vertices()
                .map(|v| program.init_prop(v, self.graph))
                .collect(),
            t_props: vec![program.identity(); self.graph.num_vertices() as usize],
            frontier: program.initial_frontier(self.graph),
            pipeline: ScatterPipeline::new(&self.factory),
            metrics: Metrics {
                frequency_ghz: config.effective_frequency_ghz(),
                vpe_starvation_per_channel: vec![0; config.back_channels],
                ..Metrics::default()
            },
        }
    }

    /// The controlled run loop: [`Engine::run`]'s loop plus cancel
    /// checks and boundary parking. Cancellation discards the partial
    /// state wholesale, so mid-drain mutations never leak.
    fn drive<Prog>(
        &mut self,
        program: &Prog,
        control: &RunControl,
        mut st: SerialRunState<Prog::Prop>,
    ) -> Result<RunOutcome<Prog::Prop>, StallDiagnostic>
    where
        Prog: VertexProgram,
        Prog::Prop: SnapValue,
    {
        let graph = self.graph;
        let m = self.factory.config().back_channels;
        let num_v = graph.num_vertices();
        let mut scheduler = self.scheduler();
        let faults = self.fault_runtime(st.pipeline.mem.dram_channels());
        while !st.frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if st.metrics.iterations >= cap {
                    break;
                }
            }
            if control.cancelled() {
                return Ok(RunOutcome::Cancelled);
            }
            if control.should_park(st.metrics.scatter_cycles + st.metrics.apply_cycles) {
                return Ok(RunOutcome::Parked(self.save_checkpoint(&st)));
            }
            let completed = self.scatter_phase(
                program,
                graph,
                &st.frontier,
                &st.properties,
                &mut st.t_props,
                &mut st.pipeline,
                &mut scheduler,
                &mut st.metrics,
                Some(control),
                faults.as_ref(),
            )?;
            if !completed {
                return Ok(RunOutcome::Cancelled);
            }
            apply_phase(
                program,
                graph,
                &mut st.properties,
                &mut st.t_props,
                &mut st.frontier,
            );
            st.metrics.apply_cycles += apply_cycles(num_v, m);
            st.metrics.iterations += 1;
        }

        finalize_metrics(&mut st.metrics, &st.pipeline);
        Ok(RunOutcome::Done(RunResult {
            properties: st.properties,
            metrics: st.metrics,
        }))
    }

    /// Serializes a boundary state: identity context (graph hash,
    /// canonical configuration encoding) followed by the run variables
    /// and the full pipeline.
    fn save_checkpoint<P: SnapValue + 'static>(&self, st: &SerialRunState<P>) -> Checkpoint {
        let mut w = SnapWriter::new();
        w.tag(b"ENGC");
        w.u64(self.graph.content_hash());
        w.u64(content_checksum(
            self.factory.config().canonical_encoding().as_bytes(),
        ));
        st.metrics.save(&mut w);
        w.usize(st.frontier.len());
        for v in &st.frontier {
            w.u32(v.0);
        }
        w.seq(st.properties.iter());
        w.seq(st.t_props.iter());
        st.pipeline.save(&mut w);
        Checkpoint {
            bytes: w.finish(),
            cycles: st.metrics.scatter_cycles + st.metrics.apply_cycles,
            iterations: st.metrics.iterations,
        }
    }

    /// Restores a checkpoint over a freshly initialized state, verifying
    /// the identity context first.
    fn load_checkpoint<P: SnapValue + 'static>(
        &self,
        st: &mut SerialRunState<P>,
        checkpoint: &[u8],
    ) -> Result<(), SnapError> {
        let num_v = self.graph.num_vertices() as usize;
        let mut r = SnapReader::open(checkpoint)?;
        r.expect_tag(b"ENGC")?;
        let graph_hash = r.u64()?;
        if graph_hash != self.graph.content_hash() {
            return Err(SnapError::new(
                "checkpoint was taken on a different graph (content hash mismatch)",
            ));
        }
        let config_sum = r.u64()?;
        let live_sum = content_checksum(self.factory.config().canonical_encoding().as_bytes());
        if config_sum != live_sum {
            return Err(SnapError::new(
                "checkpoint was taken under a different accelerator configuration",
            ));
        }
        st.metrics.load(&mut r)?;
        let frontier_len = r.usize()?;
        if frontier_len > num_v {
            return Err(SnapError::new(format!(
                "frontier length {frontier_len} exceeds vertex count {num_v}"
            )));
        }
        st.frontier.clear();
        for _ in 0..frontier_len {
            let raw = r.u32()?;
            if raw as usize >= num_v {
                return Err(SnapError::new(format!(
                    "frontier vertex {raw} out of range (graph has {num_v})"
                )));
            }
            st.frontier.push(VertexId(raw));
        }
        let properties: Vec<P> = r.seq(num_v)?;
        if properties.len() != num_v {
            return Err(SnapError::new(format!(
                "property array length {} does not match vertex count {num_v}",
                properties.len()
            )));
        }
        st.properties = properties;
        let t_props: Vec<P> = r.seq(num_v)?;
        if t_props.len() != num_v {
            return Err(SnapError::new(format!(
                "tProperty array length {} does not match vertex count {num_v}",
                t_props.len()
            )));
        }
        st.t_props = t_props;
        st.pipeline.load(&mut r)?;
        r.expect_exhausted()
    }

    /// Executes `program` with the Sec. 5.3 large-graph schedule: the graph
    /// is partitioned into `num_slices` destination-interval slices, each
    /// iteration scatters slice by slice over the same frontier, and slice
    /// replacement cost is modeled at `memory_bytes_per_cycle` off-chip
    /// bandwidth — both single- and double-buffered.
    ///
    /// The final Property Array is identical to [`Engine::run`]'s (the
    /// integration tests assert this); only the timing model differs.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if a slice's scatter phase fails to
    /// drain within its stall guard.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn run_sliced<Prog: VertexProgram>(
        &mut self,
        program: &Prog,
        num_slices: usize,
        memory_bytes_per_cycle: u64,
    ) -> Result<SlicedRunResult<Prog::Prop>, StallDiagnostic> {
        // lint:allow(panic-freedom): documented panic on the cold slicing entry point; zero slices has no semantics
        assert!(num_slices > 0, "need at least one slice");
        let config = self.factory.config();
        let m = config.back_channels;
        let graph = self.graph;
        let num_v = graph.num_vertices();
        let slices: Vec<Slice> = partition(graph, num_slices);
        let swap_per_slice: Vec<u64> = slices
            .iter()
            .map(|s| slice_swap_cycles(s, memory_bytes_per_cycle))
            .collect();

        let mut properties: Vec<Prog::Prop> = graph
            .vertices()
            .map(|v| program.init_prop(v, graph))
            .collect();
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); num_v as usize];
        let mut pipeline = ScatterPipeline::new(&self.factory);
        let mut scheduler = self.scheduler();
        let mut metrics = Metrics {
            frequency_ghz: config.effective_frequency_ghz(),
            vpe_starvation_per_channel: vec![0; m],
            ..Metrics::default()
        };
        let mut swap_sequential = 0u64;
        let mut swap_overlapped = 0u64;
        let faults = self.fault_runtime(pipeline.mem.dram_channels());

        let mut frontier: Vec<VertexId> = program.initial_frontier(graph);
        while !frontier.is_empty() {
            if let Some(cap) = program.max_iterations() {
                if metrics.iterations >= cap {
                    break;
                }
            }
            // Scatter each slice over the shared frontier & tProps. The
            // first slice's load is always exposed; later loads overlap
            // the previous slice's compute under double buffering.
            let mut prev_compute = 0u64;
            for (i, slice) in slices.iter().enumerate() {
                let before = metrics.scatter_cycles;
                self.simulate_scatter(
                    program,
                    &slice.graph,
                    &frontier,
                    &properties,
                    &mut t_props,
                    &mut pipeline,
                    &mut scheduler,
                    &mut metrics,
                    faults.as_ref(),
                )?;
                let compute = metrics.scatter_cycles - before;
                swap_sequential += swap_per_slice[i];
                swap_overlapped += if i == 0 {
                    swap_per_slice[i]
                } else {
                    swap_per_slice[i].saturating_sub(prev_compute)
                };
                prev_compute = compute;
            }
            apply_phase(program, graph, &mut properties, &mut t_props, &mut frontier);
            metrics.apply_cycles += apply_cycles(num_v, m);
            metrics.iterations += 1;
        }

        finalize_metrics(&mut metrics, &pipeline);
        Ok(SlicedRunResult {
            properties,
            metrics,
            num_slices,
            swap_cycles_sequential: swap_sequential,
            swap_cycles_overlapped: swap_overlapped,
        })
    }

    /// Simulates one scatter phase of `frontier` over `graph` (which may
    /// be a slice of the full graph), folding updates into `t_props`: one
    /// scheduler drain of the scatter pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if the drain exceeds its guard.
    #[allow(clippy::too_many_arguments)]
    fn simulate_scatter<Prog: VertexProgram>(
        &self,
        program: &Prog,
        graph: &Csr,
        frontier: &[VertexId],
        properties: &[Prog::Prop],
        t_props: &mut [Prog::Prop],
        pipeline: &mut ScatterPipeline<Prog::Prop>,
        scheduler: &mut Scheduler,
        metrics: &mut Metrics,
        faults: Option<&FaultRuntime>,
    ) -> Result<(), StallDiagnostic> {
        let completed = self.scatter_phase(
            program, graph, frontier, properties, t_props, pipeline, scheduler, metrics, None,
            faults,
        )?;
        debug_assert!(completed, "uncontrolled drain cannot be interrupted");
        Ok(())
    }

    /// The scatter drain underneath both the plain and the controlled
    /// run paths. With `control`, the drain polls for cancellation and
    /// returns `Ok(false)` when interrupted (the pipeline is then
    /// mid-flight and must be discarded). With `faults`, each drained
    /// cycle applies the fault windows active at that point of the
    /// global scatter-cycle timeline.
    ///
    /// # Errors
    ///
    /// Returns a [`StallDiagnostic`] if the drain exceeds its guard.
    #[allow(clippy::too_many_arguments)]
    fn scatter_phase<Prog: VertexProgram>(
        &self,
        program: &Prog,
        graph: &Csr,
        frontier: &[VertexId],
        properties: &[Prog::Prop],
        t_props: &mut [Prog::Prop],
        pipeline: &mut ScatterPipeline<Prog::Prop>,
        scheduler: &mut Scheduler,
        metrics: &mut Metrics,
        control: Option<&RunControl>,
        faults: Option<&FaultRuntime>,
    ) -> Result<bool, StallDiagnostic> {
        debug_assert!(
            pipeline.is_drained(),
            "scatter must start from a drained pipeline"
        );
        pipeline.front.load_frontier(frontier, properties);

        let iteration_edges: u64 = frontier.iter().map(|&v| graph.out_degree(v)).sum();
        let guard = self.stall_guard.unwrap_or_else(|| {
            derived_stall_guard(
                self.factory.config(),
                iteration_edges,
                frontier.len() as u64,
                1,
                0,
            )
        }) + faults.map_or(0, FaultRuntime::guard_bonus);
        scheduler.set_stall_guard(guard);
        // Fault windows index the *global* scatter timeline, so a window
        // that straddles an iteration boundary keeps holding the
        // pipeline across drains.
        let base = metrics.scatter_cycles;
        let callback = |pipeline: &mut ScatterPipeline<Prog::Prop>, step: DrainStep| match step {
            DrainStep::Cycle(cycle) => {
                if let Some(f) = faults {
                    let now = base + cycle;
                    f.set_brownouts(now, |_, channel, active| {
                        pipeline.mem.set_dram_channel_paused(channel, active);
                    });
                    if f.chip_paused(now, 0) {
                        // Clock-gated: held packets wait, nothing steps.
                        return;
                    }
                }
                // Stages evaluate consumer-first: back-end (1–3),
                // then front-end (4–6) feeding the back-end's edge
                // unit.
                pipeline.back.step(program, graph, t_props, 0, metrics);
                pipeline.front.step(
                    graph,
                    &mut pipeline.back.edge_access,
                    &mut pipeline.mem,
                    metrics,
                );
            }
            DrainStep::Skipped { cycles, .. } => pipeline.commit_idle(cycles, metrics),
        };
        let drained = match control {
            Some(ctrl) => scheduler.drain_ctrl(pipeline, ctrl, callback),
            None => scheduler
                .drain_with(pipeline, callback)
                .map_err(DrainError::Stall),
        };
        let spent = match drained {
            Ok(spent) => spent,
            Err(DrainError::Interrupted { .. }) => return Ok(false),
            Err(DrainError::Stall(stall)) => {
                return Err(StallDiagnostic {
                    config: self.factory.config().name.clone(),
                    num_chips: 1,
                    iteration: metrics.iterations,
                    iteration_edges,
                    staged_packets: 0,
                    stall,
                })
            }
        };
        metrics.scatter_cycles += spent;
        Ok(true)
    }
}

/// The workload-derived stall guard of one scatter phase: compute slack
/// per edge, plus the link term for sharded runs, plus the worst-case
/// off-chip latency when memory is modeled.
pub(crate) fn derived_stall_guard(
    config: &AcceleratorConfig,
    iteration_edges: u64,
    frontier_len: u64,
    num_chips: u64,
    staged_packets: u64,
) -> u64 {
    let mem_bonus = config
        .memory
        .as_ref()
        .map(|m| m.stall_guard_bonus(iteration_edges, frontier_len))
        .unwrap_or(0);
    10_000 + iteration_edges * 64 * num_chips + staged_packets * 8 + mem_bonus
}

/// Harvests the fabric statistics through the unified
/// [`ClockedComponent::network_stats`] collection point.
pub(crate) fn finalize_metrics<P: Copy + 'static>(
    metrics: &mut Metrics,
    pipeline: &ScatterPipeline<P>,
) {
    metrics.cycles = metrics.scatter_cycles + metrics.apply_cycles;
    metrics.offset_net = pipeline.front.offset_stats();
    metrics.edge_net = pipeline.back.edge_stats();
    metrics.dataflow_net = pipeline.back.dataflow_stats();
    let cache = pipeline.mem.cache_stats();
    metrics.memory.cache_hits = cache.hits;
    metrics.memory.cache_misses = cache.misses;
    metrics.memory.dram = pipeline.mem.dram_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::{erdos_renyi, power_law};
    use higraph_vcpm::programs::{Bfs, PageRank, Sssp, Sswp, Wcc};
    use higraph_vcpm::reference;

    fn small_graph(seed: u64) -> Csr {
        erdos_renyi(128, 1024, 31, seed)
    }

    fn all_configs() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::higraph(),
            AcceleratorConfig::higraph_mini(),
            AcceleratorConfig::graphdyns(),
        ]
    }

    #[test]
    fn bfs_matches_reference_on_all_configs() {
        let g = small_graph(1);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{name}");
            assert_eq!(got.metrics.iterations, expect.iterations, "{name}");
            assert_eq!(
                got.metrics.edges_processed, expect.edges_processed,
                "{name}"
            );
        }
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small_graph(2);
        let prog = Sssp::from_source(3);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn sswp_matches_reference() {
        let g = small_graph(3);
        let prog = Sswp::from_source(5);
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::graphdyns(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn wcc_matches_reference() {
        let g = small_graph(9);
        let prog = Wcc::new();
        let expect = reference::execute(&prog, &g);
        let got = Engine::new(AcceleratorConfig::higraph_mini(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn pagerank_matches_reference_bit_exactly() {
        let g = power_law(200, 2000, 2.0, 15, 4);
        let prog = PageRank::new(8);
        let expect = reference::execute(&prog, &g);
        for cfg in all_configs() {
            let name = cfg.name.clone();
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{name}");
        }
    }

    #[test]
    fn ablation_configs_match_reference() {
        let g = small_graph(4);
        let prog = Bfs::from_source(1);
        let expect = reference::execute(&prog, &g);
        for opts in OptLevel::ALL {
            let cfg = AcceleratorConfig::higraph_with_opts(opts);
            let got = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(got.properties, expect.properties, "{}", opts.label());
        }
    }

    #[test]
    fn higraph_beats_graphdyns_on_skewed_graph() {
        // A low-degree power-law graph is front-end-bound, where HiGraph's
        // 32 MDP-routed channels shine (small RMAT graphs instead saturate
        // on their own hot-vertex serialization, hiding fabric effects —
        // see the dataset-scale notes in DESIGN.md).
        let g = power_law(4000, 28_000, 2.0, 31, 7);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Bfs::from_source(src);
        let hi = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let gd = Engine::new(AcceleratorConfig::graphdyns(), &g)
            .run(&prog)
            .expect("no stall");
        let speedup = hi.metrics.speedup_over(&gd.metrics);
        assert!(speedup > 1.05, "speedup {speedup}");
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        let g = small_graph(5);
        let prog = Bfs::from_source(9999); // out of range → empty frontier
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.metrics.cycles, 0);
        assert_eq!(got.metrics.iterations, 0);
    }

    #[test]
    fn isolated_source_runs_one_iteration() {
        let mut list = EdgeList::new(64);
        list.push(1, 2, 1).unwrap();
        let g = list.into_csr();
        let prog = Bfs::from_source(0); // source has no edges
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        assert_eq!(got.metrics.iterations, 1);
        assert_eq!(got.metrics.edges_processed, 0);
    }

    #[test]
    fn starvation_is_lower_with_full_opts() {
        let g = power_law(2000, 16_000, 2.0, 31, 11);
        let prog = PageRank::new(3);
        let base = Engine::new(AcceleratorConfig::higraph_with_opts(OptLevel::BASELINE), &g)
            .run(&prog)
            .expect("no stall");
        let full = Engine::new(AcceleratorConfig::higraph_with_opts(OptLevel::OED), &g)
            .run(&prog)
            .expect("no stall");
        assert!(
            full.metrics.vpe_starvation_cycles < base.metrics.vpe_starvation_cycles,
            "full {} vs base {}",
            full.metrics.vpe_starvation_cycles,
            base.metrics.vpe_starvation_cycles
        );
    }

    #[test]
    fn modeled_memory_keeps_results_and_costs_cycles() {
        use crate::config::MemoryConfig;
        let g = power_law(400, 3200, 2.0, 31, 21);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let free = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
        let priced = Engine::new(cfg, &g).run(&prog).expect("no stall");
        // timing model only: the algorithm result is untouched
        assert_eq!(priced.properties, free.properties);
        assert_eq!(priced.metrics.edges_processed, free.metrics.edges_processed);
        // …but off-chip fetches now cost cycles and are accounted
        assert!(priced.metrics.cycles > free.metrics.cycles);
        let mem = &priced.metrics.memory;
        assert!(mem.stall_cycles > 0, "finite memory must stall sometimes");
        assert!(mem.cache_misses > 0);
        assert!(mem.dram.completed >= mem.cache_misses);
        assert!(mem.cache_hit_rate() > 0.0 && mem.cache_hit_rate() <= 1.0);
        assert!(mem.row_hit_rate() >= 0.0 && mem.row_hit_rate() <= 1.0);
        // the infinite default keeps the memory counters at zero
        assert_eq!(
            free.metrics.memory,
            crate::metrics::MemoryMetrics::default()
        );
    }

    #[test]
    fn larger_cache_stalls_less() {
        use crate::config::MemoryConfig;
        let g = power_law(600, 6000, 2.0, 31, 25);
        let prog = PageRank::new(3);
        let run_with = |kb: usize| {
            let mut cfg = AcceleratorConfig::higraph();
            cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(kb));
            Engine::new(cfg, &g).run(&prog).expect("no stall").metrics
        };
        let small = run_with(4);
        let large = run_with(4096);
        assert!(
            small.memory.cache_hit_rate() < large.memory.cache_hit_rate(),
            "small {} vs large {}",
            small.memory.cache_hit_rate(),
            large.memory.cache_hit_rate()
        );
        assert!(
            small.memory.stall_cycles > large.memory.stall_cycles,
            "small {} vs large {}",
            small.memory.stall_cycles,
            large.memory.stall_cycles
        );
        assert!(small.cycles >= large.cycles);
    }

    #[test]
    fn fast_forward_is_bit_identical_under_modeled_memory() {
        use crate::config::MemoryConfig;
        let g = power_law(400, 3200, 2.0, 31, 33);
        let prog = PageRank::new(3);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(16));
        let run = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run(&prog).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        assert_eq!(fast.properties, naive.properties);
        assert_eq!(fast.metrics, naive.metrics);
        assert!(fast.metrics.memory.stall_cycles > 0, "memory must stall");
    }

    #[test]
    fn fast_forward_is_bit_identical_on_sliced_runs() {
        use crate::config::MemoryConfig;
        let g = power_law(300, 2400, 2.0, 31, 35);
        let prog = Sssp::from_source(higraph_graph::stats::hub_vertex(&g).expect("non-empty").0);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(32));
        let run = |fast: bool| {
            let mut engine = Engine::new(cfg.clone(), &g);
            engine.set_fast_forward(fast);
            engine.run_sliced(&prog, 3, 32).expect("no stall")
        };
        let naive = run(false);
        let fast = run(true);
        assert_eq!(fast.properties, naive.properties);
        assert_eq!(fast.metrics, naive.metrics);
        assert_eq!(fast.swap_cycles_sequential, naive.swap_cycles_sequential);
        assert_eq!(fast.swap_cycles_overlapped, naive.swap_cycles_overlapped);
    }

    #[test]
    fn stall_guard_override_fails_run_with_diagnostic() {
        let g = small_graph(10);
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        engine.set_stall_guard(Some(1));
        let err = engine.run(&Bfs::from_source(0)).expect_err("must stall");
        assert_eq!(err.config, "HiGraph");
        assert_eq!(err.num_chips, 1);
        assert_eq!(err.stall.limit, 1);
        let text = err.to_string();
        assert!(
            text.contains("HiGraph") && text.contains("stalled"),
            "{text}"
        );
        // restoring the derived guard completes the run
        engine.set_stall_guard(None);
        assert!(engine.run(&Bfs::from_source(0)).is_ok());
    }

    #[test]
    fn invalid_config_rejected() {
        let g = small_graph(6);
        let mut cfg = AcceleratorConfig::higraph();
        cfg.front_channels = 3;
        assert!(Engine::try_new(cfg, &g).is_err());
    }

    #[test]
    fn metrics_are_populated() {
        let g = small_graph(7);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&Bfs::from_source(0))
            .expect("no stall");
        let m = &got.metrics;
        assert!(m.cycles > 0);
        assert_eq!(m.cycles, m.scatter_cycles + m.apply_cycles);
        assert!(m.gteps() > 0.0);
        assert_eq!(m.frequency_ghz, 1.0);
        assert!(m.dataflow_net.delivered > 0);
    }

    #[test]
    fn sliced_run_matches_unsliced() {
        let g = power_law(400, 3600, 2.0, 31, 13);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let whole = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        for slices in [1usize, 2, 5] {
            let sliced = Engine::new(AcceleratorConfig::higraph(), &g)
                .run_sliced(&prog, slices, 64)
                .expect("no stall");
            assert_eq!(sliced.properties, whole.properties, "{slices} slices");
            assert_eq!(
                sliced.metrics.edges_processed,
                whole.metrics.edges_processed
            );
        }
    }

    #[test]
    fn double_buffering_hides_swap_time() {
        let g = power_law(600, 9000, 2.0, 31, 17);
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        let r = engine
            .run_sliced(&PageRank::new(3), 4, 16)
            .expect("no stall");
        assert!(r.swap_cycles_overlapped <= r.swap_cycles_sequential);
        assert!(r.total_cycles_double_buffered() <= r.total_cycles_single_buffered());
        assert!(r.swap_cycles_sequential > 0);
    }

    #[test]
    fn sliced_radix_and_channel_variants() {
        let g = erdos_renyi(256, 2048, 15, 19);
        let prog = Bfs::from_source(0);
        let expect = reference::execute(&prog, &g);
        let mut cfg = AcceleratorConfig::higraph().scaled_to(16);
        cfg.radix = 4; // mixed-radix topology: 4 × 4
        let got = Engine::new(cfg, &g)
            .run_sliced(&prog, 3, 32)
            .expect("no stall");
        assert_eq!(got.properties, expect.properties);
    }

    #[test]
    fn scheduler_cycle_accounting_matches_fabric_counters() {
        // The scheduler's per-drain cycle counts (summed into
        // `scatter_cycles`) must agree with the fabrics' own independent
        // counters: every fabric ticks exactly once per scatter cycle,
        // so its `NetworkStats::cycles` is a second clock to check the
        // scheduler against — the engine has no clock loop of its own.
        let g = small_graph(8);
        let got = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&Bfs::from_source(0))
            .expect("no stall");
        assert!(got.metrics.scatter_cycles > 0);
        assert_eq!(got.metrics.dataflow_net.cycles, got.metrics.scatter_cycles);
        assert_eq!(got.metrics.offset_net.cycles, got.metrics.scatter_cycles);
        assert_eq!(got.metrics.edge_net.cycles, got.metrics.scatter_cycles);
    }

    #[test]
    fn controlled_run_completes_bit_identical() {
        let g = power_law(300, 2700, 2.0, 31, 71);
        let prog = PageRank::new(3);
        let plain = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");
        let control = RunControl::new();
        let outcome = Engine::new(AcceleratorConfig::higraph(), &g)
            .run_controlled(&prog, &control)
            .expect("no stall");
        match outcome {
            RunOutcome::Done(r) => {
                assert_eq!(r.properties, plain.properties);
                assert_eq!(r.metrics, plain.metrics);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn park_and_resume_is_bit_identical() {
        let g = power_law(300, 2700, 2.0, 31, 73);
        let src = higraph_graph::stats::hub_vertex(&g).expect("non-empty").0;
        let prog = Sssp::from_source(src);
        let plain = Engine::new(AcceleratorConfig::higraph(), &g)
            .run(&prog)
            .expect("no stall");

        let control = RunControl::new();
        control.set_budget_cycles(Some(1)); // park at the first boundary
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        let parked = match engine.run_controlled(&prog, &control).expect("no stall") {
            RunOutcome::Parked(ck) => ck,
            other => panic!("expected a parked run, got {other:?}"),
        };
        assert!(parked.cycles >= 1);
        assert!(parked.iterations >= 1);

        control.set_budget_cycles(None);
        let resumed = engine
            .resume_controlled(&prog, &control, &parked.bytes)
            .expect("no stall");
        match resumed {
            RunOutcome::Done(r) => {
                assert_eq!(r.properties, plain.properties);
                assert_eq!(r.metrics, plain.metrics, "restore must be cycle-exact");
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_discards_the_run() {
        let g = small_graph(9);
        let control = RunControl::new();
        control.request_cancel();
        let outcome = Engine::new(AcceleratorConfig::higraph(), &g)
            .run_controlled(&Bfs::from_source(0), &control)
            .expect("no stall");
        assert!(matches!(outcome, RunOutcome::Cancelled));
    }

    #[test]
    fn checkpoint_rejects_mismatched_identity() {
        let g = small_graph(10);
        let prog = Bfs::from_source(0);
        let control = RunControl::new();
        control.request_park();
        let parked = match Engine::new(AcceleratorConfig::higraph(), &g)
            .run_controlled(&prog, &control)
            .expect("no stall")
        {
            RunOutcome::Parked(ck) => ck,
            other => panic!("expected a parked run, got {other:?}"),
        };

        // Wrong graph.
        let other_graph = small_graph(11);
        let err = Engine::new(AcceleratorConfig::higraph(), &other_graph)
            .resume_controlled(&prog, &control, &parked.bytes)
            .expect_err("must reject");
        assert!(err.to_string().contains("graph"), "{err}");

        // Wrong configuration.
        let err = Engine::new(AcceleratorConfig::higraph_mini(), &g)
            .resume_controlled(&prog, &control, &parked.bytes)
            .expect_err("must reject");
        assert!(err.to_string().contains("configuration"), "{err}");

        // Corrupted payload.
        let mut bad = parked.bytes.clone();
        let last = bad.len() - 20; // inside the payload, before the checksum
        bad[last] ^= 0xFF;
        assert!(Engine::new(AcceleratorConfig::higraph(), &g)
            .resume_controlled(&prog, &control, &bad)
            .is_err());
    }

    #[test]
    fn fault_plan_degrades_gracefully_and_keeps_results() {
        use crate::config::{FaultPlan, MemoryConfig};
        let g = power_law(300, 2700, 2.0, 31, 79);
        let prog = PageRank::new(2);
        for memory in [None, Some(MemoryConfig::hbm2().with_cache_kb(16))] {
            let mut clean_cfg = AcceleratorConfig::higraph();
            clean_cfg.memory = memory;
            let clean = Engine::new(clean_cfg.clone(), &g)
                .run(&prog)
                .expect("no stall");
            let mut cfg = clean_cfg;
            cfg.fault_plan = Some(FaultPlan {
                seed: 11,
                events: 6,
                max_duration: 400,
                horizon: clean.metrics.scatter_cycles.max(1),
            });
            let faulty = Engine::new(cfg.clone(), &g).run(&prog).expect("no stall");
            // Faults only stall; the algorithm result is untouched.
            assert_eq!(faulty.properties, clean.properties);
            assert!(faulty.metrics.scatter_cycles >= clean.metrics.scatter_cycles);
            // Deterministic: the same plan reproduces the same cycles.
            let again = Engine::new(cfg, &g).run(&prog).expect("no stall");
            assert_eq!(again.metrics, faulty.metrics);
        }
    }
}
