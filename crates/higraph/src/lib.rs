//! # HiGraph — reproduction of the DAC 2022 paper
//! *"Alleviating Datapath Conflicts and Design Centralization in Graph
//! Analytics Acceleration"* (Lin et al.).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `higraph-graph` | CSR format, generators, Table 2 datasets, slicing |
//! | [`vcpm`] | `higraph-vcpm` | Vertex-Centric Programming Model + BFS/SSSP/SSWP/PR |
//! | [`sim`] | `higraph-sim` | cycle-level kernel: FIFOs, arbiters, crossbar, banks, **cycle scheduler** ([`sim::clock`]) |
//! | [`mdp`] | `higraph-mdp` | **MDP-network**: topology generator, cycle model, range variant, Verilog emitter |
//! | [`pool`] | `higraph-pool` | **work-stealing host-core pool**: batch jobs, drain-team leases, occupancy stats |
//! | [`accel`] | `higraph-accel` | HiGraph / HiGraph-mini / GraphDynS engines, metrics, **parallel batch runner** ([`accel::runner`]) |
//! | [`model`] | `higraph-model` | frequency (Fig. 4), area/power (Sec. 5.4), layout (Fig. 7) |
//! | — | `higraph-bench` | `repro` binary, `higraph-serve` job service, figure sweeps, Criterion benches (depends on this facade) |
//!
//! # Quickstart
//!
//! ```
//! use higraph::prelude::*;
//!
//! // a small synthetic social network
//! let graph = higraph::graph::gen::power_law(1_000, 8_000, 2.0, 63, 42);
//! let source = higraph::graph::stats::hub_vertex(&graph).expect("non-empty").0;
//!
//! // run BFS on the cycle-accurate HiGraph model…
//! let mut engine = Engine::new(AcceleratorConfig::higraph(), &graph);
//! let result = engine.run(&Bfs::from_source(source)).expect("well-sized config");
//!
//! // …and validate bit-exactly against the software reference
//! let reference = higraph::vcpm::execute(&Bfs::from_source(source), &graph);
//! assert_eq!(result.properties, reference.properties);
//! println!("{:.2} GTEPS", result.metrics.gteps());
//! ```

#![forbid(unsafe_code)]

pub use higraph_accel as accel;
pub use higraph_graph as graph;
pub use higraph_mdp as mdp;
pub use higraph_model as model;
pub use higraph_pool as pool;
pub use higraph_sim as sim;
pub use higraph_vcpm as vcpm;

/// The most common imports, in one place.
pub mod prelude {
    pub use higraph_accel::{
        AcceleratorConfig, BatchError, BatchJob, BatchReport, BatchResult, BatchRunner, Checkpoint,
        ControlError, Engine, FaultPlan, MemoryConfig, MemoryMetrics, Metrics, NetworkKind,
        OptLevel, RunMode, RunOutcome, ShardConfig, ShardedEngine, ShardedOutcome,
        ShardedRunResult, StallDiagnostic,
    };
    pub use higraph_graph::{Csr, Dataset, EdgeList, VertexId};
    pub use higraph_mdp::{MdpNetwork, Topology};
    pub use higraph_sim::{ClockedComponent, DrainStep, Network, RunControl, Scheduler};
    pub use higraph_vcpm::programs::{Bfs, MultiSourceBfs, PageRank, Sssp, Sswp, Wcc};
    pub use higraph_vcpm::{VertexProgram, INF};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = AcceleratorConfig::higraph();
        assert_eq!(cfg.front_channels, 32);
        let _ = Topology::new(8, 2).expect("valid");
        let _ = Bfs::from_source(0);
        assert_ne!(INF, u64::MAX); // saturation headroom
    }
}
