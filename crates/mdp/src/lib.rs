//! Multiple-stage Decentralized Propagation network (MDP-network).
//!
//! This crate is the paper's primary contribution. An MDP-network replaces
//! the crossbar/arbitration fabrics of previous graph accelerators with a
//! butterfly-style network of small buffered stages, *trading latency for
//! throughput*:
//!
//! * each stage is built from **2W2R modules** — two 2-write-1-read FIFOs
//!   whose inputs are a pair of channels (Fig. 5 b/d);
//! * data is propagated **deterministically**, one address bit (for radix
//!   2) per stage, until it reaches its destination channel;
//! * the number of interacting channels per stage is bounded by the radix,
//!   so the design avoids the frequency decline of large crossbars
//!   (design centralization, Fig. 4).
//!
//! Provided here:
//!
//! * [`topology::Topology`] — Algorithm 1, the automatic generator of the
//!   stage/pairing structure for any power-of-radix channel count;
//! * [`network::MdpNetwork`] — the cycle-level model implementing
//!   [`higraph_sim::Network`];
//! * [`range`] — the Edge-Array-access variant: [`range::ReplayEngine`]
//!   splits `{Off, nOff}` into `{Off, Len}` chunks, the
//!   [`range::RangeMdpNetwork`] splits lengths at each stage as target
//!   ranges narrow, and [`range::Dispatcher`]s fan the final small ranges
//!   onto consecutive banks (Sec. 4.2, Fig. 6);
//! * [`naive::NaiveFifoNetwork`] — the nW1R-FIFO strawman of Fig. 5 (b/c),
//!   kept as a baseline;
//! * [`verilog`] — the automatic Verilog generator mirroring the paper's
//!   open-source artifact.
//!
//! # Example
//!
//! ```
//! use higraph_mdp::{MdpNetwork, topology::Topology};
//! use higraph_sim::{ClockedComponent, Network};
//!
//! #[derive(Debug)]
//! struct P(usize);
//! impl higraph_sim::Packet for P {
//!     fn dest(&self) -> usize { self.0 }
//! }
//!
//! let topo = Topology::new(8, 2).expect("8 channels, radix 2");
//! let mut net = MdpNetwork::new(topo, 4);
//! net.push(5, P(2)).ok();
//! for _ in 0..4 { net.tick(); }
//! assert_eq!(net.pop(2).map(|p| p.0), Some(2));
//! ```

#![forbid(unsafe_code)]

pub(crate) mod maskbits;
pub mod naive;
pub mod network;
pub mod range;
pub mod topology;
pub mod verilog;

pub use naive::NaiveFifoNetwork;
pub use network::MdpNetwork;
pub use range::{Dispatcher, EdgeRange, RangeMdpNetwork, ReplayEngine};
pub use topology::{Topology, TopologyError};
