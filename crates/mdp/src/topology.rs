//! Algorithm 1: the automatic MDP-network topology generator.
//!
//! Given `n` total channels and a `radix` (the write-port count of the
//! FIFOs a stage is built from), the generator produces `log_radix(n)`
//! stages. In stage `i` the channels are divided into `radix^i` groups with
//! the same target range; within each group, `channel_step` apart, `radix`
//! channels are connected to one module, routed by the next
//! `log2(radix)` bits of the destination address (most-significant first).
//!
//! The paper uses radix 2 (Sec. 5.4 finds larger radices re-introduce
//! design centralization); the generator supports any power-of-two radix
//! so the Sec. 5.4 design-option experiment can be reproduced.

use std::error::Error;
use std::fmt;

/// Errors from topology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// `n` is not a power of `radix` (so stages would not divide evenly).
    NotPowerOfRadix {
        /// Requested channel count.
        n: usize,
        /// Requested radix.
        radix: usize,
    },
    /// The radix is not a power of two of at least 2.
    BadRadix {
        /// Requested radix.
        radix: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotPowerOfRadix { n, radix } => {
                write!(f, "channel count {n} is not a power of radix {radix}")
            }
            TopologyError::BadRadix { radix } => {
                write!(f, "radix {radix} must be a power of two and at least 2")
            }
        }
    }
}

impl Error for TopologyError {}

/// One module of a stage: `radix` input channels sharing `radix` FIFOs,
/// routed by an address-bit field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// The channels connected to this module (ascending; `radix` of them).
    pub channels: Vec<usize>,
}

/// One stage of the MDP-network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Modules of this stage; together they cover every channel once.
    pub modules: Vec<Module>,
    /// Right-shift applied to a destination address before masking, i.e.
    /// this stage routes on bits `[shift, shift + log2(radix))`.
    pub shift: u32,
    /// `radix - 1`: the mask selecting this stage's address-bit field.
    pub mask: usize,
}

impl Stage {
    /// The index (within its module) a packet destined for `dest` takes.
    #[inline]
    pub fn slot_for(&self, dest: usize) -> usize {
        (dest >> self.shift) & self.mask
    }
}

/// A generated MDP-network topology (Algorithm 1 output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    radix: usize,
    stages: Vec<Stage>,
    /// `module_of[stage][channel]` -> (module index, slot within module).
    module_of: Vec<Vec<(usize, usize)>>,
}

impl Topology {
    /// Runs Algorithm 1 for `n` channels with the given `radix`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadRadix`] unless `radix` is a power of two
    /// ≥ 2, and [`TopologyError::NotPowerOfRadix`] unless `n` is a power of
    /// `radix` (equivalently: a power of two whose log is divisible by
    /// `log2(radix)`).
    ///
    /// # Example
    ///
    /// ```
    /// use higraph_mdp::topology::Topology;
    ///
    /// let t = Topology::new(4, 2)?;
    /// assert_eq!(t.num_stages(), 2);
    /// // Paper's toy example: stage 1 pairs {0,2} and {1,3} on addr[1].
    /// assert_eq!(t.stage(0).modules[0].channels, vec![0, 2]);
    /// assert_eq!(t.stage(0).modules[1].channels, vec![1, 3]);
    /// assert_eq!(t.stage(0).shift, 1);
    /// // Stage 2 pairs {0,1} and {2,3} on addr[0].
    /// assert_eq!(t.stage(1).modules[0].channels, vec![0, 1]);
    /// assert_eq!(t.stage(1).shift, 0);
    /// # Ok::<(), higraph_mdp::TopologyError>(())
    /// ```
    pub fn new(n: usize, radix: usize) -> Result<Self, TopologyError> {
        if radix < 2 || !radix.is_power_of_two() {
            return Err(TopologyError::BadRadix { radix });
        }
        let bits_per_stage = radix.trailing_zeros();
        if n < radix || !n.is_power_of_two() || !n.trailing_zeros().is_multiple_of(bits_per_stage) {
            return Err(TopologyError::NotPowerOfRadix { n, radix });
        }
        let num_stages = (n.trailing_zeros() / bits_per_stage) as usize;
        Topology::from_stage_radices(n, &vec![radix; num_stages])
    }

    /// Runs Algorithm 1 with a *mixed-radix* stage list: as many
    /// full-`radix` stages as the channel count's bit width allows, then
    /// one final narrower stage for the leftover bits. This makes every
    /// power-of-two channel count valid for every power-of-two radix
    /// (e.g. 32 channels with radix 4 → stages of radix 4, 4, 2).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadRadix`] unless `radix` is a power of two
    /// ≥ 2, and [`TopologyError::NotPowerOfRadix`] unless `n` is a power of
    /// two ≥ 2.
    ///
    /// # Example
    ///
    /// ```
    /// use higraph_mdp::topology::Topology;
    ///
    /// let t = Topology::new_mixed(32, 4)?;
    /// assert_eq!(t.num_stages(), 3); // 4 × 4 × 2
    /// assert_eq!(t.route(7, 19).last(), Some(&19));
    /// # Ok::<(), higraph_mdp::TopologyError>(())
    /// ```
    pub fn new_mixed(n: usize, radix: usize) -> Result<Self, TopologyError> {
        if radix < 2 || !radix.is_power_of_two() {
            return Err(TopologyError::BadRadix { radix });
        }
        if n < 2 || !n.is_power_of_two() {
            return Err(TopologyError::NotPowerOfRadix { n, radix });
        }
        let bits_per_stage = radix.trailing_zeros();
        let total_bits = n.trailing_zeros();
        let mut radices = vec![radix; (total_bits / bits_per_stage) as usize];
        let leftover = total_bits % bits_per_stage;
        if leftover > 0 {
            radices.push(1 << leftover);
        }
        Topology::from_stage_radices(n, &radices)
    }

    /// Runs Algorithm 1 for an explicit per-stage radix list whose product
    /// must equal `n`.
    fn from_stage_radices(n: usize, radices: &[usize]) -> Result<Self, TopologyError> {
        debug_assert_eq!(radices.iter().product::<usize>(), n);
        let total_bits = n.trailing_zeros();
        let mut stages = Vec::with_capacity(radices.len());
        let mut module_of = Vec::with_capacity(radices.len());
        let mut bits_consumed = 0u32;
        let mut target_group = 1usize;
        for &r in radices {
            // Algorithm 1 body, generalized from radix 2 to radix r.
            let group_base = n / target_group;
            let channel_step = group_base / r;
            let mut modules = Vec::with_capacity(n / r);
            let mut lookup = vec![(0usize, 0usize); n];
            for j in 0..target_group {
                let real_base = group_base * j;
                for k in 0..channel_step {
                    let channels: Vec<usize> =
                        (0..r).map(|t| real_base + k + t * channel_step).collect();
                    let module_idx = modules.len();
                    for (slot, &c) in channels.iter().enumerate() {
                        lookup[c] = (module_idx, slot);
                    }
                    modules.push(Module { channels });
                }
            }
            bits_consumed += r.trailing_zeros();
            stages.push(Stage {
                modules,
                shift: total_bits - bits_consumed,
                mask: r - 1,
            });
            module_of.push(lookup);
            target_group *= r;
        }
        Ok(Topology {
            n,
            radix: radices.iter().copied().max().unwrap_or(2),
            stages,
            module_of,
        })
    }

    /// Whether every stage uses the same radix (required by the Verilog
    /// generator, which emits one FIFO module shared by all stages).
    pub fn is_uniform_radix(&self) -> bool {
        self.stages.iter().all(|s| s.mask == self.stages[0].mask)
    }

    /// Number of channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.n
    }

    /// The radix (FIFO write-port count).
    #[inline]
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of stages (`log_radix(n)`).
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The `i`-th stage.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_stages()`.
    #[inline]
    pub fn stage(&self, i: usize) -> &Stage {
        &self.stages[i]
    }

    /// All stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The channel a packet in channel `channel` moves to when routed by
    /// stage `stage` toward destination `dest`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[inline]
    pub fn next_channel(&self, stage: usize, channel: usize, dest: usize) -> usize {
        let st = &self.stages[stage];
        let (module_idx, _) = self.module_of[stage][channel];
        let slot = st.slot_for(dest);
        st.modules[module_idx].channels[slot]
    }

    /// The full path of channels a packet takes from `input` to `dest`
    /// (one entry per stage, ending at `dest`).
    pub fn route(&self, input: usize, dest: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.num_stages());
        let mut c = input;
        for s in 0..self.num_stages() {
            c = self.next_channel(s, c, dest);
            path.push(c);
        }
        path
    }

    /// The paper's "target range": the number of destination channels still
    /// reachable from a packet's position after it has been routed by
    /// stages `0..=stage`. Fig. 6 annotates these as "Target Range 16 → 8 →
    /// 4 …".
    pub fn target_range(&self, stage: usize) -> usize {
        1 << self.stages[stage].shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_toy_example_n4() {
        let t = Topology::new(4, 2).unwrap();
        assert_eq!(t.num_stages(), 2);
        // stage 1 (paper): {0,2} and {1,3} with addr[1]
        assert_eq!(t.stage(0).modules.len(), 2);
        assert_eq!(t.stage(0).modules[0].channels, vec![0, 2]);
        assert_eq!(t.stage(0).modules[1].channels, vec![1, 3]);
        assert_eq!(t.stage(0).shift, 1);
        // stage 2: {0,1} from group 1, {2,3} from group 2 with addr[0]
        assert_eq!(t.stage(1).modules[0].channels, vec![0, 1]);
        assert_eq!(t.stage(1).modules[1].channels, vec![2, 3]);
        assert_eq!(t.stage(1).shift, 0);
    }

    #[test]
    fn every_route_reaches_destination() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let t = Topology::new(n, 2).unwrap();
            for input in 0..n {
                for dest in 0..n {
                    let path = t.route(input, dest);
                    assert_eq!(path.len(), t.num_stages());
                    assert_eq!(*path.last().unwrap(), dest, "n={n} {input}->{dest}");
                }
            }
        }
    }

    #[test]
    fn radix_4_routes_correctly() {
        let t = Topology::new(16, 4).unwrap();
        assert_eq!(t.num_stages(), 2);
        for input in 0..16 {
            for dest in 0..16 {
                assert_eq!(*t.route(input, dest).last().unwrap(), dest);
            }
        }
    }

    #[test]
    fn radix_equals_n_single_stage() {
        let t = Topology::new(8, 8).unwrap();
        assert_eq!(t.num_stages(), 1);
        assert_eq!(t.stage(0).modules.len(), 1);
        assert_eq!(t.stage(0).modules[0].channels.len(), 8);
        for dest in 0..8 {
            assert_eq!(t.next_channel(0, 3, dest), dest);
        }
    }

    #[test]
    fn each_stage_covers_all_channels_once() {
        let t = Topology::new(32, 2).unwrap();
        for st in t.stages() {
            let mut seen = [false; 32];
            for m in &st.modules {
                for &c in &m.channels {
                    assert!(!seen[c], "channel {c} appears twice");
                    seen[c] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(matches!(
            Topology::new(6, 2),
            Err(TopologyError::NotPowerOfRadix { .. })
        ));
        assert!(matches!(
            Topology::new(8, 3),
            Err(TopologyError::BadRadix { .. })
        ));
        assert!(matches!(
            Topology::new(8, 4), // 8 is not a power of 4
            Err(TopologyError::NotPowerOfRadix { .. })
        ));
        assert!(matches!(
            Topology::new(1, 2),
            Err(TopologyError::NotPowerOfRadix { .. })
        ));
        assert!(Topology::new(16, 4).is_ok());
    }

    #[test]
    fn error_display() {
        let e = Topology::new(6, 2).unwrap_err();
        assert!(e.to_string().contains("not a power of radix"));
        let e = Topology::new(8, 5).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }
}

#[cfg(test)]
mod target_range_tests {
    use super::*;

    #[test]
    fn target_range_narrows_per_stage() {
        let t = Topology::new(16, 2).unwrap();
        let ranges: Vec<_> = (0..t.num_stages()).map(|s| t.target_range(s)).collect();
        assert_eq!(ranges, vec![8, 4, 2, 1]);
    }
}

#[cfg(test)]
mod mixed_radix_tests {
    use super::*;

    #[test]
    fn mixed_radix_decomposes_leftover_bits() {
        let t = Topology::new_mixed(32, 4).unwrap(); // 4 x 4 x 2
        assert_eq!(t.num_stages(), 3);
        assert_eq!(t.stage(0).mask, 3);
        assert_eq!(t.stage(1).mask, 3);
        assert_eq!(t.stage(2).mask, 1);
        assert!(!t.is_uniform_radix());
    }

    #[test]
    fn mixed_radix_routes_all_pairs() {
        for (n, radix) in [(32usize, 4usize), (8, 4), (128, 8), (16, 16), (2, 4)] {
            let t = Topology::new_mixed(n, radix).unwrap();
            for input in 0..n {
                for dest in 0..n {
                    assert_eq!(
                        *t.route(input, dest).last().unwrap(),
                        dest,
                        "n={n} radix={radix} {input}->{dest}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_cases_match_plain_constructor() {
        for (n, radix) in [(16usize, 2usize), (16, 4), (64, 8)] {
            assert_eq!(
                Topology::new(n, radix).unwrap(),
                Topology::new_mixed(n, radix).unwrap()
            );
        }
    }

    #[test]
    fn target_range_with_mixed_radix() {
        let t = Topology::new_mixed(32, 4).unwrap();
        let ranges: Vec<_> = (0..t.num_stages()).map(|s| t.target_range(s)).collect();
        assert_eq!(ranges, vec![8, 2, 1]);
    }

    #[test]
    fn mixed_rejects_bad_inputs() {
        assert!(Topology::new_mixed(6, 2).is_err());
        assert!(Topology::new_mixed(8, 3).is_err());
        assert!(Topology::new_mixed(1, 2).is_err());
    }
}
