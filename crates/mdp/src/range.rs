//! The MDP-network variant for Edge Array access (Sec. 4.2, Fig. 6).
//!
//! The access pattern in reading the Edge Array is one-to-multiple: one
//! `{Off, nOff}` pair requires several consecutive interleaved banks. The
//! paper's pipeline is:
//!
//! 1. **Replay Engine** — divides `{Off, nOff}` into `{Off, Len}` chunks of
//!    an appropriate length (at most one bank row, so a chunk never wraps
//!    around the bank interleaving);
//! 2. **Range MDP-network** — propagates `{Off, Len}` stage by stage; when
//!    a chunk spans the boundary between two target ranges it is *split*
//!    (the paper's example: `Off 4, Len 9` → `Off 4, Len 4` + `Off 8,
//!    Len 5`), so competition for subsequent datapaths reduces stage by
//!    stage;
//! 3. **Dispatcher** — a small terminal unit per output channel that fans a
//!    final (narrow) range onto its group of consecutive banks.

use crate::maskbits::{mask_clear, mask_set, mask_words};
use crate::topology::Topology;
use higraph_sim::{ClockedComponent, Fifo, NetworkStats};
use std::fmt;

/// A contiguous run of Edge Array entries, `[off, off + len)`, plus the
/// payload that must accompany the eventual edge reads (typically the
/// source vertex property).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRange<P> {
    /// Global index of the first edge.
    pub off: u64,
    /// Number of edges; always ≥ 1 inside the network.
    pub len: u32,
    /// Caller payload carried alongside the range.
    pub payload: P,
}

impl<P> EdgeRange<P> {
    /// Index one past the last edge.
    pub fn end(&self) -> u64 {
        self.off + u64::from(self.len)
    }
}

/// Errors constructing a [`RangeMdpNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeNetworkError {
    /// The bank count is not a positive multiple of the channel count.
    BankChannelMismatch {
        /// Banks requested.
        num_banks: usize,
        /// Channels in the topology.
        num_channels: usize,
    },
}

impl fmt::Display for RangeNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeNetworkError::BankChannelMismatch {
                num_banks,
                num_channels,
            } => write!(
                f,
                "bank count {num_banks} must be a positive multiple of channel count {num_channels}"
            ),
        }
    }
}

impl std::error::Error for RangeNetworkError {}

/// The Replay Engine: splits one `{Off, nOff}` request into row-aligned
/// `{Off, Len}` chunks, one per cycle.
///
/// A chunk never crosses a multiple of `num_banks` in edge-index space, so
/// the banks it touches are consecutive and non-wrapping — the form the
/// range MDP-network and dispatchers handle.
///
/// # Example
///
/// ```
/// use higraph_mdp::ReplayEngine;
///
/// let mut re = ReplayEngine::new(16);
/// assert!(re.load(4, 20, ()));
/// assert_eq!(re.emit().map(|r| (r.off, r.len)), Some((4, 12))); // up to row end
/// assert_eq!(re.emit().map(|r| (r.off, r.len)), Some((16, 4)));
/// assert_eq!(re.emit(), None);
/// assert!(re.is_idle());
/// ```
#[derive(Debug, Clone)]
pub struct ReplayEngine<P> {
    num_banks: u64,
    current: Option<(u64, u64, P)>,
}

impl<P: Copy> ReplayEngine<P> {
    /// Creates a replay engine over `num_banks` interleaved edge banks.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    pub fn new(num_banks: usize) -> Self {
        // lint:allow(panic-freedom): documented panic: a replay engine over zero banks has no semantics
        assert!(num_banks > 0, "need at least one bank");
        ReplayEngine {
            num_banks: num_banks as u64,
            current: None,
        }
    }

    /// Whether the engine can accept a new `{Off, nOff}` request.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Loads a new request. Returns `false` (dropping nothing) if the
    /// engine is still busy. Zero-length requests (`off == n_off`) complete
    /// immediately.
    pub fn load(&mut self, off: u64, n_off: u64, payload: P) -> bool {
        if !self.is_idle() {
            return false;
        }
        debug_assert!(off <= n_off, "offset pair must be ordered");
        if off < n_off {
            self.current = Some((off, n_off, payload));
        }
        true
    }

    /// Emits the next chunk, if the engine is busy. Call once per cycle.
    pub fn emit(&mut self) -> Option<EdgeRange<P>> {
        let (off, n_off, payload) = self.current?;
        let row_end = (off / self.num_banks + 1) * self.num_banks;
        let end = n_off.min(row_end);
        let chunk = EdgeRange {
            off,
            len: (end - off) as u32,
            payload,
        };
        self.current = if end < n_off {
            Some((end, n_off, payload))
        } else {
            None
        };
        Some(chunk)
    }
}

/// The terminal Dispatcher (Sec. 4.2): expands a narrow range into
/// per-bank edge reads within one group of `width` consecutive banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatcher {
    num_banks: u64,
}

impl Dispatcher {
    /// Creates a dispatcher aware of the global bank interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    pub fn new(num_banks: usize) -> Self {
        // lint:allow(panic-freedom): documented panic: a replay engine over zero banks has no semantics
        assert!(num_banks > 0, "need at least one bank");
        Dispatcher {
            num_banks: num_banks as u64,
        }
    }

    /// The `(bank, global_edge_index)` reads a range issues. All banks are
    /// distinct (the replay engine guarantees non-wrapping chunks), so a
    /// dispatcher completes a range in a single cycle.
    pub fn expand<P: Copy>(&self, range: &EdgeRange<P>) -> impl Iterator<Item = (usize, u64)> + '_ {
        let off = range.off;
        let banks = self.num_banks;
        (0..u64::from(range.len)).map(move |k| {
            let idx = off + k;
            ((idx % banks) as usize, idx)
        })
    }
}

/// The range-splitting MDP-network for Edge Array access.
///
/// Structurally identical to [`crate::MdpNetwork`] — `log2(n)` stages of
/// per-channel FIFOs — but the payload is an [`EdgeRange`] and a head that
/// spans two target ranges is split in flight. The destination key of a
/// range is the *dispatcher group* of its first bank: with `m` banks and
/// `n` channels, group `g` owns banks `[g·m/n, (g+1)·m/n)`.
#[derive(Debug, Clone)]
pub struct RangeMdpNetwork<P> {
    topology: Topology,
    num_banks: usize,
    /// Banks per output channel (dispatcher width, `m / n`).
    width: usize,
    fifos: Vec<Vec<Fifo<EdgeRange<P>>>>,
    stats: NetworkStats,
    splits: u64,
    /// Cached range count across all stage FIFOs: `in_flight` is O(1)
    /// and an empty fabric's tick early-outs — both on the per-cycle hot
    /// path. Unlike the packet network, a tick can *change* the count
    /// (a moved head splits into pieces); every split site maintains it.
    occupancy: usize,
    /// Per-stage occupancy bitmask ([`crate::maskbits`]): a tick visits
    /// only occupied channels instead of scanning the full width.
    stage_mask: Vec<Vec<u64>>,
}

impl<P: Copy> RangeMdpNetwork<P> {
    /// Builds the network over `topology.num_channels()` channels serving
    /// `num_banks` edge banks, with `fifo_capacity` entries per stage FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`RangeNetworkError::BankChannelMismatch`] unless
    /// `num_banks` is a positive multiple of the channel count.
    pub fn new(
        topology: Topology,
        num_banks: usize,
        fifo_capacity: usize,
    ) -> Result<Self, RangeNetworkError> {
        let n = topology.num_channels();
        if num_banks == 0 || !num_banks.is_multiple_of(n) {
            return Err(RangeNetworkError::BankChannelMismatch {
                num_banks,
                num_channels: n,
            });
        }
        // lint:allow-item(hot-path-alloc): construction-time: stage FIFOs are allocated once per network
        let fifos = (0..topology.num_stages())
            .map(|_| (0..n).map(|_| Fifo::new(fifo_capacity)).collect())
            .collect();
        let words = mask_words(n);
        // lint:allow-item(hot-path-alloc): construction-time: occupancy masks are allocated once per network
        Ok(RangeMdpNetwork {
            width: num_banks / n,
            stage_mask: vec![vec![0u64; words]; topology.num_stages()],
            topology,
            num_banks,
            fifos,
            stats: NetworkStats::new(),
            splits: 0,
            occupancy: 0,
        })
    }

    /// Number of input/output channels.
    pub fn num_channels(&self) -> usize {
        self.topology.num_channels()
    }

    /// Number of edge banks served.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Banks per dispatcher (output channel).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Number of in-flight range splits performed so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// First bank of `range` (must be non-wrapping).
    fn first_bank(&self, range: &EdgeRange<P>) -> usize {
        (range.off % self.num_banks as u64) as usize
    }

    /// The bank-region size a piece may still reach after routing by
    /// `stage` (`target_range(stage)` dispatcher groups of `width` banks
    /// each). Shift-based so mixed-radix topologies work too.
    #[inline]
    fn region_at(&self, stage: usize) -> u64 {
        let region = self.width << self.topology.stage(stage).shift;
        debug_assert!(region >= self.width);
        region as u64
    }

    /// Visits the pieces of `range` split at `region`-sized bank
    /// boundaries, in ascending bank order, without materializing them
    /// (the per-cycle hot path splits every non-final-stage head).
    /// Radix 2 yields at most two pieces — the paper's
    /// `Off 4, Len 9 → (4,4)+(8,5)` example. Stops early when `f`
    /// returns `false`.
    #[inline]
    fn for_each_piece(
        region: u64,
        num_banks: u64,
        range: EdgeRange<P>,
        mut f: impl FnMut(EdgeRange<P>) -> bool,
    ) {
        let b0 = range.off % num_banks;
        let b_end = b0 + u64::from(range.len); // exclusive, non-wrapping
        let mut cur = range.off;
        let mut cur_bank = b0;
        while cur_bank < b_end {
            let boundary = (cur_bank / region + 1) * region;
            let piece_end_bank = boundary.min(b_end);
            let len = (piece_end_bank - cur_bank) as u32;
            let piece = EdgeRange {
                off: cur,
                len,
                payload: range.payload,
            };
            if !f(piece) {
                return;
            }
            cur += u64::from(len);
            cur_bank = piece_end_bank;
        }
    }

    /// Splits `range` at the target-range boundaries of `stage`,
    /// materialized ([`RangeMdpNetwork::for_each_piece`] is the
    /// allocation-free hot-path form; this is for tests/diagnostics).
    #[cfg(test)]
    fn split_at_stage(&self, stage: usize, range: EdgeRange<P>) -> Vec<EdgeRange<P>> {
        let mut pieces = Vec::with_capacity(2);
        Self::for_each_piece(
            self.region_at(stage),
            self.num_banks as u64,
            range,
            |piece| {
                pieces.push(piece);
                true
            },
        );
        pieces
    }

    /// Whether input `input` can accept `range` this cycle.
    pub fn can_accept(&self, input: usize, range: &EdgeRange<P>) -> bool {
        let num_banks = self.num_banks as u64;
        let width = self.width as u64;
        let mut ok = true;
        Self::for_each_piece(self.region_at(0), num_banks, *range, |piece| {
            let group = ((piece.off % num_banks) / width) as usize;
            let t = self.topology.next_channel(0, input, group);
            ok = !self.fifos[0][t].is_full();
            ok
        });
        ok
    }

    /// Offers `range` at input `input`, splitting it if it spans first
    /// stage boundaries.
    ///
    /// # Errors
    ///
    /// Returns `Err(range)` (handing back the whole range) if any target
    /// FIFO lacks space; the producer must stall.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the range wraps the bank interleaving —
    /// the replay engine guarantees this cannot happen.
    pub fn push(&mut self, input: usize, range: EdgeRange<P>) -> Result<(), EdgeRange<P>> {
        debug_assert!(range.len >= 1, "empty range");
        debug_assert!(
            self.first_bank(&range) as u64 + u64::from(range.len) <= self.num_banks as u64,
            "range wraps the bank interleaving"
        );
        if !self.can_accept(input, &range) {
            self.stats.rejected += 1;
            return Err(range);
        }
        let num_banks = self.num_banks as u64;
        let width = self.width as u64;
        let region = self.region_at(0);
        let topology = &self.topology;
        let fifos = &mut self.fifos;
        let stage0_mask = &mut self.stage_mask[0];
        let mut pieces = 0u64;
        Self::for_each_piece(region, num_banks, range, |piece| {
            let group = ((piece.off % num_banks) / width) as usize;
            let t = topology.next_channel(0, input, group);
            fifos[0][t]
                .push(piece)
                // lint:allow(panic-freedom): push cannot fail: space was checked by can_accept before the transfer
                .unwrap_or_else(|_| unreachable!("space checked by can_accept"));
            mask_set(stage0_mask, t);
            pieces += 1;
            true
        });
        self.splits += pieces - 1;
        self.occupancy += pieces as usize;
        self.stats.accepted += 1;
        Ok(())
    }

    /// The range presented at output `output`, if any. Output ranges lie
    /// entirely within the output's dispatcher group.
    pub fn peek(&self, output: usize) -> Option<&EdgeRange<P>> {
        self.fifos[self.topology.num_stages() - 1][output].peek()
    }

    /// Consumes the range presented at output `output`.
    pub fn pop(&mut self, output: usize) -> Option<EdgeRange<P>> {
        let r = self.fifos[self.topology.num_stages() - 1][output].pop();
        if r.is_some() {
            self.stats.delivered += 1;
            self.occupancy -= 1;
            let last = self.topology.num_stages() - 1;
            if self.fifos[last][output].is_empty() {
                mask_clear(&mut self.stage_mask[last], output);
            }
        }
        r
    }

    /// Advances one cycle: each non-final stage head is split (if needed)
    /// and moved one stage toward its destination.
    ///
    /// When a head splits across two target FIFOs, the halves advance
    /// *independently*: if only one target has space, that half moves and
    /// the remainder shrinks in place (skid-buffer behaviour of the 2W2R
    /// module). Without this, sibling-FIFO coupling would let output
    /// stages starve while the fabric is congested.
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        if self.occupancy == 0 {
            // An empty fabric's tick is pure time-keeping.
            return;
        }
        let stages = self.topology.num_stages();
        let num_banks = self.num_banks as u64;
        let width = self.width as u64;
        for s in (0..stages.saturating_sub(1)).rev() {
            let region = self.region_at(s + 1);
            for w in 0..self.stage_mask[s].len() {
                // Snapshot the word: pops this stage only clear bits we
                // already visited, pushes land in stage s+1.
                let mut bits = self.stage_mask[s][w];
                while bits != 0 {
                    let c = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    // lint:allow(panic-freedom): infallible: the occupancy mask guarantees this channel has a head
                    let head = *self.fifos[s][c].peek().expect("masked channel has a head");
                    // Move a prefix of pieces (ascending bank order) while
                    // their target FIFOs have space; the head shrinks in
                    // place to the contiguous remainder (skid-buffer
                    // behaviour of the 2W2R module). Without independent
                    // piece movement, sibling-FIFO coupling would let
                    // output stages starve while the fabric is congested.
                    // Pieces are visited without materializing them (no
                    // per-head allocation).
                    let topology = &self.topology;
                    let fifos = &mut self.fifos;
                    let next_mask = &mut self.stage_mask[s + 1];
                    let mut moved = 0usize;
                    let mut blocked_at: Option<EdgeRange<P>> = None;
                    Self::for_each_piece(region, num_banks, head, |piece| {
                        let group = ((piece.off % num_banks) / width) as usize;
                        let t = topology.next_channel(s + 1, c, group);
                        if fifos[s + 1][t].is_full() {
                            blocked_at = Some(piece);
                            return false;
                        }
                        fifos[s + 1][t]
                            .push(piece)
                            // lint:allow(panic-freedom): push cannot fail: space was checked by can_accept before the transfer
                            .unwrap_or_else(|_| unreachable!("space checked"));
                        mask_set(next_mask, t);
                        moved += 1;
                        true
                    });
                    match blocked_at {
                        None => {
                            self.fifos[s][c].pop();
                            if self.fifos[s][c].is_empty() {
                                mask_clear(&mut self.stage_mask[s], c);
                            }
                            // popped one, pushed `moved` pieces
                            self.occupancy += moved - 1;
                            self.splits += moved as u64 - 1;
                        }
                        Some(first_kept) => {
                            self.stats.hol_blocked += 1;
                            if moved > 0 {
                                let consumed = (first_kept.off - head.off) as u32;
                                let rest = EdgeRange {
                                    off: first_kept.off,
                                    len: head.len - consumed,
                                    payload: head.payload,
                                };
                                // lint:allow(panic-freedom): infallible: the masked peek above proved this head exists; peek_mut revisits the same slot
                                *self.fifos[s][c].peek_mut().expect("head exists") = rest;
                                self.occupancy += moved;
                                self.splits += moved as u64;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Number of ranges currently inside the network.
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.fifos
                .iter()
                .map(|st| st.iter().map(Fifo::len).sum::<usize>())
                .sum::<usize>(),
            "cached occupancy out of sync"
        );
        self.occupancy
    }

    /// Total edges covered by in-flight ranges.
    pub fn pending_edges(&self) -> u64 {
        self.fifos
            .iter()
            .flat_map(|st| st.iter())
            .flat_map(|f| f.iter())
            .map(|r| u64::from(r.len))
            .sum()
    }

    /// Whether the network holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }
}

impl<P: Copy> ClockedComponent for RangeMdpNetwork<P> {
    fn tick(&mut self) {
        RangeMdpNetwork::tick(self);
    }

    fn in_flight(&self) -> usize {
        RangeMdpNetwork::in_flight(self)
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(*self.stats())
    }

    /// An idle tick over empty stage FIFOs only advances the cycle
    /// counter.
    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            cycles == 0 || RangeMdpNetwork::in_flight(self) == 0,
            "skip() on a range network holding ranges"
        );
        self.stats.cycles += cycles;
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::SnapValue for EdgeRange<P> {
    fn save_value(&self, w: &mut higraph_sim::SnapWriter) {
        w.u64(self.off);
        w.u32(self.len);
        self.payload.save_value(w);
    }

    fn load_value(r: &mut higraph_sim::SnapReader<'_>) -> Result<Self, higraph_sim::SnapError> {
        Ok(EdgeRange {
            off: r.u64()?,
            len: r.u32()?,
            payload: P::load_value(r)?,
        })
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for ReplayEngine<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"RPLY");
        w.u64(self.num_banks);
        w.value(&self.current);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"RPLY")?;
        let num_banks = r.u64()?;
        if num_banks != self.num_banks {
            return Err(higraph_sim::SnapError::new(format!(
                "replay engine bank mismatch: snapshot {num_banks}, live {}",
                self.num_banks
            )));
        }
        self.current = r.value()?;
        Ok(())
    }
}

impl<P: higraph_sim::SnapValue> higraph_sim::Snapshot for RangeMdpNetwork<P> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"RMDP");
        w.usize(self.topology.num_stages());
        w.usize(self.topology.num_channels());
        w.usize(self.num_banks);
        w.u64(self.splits);
        self.stats.save(w);
        for stage in &self.fifos {
            stage[..].save(w);
        }
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"RMDP")?;
        let stages = r.usize()?;
        let channels = r.usize()?;
        let num_banks = r.usize()?;
        if stages != self.topology.num_stages()
            || channels != self.topology.num_channels()
            || num_banks != self.num_banks
        {
            return Err(higraph_sim::SnapError::new(format!(
                "range MDP-network shape mismatch: snapshot {stages}x{channels} over \
                 {num_banks} banks, live {}x{} over {}",
                self.topology.num_stages(),
                self.topology.num_channels(),
                self.num_banks
            )));
        }
        self.splits = r.u64()?;
        self.stats.load(r)?;
        for stage in &mut self.fifos {
            stage[..].load(r)?;
        }
        // Re-derive the occupancy count and per-stage masks.
        self.occupancy = 0;
        for (s, stage) in self.fifos.iter().enumerate() {
            self.stage_mask[s].iter_mut().for_each(|word| *word = 0);
            for (c, fifo) in stage.iter().enumerate() {
                self.occupancy += fifo.len();
                if !fifo.is_empty() {
                    mask_set(&mut self.stage_mask[s], c);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn net(n: usize, m: usize, cap: usize) -> RangeMdpNetwork<u32> {
        RangeMdpNetwork::new(Topology::new(n, 2).unwrap(), m, cap).unwrap()
    }

    #[test]
    fn paper_example_off4_len9_splits_at_8() {
        // Fig. 6: m = 16, "Off 4 with Len 9 … split into Off 4 with Len 4
        // and Off 8 with Len 5" at stage 1 (boundary 8 = m/2).
        let n = net(4, 16, 8);
        let r = EdgeRange {
            off: 4,
            len: 9,
            payload: 0u32,
        };
        let pieces = n.split_at_stage(0, r);
        assert_eq!(pieces.len(), 2);
        assert_eq!((pieces[0].off, pieces[0].len), (4, 4));
        assert_eq!((pieces[1].off, pieces[1].len), (8, 5));
    }

    #[test]
    fn replay_engine_chunks_are_row_aligned() {
        let mut re = ReplayEngine::new(8);
        assert!(re.load(5, 30, 7u32));
        assert!(!re.load(0, 1, 7u32), "busy engine rejects load");
        let mut chunks = Vec::new();
        while let Some(c) = re.emit() {
            chunks.push((c.off, c.len));
        }
        assert_eq!(chunks, vec![(5, 3), (8, 8), (16, 8), (24, 6)]);
        assert!(re.is_idle());
    }

    #[test]
    fn replay_engine_zero_length_is_noop() {
        let mut re = ReplayEngine::new(8);
        assert!(re.load(5, 5, ()));
        assert!(re.is_idle());
        assert_eq!(re.emit(), None);
    }

    #[test]
    fn dispatcher_expands_to_distinct_banks() {
        let d = Dispatcher::new(16);
        let r = EdgeRange {
            off: 20,
            len: 9,
            payload: (),
        };
        let reads: Vec<_> = d.expand(&r).collect();
        assert_eq!(reads.len(), 9);
        let mut banks: Vec<_> = reads.iter().map(|(b, _)| *b).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 9, "banks must be distinct");
        assert_eq!(reads[0], (4, 20));
    }

    #[test]
    fn delivered_ranges_cover_exactly_the_request() {
        // push chunks for a whole row and check output coverage
        let mut n = net(4, 16, 8);
        n.push(
            0,
            EdgeRange {
                off: 32,
                len: 16,
                payload: 1u32,
            },
        )
        .unwrap();
        let mut covered = Vec::new();
        for _ in 0..16 {
            for o in 0..4 {
                if let Some(r) = n.pop(o) {
                    // output range lies inside output o's dispatcher group
                    let b0 = (r.off % 16) as usize;
                    assert_eq!(b0 / 4, o);
                    assert!(b0 + r.len as usize <= (o + 1) * 4);
                    covered.extend(r.off..r.end());
                }
            }
            n.tick();
        }
        covered.sort_unstable();
        assert_eq!(covered, (32..48).collect::<Vec<_>>());
        assert!(n.is_empty());
    }

    #[test]
    fn no_edge_lost_under_random_load() {
        let mut n = net(8, 32, 4);
        let mut expected = 0u64;
        let mut got = 0u64;
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..300 {
            for o in 0..8 {
                if let Some(r) = n.pop(o) {
                    got += u64::from(r.len);
                }
            }
            for i in 0..8 {
                let off = next() % 97 * 32 + next() % 20; // arbitrary rows
                let len = (next() % (32 - off % 32)).max(1) as u32;
                let r = EdgeRange {
                    off,
                    len,
                    payload: 0u32,
                };
                if n.push(i, r).is_ok() {
                    expected += u64::from(len);
                }
            }
            n.tick();
        }
        for _ in 0..100 {
            for o in 0..8 {
                if let Some(r) = n.pop(o) {
                    got += u64::from(r.len);
                }
            }
            n.tick();
        }
        assert!(n.is_empty());
        assert_eq!(got, expected);
    }

    #[test]
    fn rejects_mismatched_banks() {
        let t = Topology::new(4, 2).unwrap();
        assert!(RangeMdpNetwork::<u32>::new(t.clone(), 15, 4).is_err());
        assert!(RangeMdpNetwork::<u32>::new(t, 0, 4).is_err());
    }

    #[test]
    fn pending_edges_counts_in_flight() {
        let mut n = net(4, 16, 8);
        n.push(
            1,
            EdgeRange {
                off: 0,
                len: 10,
                payload: 0u32,
            },
        )
        .unwrap();
        assert_eq!(n.pending_edges(), 10);
        assert!(n.splits() >= 1); // 0..10 spans the mid boundary 8
    }
}
