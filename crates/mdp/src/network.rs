//! Cycle-level model of the MDP-network.
//!
//! Storage: one FIFO per (stage, channel) — the stage's 2W1R FIFOs. Every
//! cycle each FIFO pops at most one packet (its single read port) and
//! accepts at most `radix` packets (its write ports), which the topology
//! guarantees structurally: exactly `radix` source channels map to each
//! FIFO. Packets advance one stage per cycle toward their destination —
//! deterministic propagation, no arbitration anywhere.

use crate::maskbits::{mask_clear, mask_set, mask_words};
use crate::topology::Topology;
use higraph_sim::{ClockedComponent, Fifo, Network, NetworkStats, Packet};

/// A cycle-accurate MDP-network over `T` packets.
///
/// Implements [`Network`]; see the crate docs for an example.
#[derive(Debug, Clone)]
pub struct MdpNetwork<T> {
    topology: Topology,
    /// `fifos[stage][channel]`; the last stage's FIFOs are the outputs.
    fifos: Vec<Vec<Fifo<T>>>,
    stats: NetworkStats,
    /// Cached packet count across all stage FIFOs: `in_flight` is O(1)
    /// and an empty fabric's tick early-outs — both on the per-cycle hot
    /// path. A tick conserves the count (packets only move between
    /// stages); push/pop maintain it.
    occupancy: usize,
    /// Per-stage occupancy bitmask ([`crate::maskbits`]): a tick visits
    /// only occupied channels instead of scanning the full width
    /// (sparsely-occupied fabrics dominate ramp-up and drain tails).
    stage_mask: Vec<Vec<u64>>,
}

impl<T: Packet> MdpNetwork<T> {
    /// Builds the network from a generated topology with `fifo_capacity`
    /// entries per stage FIFO.
    ///
    /// The paper sizes buffers as entries *per channel* (Fig. 12 sweeps
    /// this); with `S` stages, a per-channel budget of `B` entries means
    /// `fifo_capacity = B / S`. Use [`MdpNetwork::with_channel_budget`] for
    /// that accounting.
    ///
    /// # Panics
    ///
    /// Panics if `fifo_capacity` is zero.
    // lint:allow-item(hot-path-alloc): construction-time: stage FIFOs and occupancy masks are allocated once per network
    pub fn new(topology: Topology, fifo_capacity: usize) -> Self {
        let fifos = (0..topology.num_stages())
            .map(|_| {
                (0..topology.num_channels())
                    .map(|_| Fifo::new(fifo_capacity))
                    .collect()
            })
            .collect();
        let words = mask_words(topology.num_channels());
        MdpNetwork {
            stage_mask: vec![vec![0u64; words]; topology.num_stages()],
            topology,
            fifos,
            stats: NetworkStats::new(),
            occupancy: 0,
        }
    }

    /// Builds the network giving each channel a total buffer budget of
    /// `entries_per_channel`, split evenly across stages (minimum 1 per
    /// stage FIFO).
    pub fn with_channel_budget(topology: Topology, entries_per_channel: usize) -> Self {
        let per_stage = (entries_per_channel / topology.num_stages().max(1)).max(1);
        MdpNetwork::new(topology, per_stage)
    }

    /// The generated topology this network instantiates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total buffer entries across all stage FIFOs.
    pub fn total_buffer_entries(&self) -> usize {
        self.fifos
            .iter()
            .map(|stage| stage.iter().map(Fifo::capacity).sum::<usize>())
            .sum()
    }

    /// Whether the next tick can move nothing: every non-final-stage
    /// head's target FIFO is full (final-stage packets only leave via
    /// [`Network::pop`], the owner's concern). A wedged tick is pure
    /// bookkeeping — the per-head HoL counts it accrues are committed in
    /// bulk by [`ClockedComponent::skip`]. Vacuously true when empty.
    pub fn is_wedged(&self) -> bool {
        let stages = self.topology.num_stages();
        for s in 0..stages.saturating_sub(1) {
            for c in 0..self.topology.num_channels() {
                if let Some(head) = self.fifos[s][c].peek() {
                    let target = self.topology.next_channel(s + 1, c, head.dest());
                    if !self.fifos[s + 1][target].is_full() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Heads a wedged tick counts as HoL-blocked (non-final-stage heads).
    fn blocked_heads(&self) -> u64 {
        let stages = self.topology.num_stages();
        (0..stages.saturating_sub(1))
            .map(|s| self.fifos[s].iter().filter(|f| !f.is_empty()).count() as u64)
            .sum()
    }

    /// Bulk-commits `count` deterministic input rejections (a producer
    /// retrying a push against a full stage-0 FIFO every cycle).
    pub fn commit_rejected(&mut self, count: u64) {
        self.stats.rejected += count;
    }
}

impl<T: Packet> Network<T> for MdpNetwork<T> {
    fn num_inputs(&self) -> usize {
        self.topology.num_channels()
    }

    fn num_outputs(&self) -> usize {
        self.topology.num_channels()
    }

    fn can_accept(&self, input: usize, packet: &T) -> bool {
        let target = self.topology.next_channel(0, input, packet.dest());
        !self.fifos[0][target].is_full()
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        debug_assert!(packet.dest() < self.num_outputs(), "dest out of range");
        let target = self.topology.next_channel(0, input, packet.dest());
        match self.fifos[0][target].push(packet) {
            Ok(()) => {
                self.stats.accepted += 1;
                self.occupancy += 1;
                mask_set(&mut self.stage_mask[0], target);
                Ok(())
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        self.fifos[self.topology.num_stages() - 1][output].peek()
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        let p = self.fifos[self.topology.num_stages() - 1][output].pop();
        if p.is_some() {
            self.stats.delivered += 1;
            self.occupancy -= 1;
            let last = self.topology.num_stages() - 1;
            if self.fifos[last][output].is_empty() {
                mask_clear(&mut self.stage_mask[last], output);
            }
        }
        p
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

impl<T: Packet> ClockedComponent for MdpNetwork<T> {
    fn tick(&mut self) {
        self.stats.cycles += 1;
        if self.occupancy == 0 {
            // An empty fabric's tick is pure time-keeping.
            return;
        }
        let stages = self.topology.num_stages();
        // Move heads from stage s into stage s+1, processing the deepest
        // stage first so freshly freed slots are usable by the stage above
        // (standard pipeline register behaviour), and a packet advances at
        // most one stage per tick.
        for s in (0..stages.saturating_sub(1)).rev() {
            for w in 0..self.stage_mask[s].len() {
                // Snapshot the word: pops this stage only clear bits we
                // already visited, pushes land in stage s+1.
                let mut bits = self.stage_mask[s][w];
                while bits != 0 {
                    let c = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    // lint:allow(panic-freedom): infallible: the occupancy mask guarantees this channel has a head
                    let head = self.fifos[s][c].peek().expect("masked channel has a head");
                    let target = self.topology.next_channel(s + 1, c, head.dest());
                    if self.fifos[s + 1][target].is_full() {
                        self.stats.hol_blocked += 1;
                        continue;
                    }
                    // lint:allow(panic-freedom): infallible: the pop follows the masked peek above on the same channel
                    let pkt = self.fifos[s][c].pop().expect("peeked head exists");
                    self.fifos[s + 1][target]
                        .push(pkt)
                        // lint:allow(panic-freedom): push cannot fail: the target's space was checked before the transfer
                        .unwrap_or_else(|_| unreachable!("target checked for space"));
                    if self.fifos[s][c].is_empty() {
                        mask_clear(&mut self.stage_mask[s], c);
                    }
                    mask_set(&mut self.stage_mask[s + 1], target);
                }
            }
        }
    }

    fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.fifos
                .iter()
                .map(|stage| stage.iter().map(Fifo::len).sum::<usize>())
                .sum::<usize>(),
            "cached occupancy out of sync"
        );
        self.occupancy
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(self.stats)
    }

    // `next_activity` keeps the default: only the owner (who knows the
    // consumer side) can prove a non-empty fabric inert, via
    // `MdpNetwork::is_wedged`.

    /// An idle tick over an empty *or wedged* fabric only advances the
    /// cycle counter and, when wedged, the per-head HoL counts.
    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            cycles == 0 || self.is_wedged(),
            "skip() on an MDP-network that can still move packets"
        );
        self.stats.cycles += cycles;
        self.stats.hol_blocked += cycles * self.blocked_heads();
    }
}

impl<T: higraph_sim::SnapValue> higraph_sim::Snapshot for MdpNetwork<T> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"MDPN");
        w.usize(self.topology.num_stages());
        w.usize(self.topology.num_channels());
        self.stats.save(w);
        for stage in &self.fifos {
            stage[..].save(w);
        }
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"MDPN")?;
        let stages = r.usize()?;
        let channels = r.usize()?;
        if stages != self.topology.num_stages() || channels != self.topology.num_channels() {
            return Err(higraph_sim::SnapError::new(format!(
                "MDP-network shape mismatch: snapshot {stages}x{channels}, live {}x{}",
                self.topology.num_stages(),
                self.topology.num_channels()
            )));
        }
        self.stats.load(r)?;
        for stage in &mut self.fifos {
            stage[..].load(r)?;
        }
        // Re-derive the occupancy count and per-stage masks.
        self.occupancy = 0;
        for (s, stage) in self.fifos.iter().enumerate() {
            self.stage_mask[s].iter_mut().for_each(|word| *word = 0);
            for (c, fifo) in stage.iter().enumerate() {
                self.occupancy += fifo.len();
                if !fifo.is_empty() {
                    mask_set(&mut self.stage_mask[s], c);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct P {
        dest: usize,
        tag: u64,
    }

    impl Packet for P {
        fn dest(&self) -> usize {
            self.dest
        }
    }

    fn net(n: usize, cap: usize) -> MdpNetwork<P> {
        MdpNetwork::new(Topology::new(n, 2).unwrap(), cap)
    }

    /// Drains everything currently in flight, returning (output, packet).
    fn drain(net: &mut MdpNetwork<P>, max_cycles: usize) -> Vec<(usize, P)> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            for o in 0..net.num_outputs() {
                if let Some(p) = net.pop(o) {
                    out.push((o, p));
                }
            }
            net.tick();
            if net.is_empty() {
                break;
            }
        }
        out
    }

    #[test]
    fn delivers_to_correct_output() {
        let mut n = net(8, 4);
        for dest in 0..8 {
            n.push(
                0,
                P {
                    dest,
                    tag: dest as u64,
                },
            )
            .unwrap();
        }
        let out = drain(&mut n, 64);
        assert_eq!(out.len(), 8);
        for (o, p) in out {
            assert_eq!(o, p.dest);
        }
    }

    #[test]
    fn latency_is_one_cycle_per_stage() {
        let mut n = net(8, 4); // 3 stages
        n.push(5, P { dest: 2, tag: 0 }).unwrap();
        // Packet lands in stage-0 FIFO at push; each tick advances one
        // stage; it is visible at the output after stages-1 = 2 ticks.
        assert!(n.peek(2).is_none());
        n.tick();
        assert!(n.peek(2).is_none());
        n.tick();
        assert!(n.peek(2).is_some());
    }

    #[test]
    fn preserves_per_flow_order() {
        // packets from one input to one output must arrive in order
        let mut n = net(4, 16);
        for tag in 0..10 {
            n.push(3, P { dest: 1, tag }).unwrap();
        }
        let out = drain(&mut n, 64);
        let tags: Vec<u64> = out.iter().map(|(_, p)| p.tag).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn no_loss_no_duplication_under_load() {
        let mut n = net(16, 2);
        let mut pushed = 0u64;
        let mut received = Vec::new();
        let mut tag = 0u64;
        for cycle in 0..200 {
            for o in 0..16 {
                if let Some(p) = n.pop(o) {
                    assert_eq!(o, p.dest);
                    received.push(p.tag);
                }
            }
            for i in 0..16 {
                let dest = (cycle * 7 + i * 13) % 16;
                let p = P { dest, tag };
                if n.push(i, p).is_ok() {
                    pushed += 1;
                    tag += 1;
                }
            }
            n.tick();
        }
        // drain
        for _ in 0..200 {
            for o in 0..16 {
                if let Some(p) = n.pop(o) {
                    received.push(p.tag);
                }
            }
            n.tick();
        }
        assert!(n.is_empty());
        received.sort_unstable();
        assert_eq!(received.len() as u64, pushed);
        received.dedup();
        assert_eq!(received.len() as u64, pushed, "duplicated packets");
    }

    #[test]
    fn rejects_when_stage0_fifo_full() {
        let mut n = net(4, 1);
        // inputs 0 and 2 share a stage-0 module; dests 0 and 1 both have
        // address bit1 = 0 → both go to the same stage-0 FIFO (channel 0).
        n.push(0, P { dest: 0, tag: 1 }).unwrap();
        let r = n.push(2, P { dest: 1, tag: 2 });
        assert!(r.is_err());
        assert_eq!(n.stats().rejected, 1);
    }

    #[test]
    fn head_of_line_counted_when_downstream_full() {
        let mut n = net(4, 1);
        n.push(0, P { dest: 0, tag: 1 }).unwrap();
        n.tick(); // moves to stage 1 (output 0)
        n.push(0, P { dest: 0, tag: 2 }).unwrap();
        n.tick(); // blocked: output FIFO full
        assert!(n.stats().hol_blocked >= 1);
        assert_eq!(n.pop(0).map(|p| p.tag), Some(1));
    }

    #[test]
    fn channel_budget_splits_across_stages() {
        let topo = Topology::new(16, 2).unwrap(); // 4 stages
        let n: MdpNetwork<P> = MdpNetwork::with_channel_budget(topo, 160);
        assert_eq!(n.total_buffer_entries(), 16 * 4 * 40);
    }

    #[test]
    fn full_throughput_on_conflict_free_traffic() {
        // identity traffic keeps every stage FIFO at one write and one
        // read per cycle; after warm-up the network sustains 1
        // packet/cycle/channel with zero rejections.
        let mut n = net(8, 4);
        let mut delivered = 0u64;
        for cycle in 0..100u64 {
            for o in 0..8 {
                if n.pop(o).is_some() {
                    delivered += 1;
                }
            }
            for i in 0..8usize {
                n.push(
                    i,
                    P {
                        dest: i,
                        tag: cycle,
                    },
                )
                .unwrap();
            }
            n.tick();
        }
        // 100 cycles, 3-stage latency: expect ≥ 8 * (100 - 4) deliveries
        assert!(delivered >= 8 * 90, "delivered {delivered}");
        assert_eq!(n.stats().rejected, 0);
    }
}
