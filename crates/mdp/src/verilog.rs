//! Automatic Verilog generator for MDP-networks.
//!
//! The paper open-sources "an automatic generator of MDP-network" producing
//! RTL; this module mirrors that artifact. [`generate`] turns a
//! [`Topology`] (Algorithm 1 output) into a self-contained synthesizable
//! Verilog description:
//!
//! * one behavioral `*_fifo_rw1r` module — the radix-write-port, 1-read
//!   FIFO from which stages are built (2W1R for radix 2);
//! * one top module instantiating `num_stages × num_channels` FIFOs and
//!   the deterministic per-stage routing (an address-bit select per
//!   module, no arbitration).
//!
//! The emitted text is deterministic, so golden tests can diff it.

use crate::topology::Topology;

/// Options controlling code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogOptions {
    /// Payload width in bits (excluding the destination address field).
    pub data_width: u32,
    /// Depth of every stage FIFO, in entries.
    pub fifo_depth: u32,
    /// Prefix for all generated module names.
    pub module_prefix: String,
}

impl Default for VerilogOptions {
    fn default() -> Self {
        VerilogOptions {
            // 19-bit vertex ID + 19-bit property, rounded up (Sec. 5.1).
            data_width: 38,
            fifo_depth: 8,
            module_prefix: "mdp".to_string(),
        }
    }
}

/// Generates the complete Verilog source for `topology`.
///
/// # Example
///
/// ```
/// use higraph_mdp::{topology::Topology, verilog};
///
/// let topo = Topology::new(4, 2)?;
/// let rtl = verilog::generate(&topo, &verilog::VerilogOptions::default());
/// assert!(rtl.contains("module mdp_network_n4_r2"));
/// assert!(rtl.contains("module mdp_fifo_rw1r"));
/// # Ok::<(), higraph_mdp::TopologyError>(())
/// ```
/// # Panics
///
/// Panics on mixed-radix topologies ([`Topology::new_mixed`] with a
/// leftover stage): the emitted design shares one FIFO module across all
/// stages, so stages must agree on the write-port count.
pub fn generate(topology: &Topology, opts: &VerilogOptions) -> String {
    // lint:allow(panic-freedom): documented panic: the emitter requires a uniform radix, checked before any code is written
    assert!(
        topology.is_uniform_radix(),
        "Verilog generation requires a uniform-radix topology"
    );
    let mut out = String::with_capacity(16 * 1024);
    header(&mut out, topology, opts);
    fifo_module(&mut out, topology, opts);
    top_module(&mut out, topology, opts);
    out
}

fn header(out: &mut String, topo: &Topology, opts: &VerilogOptions) {
    let n = topo.num_channels();
    let r = topo.radix();
    out.push_str(&format!(
        "// -----------------------------------------------------------------\n\
         // MDP-network: Multiple-stage Decentralized Propagation network\n\
         // Auto-generated. channels = {n}, radix = {r}, stages = {s},\n\
         // data width = {w}, fifo depth = {d}.\n\
         // Deterministic propagation: each stage routes on one address-bit\n\
         // field; no arbitration anywhere in the fabric.\n\
         // -----------------------------------------------------------------\n\n",
        s = topo.num_stages(),
        w = opts.data_width,
        d = opts.fifo_depth,
    ));
}

fn fifo_module(out: &mut String, topo: &Topology, opts: &VerilogOptions) {
    let r = topo.radix();
    let p = &opts.module_prefix;
    out.push_str(&format!(
        "// {r}-write-port, 1-read-port FIFO: the building block of every\n\
         // stage (two of these form one 2W2R module for radix 2).\n\
         module {p}_fifo_rw1r #(\n\
         \x20   parameter WIDTH = {w},\n\
         \x20   parameter DEPTH = {d},\n\
         \x20   parameter ADDR  = $clog2(DEPTH)\n\
         ) (\n\
         \x20   input  wire                 clk,\n\
         \x20   input  wire                 rst_n,\n\
         \x20   input  wire [{r_hi}:0]          wr_en,\n\
         \x20   input  wire [{r}*WIDTH-1:0]    wr_data,\n\
         \x20   output wire                 almost_full,\n\
         \x20   input  wire                 rd_en,\n\
         \x20   output wire [WIDTH-1:0]     rd_data,\n\
         \x20   output wire                 empty\n\
         );\n",
        w = opts.data_width,
        d = opts.fifo_depth,
        r_hi = r - 1,
    ));
    out.push_str(&format!(
        "    reg [WIDTH-1:0] mem [0:DEPTH-1];\n\
         \x20   reg [ADDR:0] wr_ptr, rd_ptr;\n\
         \x20   wire [ADDR:0] count = wr_ptr - rd_ptr;\n\
         \x20   // accept writes only while all {r} ports could land\n\
         \x20   assign almost_full = (count > DEPTH - {r});\n\
         \x20   assign empty = (count == 0);\n\
         \x20   assign rd_data = mem[rd_ptr[ADDR-1:0]];\n\
         \x20   integer i;\n\
         \x20   always @(posedge clk or negedge rst_n) begin\n\
         \x20       if (!rst_n) begin\n\
         \x20           wr_ptr <= 0;\n\
         \x20           rd_ptr <= 0;\n\
         \x20       end else begin\n\
         \x20           for (i = 0; i < {r}; i = i + 1) begin\n\
         \x20               if (wr_en[i]) begin\n\
         \x20                   mem[(wr_ptr + popcount_below(wr_en, i)) % DEPTH]\n\
         \x20                       <= wr_data[i*WIDTH +: WIDTH];\n\
         \x20               end\n\
         \x20           end\n\
         \x20           wr_ptr <= wr_ptr + popcount(wr_en);\n\
         \x20           if (rd_en && !empty) rd_ptr <= rd_ptr + 1;\n\
         \x20       end\n\
         \x20   end\n\
         \x20   function [ADDR:0] popcount(input [{r_hi}:0] v);\n\
         \x20       integer j;\n\
         \x20       begin\n\
         \x20           popcount = 0;\n\
         \x20           for (j = 0; j < {r}; j = j + 1) popcount = popcount + v[j];\n\
         \x20       end\n\
         \x20   endfunction\n\
         \x20   function [ADDR:0] popcount_below(input [{r_hi}:0] v, input integer k);\n\
         \x20       integer j;\n\
         \x20       begin\n\
         \x20           popcount_below = 0;\n\
         \x20           for (j = 0; j < k; j = j + 1) popcount_below = popcount_below + v[j];\n\
         \x20       end\n\
         \x20   endfunction\n\
         endmodule\n\n",
        r_hi = r - 1,
    ));
}

fn top_module(out: &mut String, topo: &Topology, opts: &VerilogOptions) {
    let n = topo.num_channels();
    let r = topo.radix();
    let p = &opts.module_prefix;
    let dest_bits = n.trailing_zeros().max(1);
    let w = opts.data_width;
    let lane = w + dest_bits; // payload plus routed destination address

    out.push_str(&format!(
        "// Top: {n}-channel MDP-network, radix {r}. Each input lane carries\n\
         // {{dest[{db_hi}:0], data[{w_hi}:0]}}.\n\
         module {p}_network_n{n}_r{r} (\n\
         \x20   input  wire              clk,\n\
         \x20   input  wire              rst_n,\n\
         \x20   input  wire [{n}-1:0]       in_valid,\n\
         \x20   input  wire [{n}*{lane}-1:0]   in_lane,\n\
         \x20   output wire [{n}-1:0]       in_ready,\n\
         \x20   output wire [{n}-1:0]       out_valid,\n\
         \x20   output wire [{n}*{lane}-1:0]   out_lane,\n\
         \x20   input  wire [{n}-1:0]       out_ready\n\
         );\n\n",
        db_hi = dest_bits - 1,
        w_hi = w - 1,
    ));

    // Inter-stage wires.
    for s in 0..=topo.num_stages() {
        out.push_str(&format!(
            "    wire [{n}-1:0]      s{s}_valid;\n\
             \x20   wire [{n}*{lane}-1:0]  s{s}_lane;\n\
             \x20   wire [{n}-1:0]      s{s}_ready;\n",
        ));
    }
    out.push_str(&format!(
        "\n    assign s0_valid = in_valid;\n\
         \x20   assign s0_lane  = in_lane;\n\
         \x20   assign in_ready = s0_ready;\n\
         \x20   assign out_valid = s{last}_valid;\n\
         \x20   assign out_lane  = s{last}_lane;\n\
         \x20   assign s{last}_ready = out_ready;\n\n",
        last = topo.num_stages(),
    ));

    // Stages: per (stage, channel) one FIFO; write enables decoded from the
    // destination field of the module's input channels.
    for (s, stage) in topo.stages().iter().enumerate() {
        out.push_str(&format!(
            "    // ---- stage {s}: routing on dest[{hi}:{lo}] ----\n",
            hi = stage.shift + (r.trailing_zeros()) - 1,
            lo = stage.shift,
        ));
        for module in &stage.modules {
            for (slot, &ch) in module.channels.iter().enumerate() {
                // FIFO for output channel `ch` of this stage; written by all
                // channels of the module whose dest field selects `slot`.
                let wr_en: Vec<String> = module
                    .channels
                    .iter()
                    .map(|&src| {
                        format!(
                            "(s{s}_valid[{src}] && \
                             s{s}_lane[{src}*{lane}+{w} +: {db}] >> {sh} % {r} == {slot})",
                            db = dest_bits,
                            sh = stage.shift,
                        )
                    })
                    .collect();
                let wr_data: Vec<String> = module
                    .channels
                    .iter()
                    .map(|&src| format!("s{s}_lane[{src}*{lane} +: {lane}]"))
                    .collect();
                out.push_str(&format!(
                    "    {p}_fifo_rw1r #(.WIDTH({lane}), .DEPTH({d})) u_s{s}_c{ch} (\n\
                     \x20       .clk(clk), .rst_n(rst_n),\n\
                     \x20       .wr_en({{{wr_en}}}),\n\
                     \x20       .wr_data({{{wr_data}}}),\n\
                     \x20       .almost_full(s{s}_ready[{ch}]),\n\
                     \x20       .rd_en(s{ns}_ready[{ch}]),\n\
                     \x20       .rd_data(s{ns}_lane[{ch}*{lane} +: {lane}]),\n\
                     \x20       .empty(s{ns}_valid[{ch}])\n\
                     \x20   );\n",
                    d = opts.fifo_depth,
                    ns = s + 1,
                    wr_en = wr_en.join(", "),
                    wr_data = wr_data.join(", "),
                ));
            }
        }
        out.push('\n');
    }
    out.push_str("endmodule\n");
}

/// Generates a self-checking testbench for the network emitted by
/// [`generate`]: it injects a burst of packets with round-robin
/// destinations at every input, then checks that every packet pops out at
/// the output matching its routed destination field.
///
/// # Panics
///
/// Panics on mixed-radix topologies, like [`generate`].
pub fn generate_testbench(topology: &Topology, opts: &VerilogOptions) -> String {
    // lint:allow(panic-freedom): documented panic: the emitter requires a uniform radix, checked before any code is written
    assert!(
        topology.is_uniform_radix(),
        "Verilog generation requires a uniform-radix topology"
    );
    let n = topology.num_channels();
    let r = topology.radix();
    let p = &opts.module_prefix;
    let dest_bits = n.trailing_zeros().max(1);
    let w = opts.data_width;
    let lane = w + dest_bits;
    let mut out = String::with_capacity(4 * 1024);
    out.push_str(&format!(
        "// Self-checking testbench for {p}_network_n{n}_r{r}.\n\
         `timescale 1ns/1ps\n\
         module {p}_network_n{n}_r{r}_tb;\n\
         \x20   reg clk = 0, rst_n = 0;\n\
         \x20   reg  [{n}-1:0] in_valid = 0;\n\
         \x20   reg  [{n}*{lane}-1:0] in_lane = 0;\n\
         \x20   wire [{n}-1:0] in_ready, out_valid;\n\
         \x20   wire [{n}*{lane}-1:0] out_lane;\n\
         \x20   integer sent = 0, received = 0, errors = 0;\n\
         \x20   integer i, burst;\n\n\
         \x20   {p}_network_n{n}_r{r} dut (\n\
         \x20       .clk(clk), .rst_n(rst_n),\n\
         \x20       .in_valid(in_valid), .in_lane(in_lane), .in_ready(in_ready),\n\
         \x20       .out_valid(out_valid), .out_lane(out_lane),\n\
         \x20       .out_ready({{{n}{{1'b1}}}})\n\
         \x20   );\n\n\
         \x20   always #0.5 clk = ~clk;\n\n\
         \x20   // score: every popped lane must carry a dest equal to its port\n\
         \x20   always @(posedge clk) begin\n\
         \x20       for (i = 0; i < {n}; i = i + 1) begin\n\
         \x20           if (out_valid[i]) begin\n\
         \x20               received = received + 1;\n\
         \x20               if (out_lane[i*{lane}+{w} +: {db}] != i[{db_hi}:0])\n\
         \x20                   errors = errors + 1;\n\
         \x20           end\n\
         \x20       end\n\
         \x20   end\n\n\
         \x20   initial begin\n\
         \x20       repeat (4) @(posedge clk);\n\
         \x20       rst_n = 1;\n\
         \x20       for (burst = 0; burst < 64; burst = burst + 1) begin\n\
         \x20           @(negedge clk);\n\
         \x20           for (i = 0; i < {n}; i = i + 1) begin\n\
         \x20               in_valid[i] = in_ready[i];\n\
         \x20               in_lane[i*{lane} +: {lane}] =\n\
         \x20                   {{ (burst + i) % {n}, burst[{w_hi}:0] }};\n\
         \x20               if (in_ready[i]) sent = sent + 1;\n\
         \x20           end\n\
         \x20       end\n\
         \x20       in_valid = 0;\n\
         \x20       repeat ({drain}) @(posedge clk);\n\
         \x20       if (errors == 0 && received == sent)\n\
         \x20           $display(\"PASS: %0d packets routed correctly\", received);\n\
         \x20       else\n\
         \x20           $display(\"FAIL: sent=%0d received=%0d errors=%0d\", sent, received, errors);\n\
         \x20       $finish;\n\
         \x20   end\n\
         endmodule\n",
        db = dest_bits,
        db_hi = dest_bits - 1,
        w_hi = w - 1,
        drain = 64 + topology.num_stages() * 4,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn rtl(n: usize, radix: usize) -> String {
        generate(
            &Topology::new(n, radix).unwrap(),
            &VerilogOptions::default(),
        )
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(rtl(8, 2), rtl(8, 2));
    }

    #[test]
    fn contains_expected_modules() {
        let v = rtl(4, 2);
        assert!(v.contains("module mdp_fifo_rw1r"));
        assert!(v.contains("module mdp_network_n4_r2"));
    }

    #[test]
    fn module_endmodule_balanced() {
        let v = rtl(16, 2);
        let m = v.matches("\nmodule ").count() + usize::from(v.starts_with("module "));
        let e = v.matches("endmodule").count();
        assert_eq!(m, e, "unbalanced module/endmodule");
        assert_eq!(e, 2);
    }

    #[test]
    fn instantiates_one_fifo_per_stage_channel() {
        let topo = Topology::new(16, 2).unwrap();
        let v = generate(&topo, &VerilogOptions::default());
        // count instance labels (u_s<stage>_c<channel>), not the module
        // declaration itself
        let inst = v.matches(" u_s").count();
        assert_eq!(inst, topo.num_stages() * topo.num_channels());
    }

    #[test]
    fn custom_prefix_and_width_propagate() {
        let topo = Topology::new(8, 2).unwrap();
        let opts = VerilogOptions {
            data_width: 64,
            fifo_depth: 16,
            module_prefix: "hg".to_string(),
        };
        let v = generate(&topo, &opts);
        assert!(v.contains("module hg_network_n8_r2"));
        assert!(v.contains("parameter WIDTH = 64"));
        assert!(v.contains("parameter DEPTH = 16"));
        assert!(!v.contains("mdp_fifo"));
    }

    #[test]
    fn radix4_emits_4_write_ports() {
        let v = rtl(16, 4);
        assert!(v.contains("input  wire [3:0]          wr_en"));
        assert!(v.contains("module mdp_network_n16_r4"));
    }

    #[test]
    fn stage_comments_show_address_bits() {
        let v = rtl(8, 2);
        assert!(v.contains("stage 0: routing on dest[2:2]"));
        assert!(v.contains("stage 2: routing on dest[0:0]"));
    }
}

#[cfg(test)]
mod testbench_tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn testbench_references_dut_and_checks() {
        let topo = Topology::new(8, 2).unwrap();
        let tb = generate_testbench(&topo, &VerilogOptions::default());
        assert!(tb.contains("module mdp_network_n8_r2_tb"));
        assert!(tb.contains("mdp_network_n8_r2 dut"));
        assert!(tb.contains("PASS"));
        assert!(tb.contains("FAIL"));
        assert_eq!(tb.matches("endmodule").count(), 1);
    }

    #[test]
    fn testbench_is_deterministic() {
        let topo = Topology::new(16, 2).unwrap();
        let opts = VerilogOptions::default();
        assert_eq!(
            generate_testbench(&topo, &opts),
            generate_testbench(&topo, &opts)
        );
    }

    #[test]
    #[should_panic(expected = "uniform-radix")]
    fn testbench_rejects_mixed_radix() {
        let topo = Topology::new_mixed(32, 4).unwrap();
        let _ = generate_testbench(&topo, &VerilogOptions::default());
    }
}
