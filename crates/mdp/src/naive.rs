//! The naive nW1R-FIFO solution (Fig. 5 b/c) — kept as a baseline.
//!
//! One FIFO per output channel, with as many write ports as there are
//! input channels. In a single cycle every input whose packet targets
//! output `o` may write into FIFO `o` — but, as the paper observes, a
//! hardware nW1R FIFO "can accept data only when the remaining capacity is
//! not less than n" (it cannot know how many writers will fire), causing a
//! large buffer requirement and low utilization; and the n-ported FIFO
//! itself is a centralization point that does not scale. The cycle model
//! reproduces the capacity rule; the frequency penalty of the wide FIFO is
//! modeled in `higraph-model`.

use higraph_sim::{ClockedComponent, Fifo, Network, NetworkStats, Packet};

/// An `n_in → n_out` network made of per-output nW1R FIFOs.
#[derive(Debug, Clone)]
pub struct NaiveFifoNetwork<T> {
    n_in: usize,
    fifos: Vec<Fifo<T>>,
    /// Free space in each FIFO at the start of the current cycle; writes
    /// this cycle are admitted only if `free_snapshot >= n_in` (the
    /// conservative acceptance rule of a real nW1R FIFO).
    free_snapshot: Vec<usize>,
    stats: NetworkStats,
}

impl<T: Packet> NaiveFifoNetwork<T> {
    /// Creates the network with `capacity` entries per output FIFO.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `capacity` is zero.
    // lint:allow-item(panic-freedom, hot-path-alloc): construction: the documented zero-dimension panic and one-time FIFO allocation happen before any cycle runs
    pub fn new(n_in: usize, n_out: usize, capacity: usize) -> Self {
        assert!(n_in > 0 && n_out > 0, "dimensions must be positive");
        let fifos: Vec<Fifo<T>> = (0..n_out).map(|_| Fifo::new(capacity)).collect();
        let free_snapshot = fifos.iter().map(Fifo::free).collect();
        NaiveFifoNetwork {
            n_in,
            fifos,
            free_snapshot,
            stats: NetworkStats::new(),
        }
    }

    /// Capacity of each output FIFO.
    pub fn capacity(&self) -> usize {
        self.fifos[0].capacity()
    }

    /// The nW1R network never moves packets at a tick (delivery is the
    /// same-cycle push), so it is always safely skippable from the
    /// clock's perspective; acceptance changes only when a consumer pops
    /// (the owner's concern).
    pub fn is_wedged(&self) -> bool {
        true
    }

    /// Bulk-commits `count` deterministic input rejections (a producer
    /// retrying a push the capacity rule keeps refusing).
    pub fn commit_rejected(&mut self, count: u64) {
        self.stats.rejected += count;
    }
}

impl<T: Packet> Network<T> for NaiveFifoNetwork<T> {
    fn num_inputs(&self) -> usize {
        self.n_in
    }

    fn num_outputs(&self) -> usize {
        self.fifos.len()
    }

    fn can_accept(&self, _input: usize, packet: &T) -> bool {
        let d = packet.dest();
        self.free_snapshot[d] >= self.n_in && !self.fifos[d].is_full()
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        if !self.can_accept(input, &packet) {
            self.stats.rejected += 1;
            return Err(packet);
        }
        let d = packet.dest();
        match self.fifos[d].push(packet) {
            Ok(()) => {
                self.stats.accepted += 1;
                Ok(())
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        self.fifos[output].peek()
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        let p = self.fifos[output].pop();
        if p.is_some() {
            self.stats.delivered += 1;
        }
        p
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

impl<T: Packet> ClockedComponent for NaiveFifoNetwork<T> {
    fn tick(&mut self) {
        self.stats.cycles += 1;
        for (snap, f) in self.free_snapshot.iter_mut().zip(&self.fifos) {
            *snap = f.free();
        }
    }

    fn in_flight(&self) -> usize {
        self.fifos.iter().map(Fifo::len).sum()
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(self.stats)
    }

    /// Idle ticks only advance the cycle counter and refresh the
    /// free-space snapshot (a fixpoint when no pushes or pops happen).
    fn skip(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
        if cycles > 0 {
            for (snap, f) in self.free_snapshot.iter_mut().zip(&self.fifos) {
                *snap = f.free();
            }
        }
    }
}

impl<T: higraph_sim::SnapValue> higraph_sim::Snapshot for NaiveFifoNetwork<T> {
    fn save(&self, w: &mut higraph_sim::SnapWriter) {
        w.tag(b"NVFF");
        w.usize(self.n_in);
        w.usize(self.fifos.len());
        self.stats.save(w);
        self.fifos[..].save(w);
        self.free_snapshot.save(w);
    }

    fn load(&mut self, r: &mut higraph_sim::SnapReader<'_>) -> Result<(), higraph_sim::SnapError> {
        r.expect_tag(b"NVFF")?;
        let n_in = r.usize()?;
        let n_out = r.usize()?;
        if n_in != self.n_in || n_out != self.fifos.len() {
            return Err(higraph_sim::SnapError::new(format!(
                "nW1R network shape mismatch: snapshot {n_in}x{n_out}, live {}x{}",
                self.n_in,
                self.fifos.len()
            )));
        }
        self.stats.load(r)?;
        self.fifos[..].load(r)?;
        self.free_snapshot.load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct P(usize);
    impl Packet for P {
        fn dest(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn delivers_same_cycle_zero_latency() {
        let mut n = NaiveFifoNetwork::new(4, 4, 16);
        n.push(0, P(3)).unwrap();
        assert_eq!(n.pop(3).map(|p| p.0), Some(3));
    }

    #[test]
    fn conservative_capacity_rule() {
        // 4 writers, capacity 18: admits only while free_snapshot >= 4, so
        // acceptance stops at 16 entries and the last 2 slots are wasted —
        // the paper's "large requirement and low utilization of buffer
        // capacity".
        let mut n = NaiveFifoNetwork::new(4, 2, 18);
        let mut accepted = 0;
        for _ in 0..6 {
            for i in 0..4 {
                if n.push(i, P(0)).is_ok() {
                    accepted += 1;
                }
            }
            n.tick();
        }
        assert_eq!(accepted, 16);
        assert!(n.stats().rejected > 0);
        assert!(n.in_flight() < 18, "last free(n-1) slots must stay unused");
    }

    #[test]
    fn low_utilization_versus_plain_fifo() {
        // with n_in = 8 and capacity 8, nothing can ever be admitted once
        // a single entry is queued (free 7 < 8) — the paper's "large buffer
        // requirement" pathology in its extreme form.
        let mut n = NaiveFifoNetwork::new(8, 1, 8);
        assert!(n.push(0, P(0)).is_ok());
        n.tick();
        assert!(n.push(1, P(0)).is_err());
    }

    #[test]
    fn multiple_writers_same_cycle() {
        let mut n = NaiveFifoNetwork::new(4, 1, 32);
        for i in 0..4 {
            n.push(i, P(0)).unwrap();
        }
        assert_eq!(n.in_flight(), 4);
    }
}
