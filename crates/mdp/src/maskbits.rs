//! Per-stage channel-occupancy bitmasks shared by the packet
//! ([`crate::network`]) and range ([`crate::range`]) MDP fabrics.
//!
//! A stage's mask has channel `c`'s bit set
//! (`mask[c / 64] >> (c % 64) & 1`) iff its FIFO is non-empty, so a
//! tick visits only occupied channels instead of scanning the full
//! fabric width — sparsely-occupied stages dominate ramp-up and drain
//! tails. One definition keeps the two fabrics' tick early-outs in
//! sync.

/// Words needed for an `n`-channel stage mask.
#[inline]
pub(crate) fn mask_words(n: usize) -> usize {
    n.div_ceil(64)
}

/// Sets channel `c`'s bit in one stage's mask.
#[inline]
pub(crate) fn mask_set(mask: &mut [u64], c: usize) {
    mask[c / 64] |= 1u64 << (c % 64);
}

/// Clears channel `c`'s bit in one stage's mask.
#[inline]
pub(crate) fn mask_clear(mask: &mut [u64], c: usize) {
    mask[c / 64] &= !(1u64 << (c % 64));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_round_trips_across_words() {
        let mut mask = vec![0u64; mask_words(130)];
        assert_eq!(mask.len(), 3);
        for c in [0usize, 63, 64, 127, 129] {
            mask_set(&mut mask, c);
            assert_eq!(mask[c / 64] >> (c % 64) & 1, 1, "{c}");
            mask_clear(&mut mask, c);
            assert!(mask.iter().all(|&w| w == 0), "{c}");
        }
    }
}
