//! Host-performance microbenchmarks of the per-cycle hot-path
//! primitives: `Fifo` push/pop (the ring buffer under every buffered
//! datapath), a loaded crossbar tick, a loaded `MemoryChannel` tick,
//! the `EventWheel` selection loop under sparse vs dense wake sets, and
//! arena-handle vs struct-copy FIFO traffic. The `repro hostperf`
//! target measures whole runs; these isolate the data-structure layer
//! so a ring-buffer, wheel, or arena regression is visible on its own,
//! without a simulation around it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use higraph::accel::arena::PairArena;
use higraph::accel::packets::{VertexPacket, VertexRef};
use higraph::sim::{
    ClockedComponent, CrossbarNetwork, DramTiming, EventWheel, Fifo, MemoryChannel, Network, Packet,
};
use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
struct P(usize);
impl Packet for P {
    fn dest(&self) -> usize {
        self.0
    }
}

/// Steady-state FIFO traffic: fill half, then push+pop around the ring
/// so every operation wraps eventually.
fn bench_fifo(c: &mut Criterion) {
    const OPS: u64 = 200_000;
    let mut group = c.benchmark_group("fifo");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("push_pop_cap8", |b| {
        b.iter(|| {
            let mut fifo: Fifo<u64> = Fifo::new(8);
            for i in 0..4u64 {
                fifo.push(i).unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                if fifo.push(i).is_ok() {
                    sum = sum.wrapping_add(fifo.pop().unwrap());
                }
            }
            black_box(sum)
        })
    });
    group.bench_function("push_pop_cap160", |b| {
        b.iter(|| {
            let mut fifo: Fifo<u64> = Fifo::new(160);
            for i in 0..80u64 {
                fifo.push(i).unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                if fifo.push(i).is_ok() {
                    sum = sum.wrapping_add(fifo.pop().unwrap());
                }
            }
            black_box(sum)
        })
    });
    group.bench_function("peek_as_slices_cap160", |b| {
        let mut fifo: Fifo<u64> = Fifo::new(160);
        for i in 0..100u64 {
            fifo.push(i).unwrap();
        }
        // wrap the ring so both slices are non-empty
        for _ in 0..60 {
            let v = fifo.pop().unwrap();
            fifo.push(v).unwrap();
        }
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..(OPS / 100) {
                let (a, z) = fifo.as_slices();
                sum = sum.wrapping_add(a.iter().chain(z).sum::<u64>());
            }
            black_box(sum)
        })
    });
    group.finish();
}

/// A 32×32 crossbar ticked under saturating load: the arbitration loop
/// plus the reused grant scratch.
fn bench_crossbar_tick(c: &mut Criterion) {
    const CYCLES: u64 = 20_000;
    let channels = 32;
    let mut group = c.benchmark_group("crossbar_tick");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("loaded_32x32", |b| {
        b.iter(|| {
            let mut xbar: CrossbarNetwork<P> = CrossbarNetwork::new(channels, channels, 8);
            let mut rng = 0x2545F491u64;
            let mut delivered = 0u64;
            for _ in 0..CYCLES {
                for o in 0..channels {
                    if xbar.pop(o).is_some() {
                        delivered += 1;
                    }
                }
                for i in 0..channels {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let _ = xbar.push(i, P((rng >> 33) as usize % channels));
                }
                xbar.tick();
            }
            black_box(delivered)
        })
    });
    group.finish();
}

/// A 16-bank memory channel ticked under a saturating request stream:
/// the issue scan plus the reused per-bank scratch.
fn bench_memory_channel_tick(c: &mut Criterion) {
    const CYCLES: u64 = 20_000;
    let mut group = c.benchmark_group("memory_channel_tick");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("loaded_16banks", |b| {
        b.iter(|| {
            let mut channel = MemoryChannel::new(16, 16, DramTiming::default());
            let mut line = 0u64;
            let mut completed = 0u64;
            for _ in 0..CYCLES {
                while channel.can_accept() {
                    // walk rows slowly so hits, misses, and conflicts mix
                    let bank = (line % 16) as usize;
                    let row = line / 64;
                    if !channel.try_request(line, bank, row) {
                        break;
                    }
                    line += 1;
                }
                channel.tick();
                while channel.pop_ready().is_some() {
                    completed += 1;
                }
            }
            black_box(completed)
        })
    });
    group.finish();
}

/// Drives an [`EventWheel`] through the scheduler's fast-forward
/// discipline for `run` simulated cycles: pop the minimum window, jump
/// to it, let due slots re-arm one period ahead, mark them dirty, and
/// select again. `strides[s] == 0` leaves slot `s` unarmed. Returns the
/// number of window selections (the checksum the benches black-box).
fn drive_wheel(strides: &[u64], run: u64) -> u64 {
    let slots = strides.len();
    let mut wheel = EventWheel::new(slots, 1024);
    let armed: Vec<usize> = (0..slots).filter(|&s| strides[s] != 0).collect();
    let mut due: Vec<u64> = strides
        .iter()
        .map(|&st| if st == 0 { 0 } else { st })
        .collect();
    for &s in &armed {
        wheel.register(s, Some(due[s]));
    }
    let mut now = 0u64;
    let mut selections = 0u64;
    while now < run {
        let window = {
            let due = &due;
            wheel.next_window(|s| {
                if strides[s] == 0 {
                    None
                } else {
                    Some(due[s].saturating_sub(now))
                }
            })
        };
        selections += 1;
        let step = window.unwrap_or(1).max(1);
        now += step;
        wheel.advance(step);
        for &s in &armed {
            if due[s] <= now {
                due[s] = now + strides[s]; // the slot "fired"; next period
            }
        }
        wheel.dirty_due();
    }
    selections
}

/// The event wheel under the two load shapes that bracket its cost
/// model: a sparse wake set (few armed slots, long windows — selection
/// cost is the bitmap jump) and a dense one (every slot armed, short
/// windows — selection cost is bucket churn and re-registration).
fn bench_event_wheel(c: &mut Criterion) {
    const RUN: u64 = 200_000;
    const SLOTS: usize = 1024;
    let mut group = c.benchmark_group("event_wheel");
    group.throughput(Throughput::Elements(RUN));
    group.bench_function("sparse_8_of_1024", |b| {
        let mut strides = vec![0u64; SLOTS];
        for (i, s) in [3usize, 131, 257, 389, 521, 647, 769, 1021]
            .iter()
            .enumerate()
        {
            strides[*s] = 61 + 53 * i as u64; // co-prime-ish periods
        }
        b.iter(|| black_box(drive_wheel(&strides, RUN)))
    });
    // Dense selections cost ~40x sparse ones, so run a tenth as many
    // simulated cycles to keep wall time comparable.
    const RUN_DENSE: u64 = RUN / 10;
    group.throughput(Throughput::Elements(RUN_DENSE));
    group.bench_function("dense_1024_of_1024", |b| {
        let strides: Vec<u64> = (0..SLOTS as u64).map(|s| 1 + (s % 15)).collect();
        b.iter(|| black_box(drive_wheel(&strides, RUN_DENSE)))
    });
    group.finish();
}

/// Arena-handle vs struct-copy FIFO traffic: the same push/pop loop
/// moving 8-byte [`VertexRef`] handles (payloads parked in a
/// [`PairArena`]) versus copying the materialized [`VertexPacket`]
/// through the ring. This is the data-layout trade the scatter
/// pipeline's staging queues make.
fn bench_packet_fifo(c: &mut Criterion) {
    const OPS: u64 = 200_000;
    let mut group = c.benchmark_group("packet_fifo");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("struct_copy_cap160", |b| {
        b.iter(|| {
            let mut fifo: Fifo<VertexPacket<u64>> = Fifo::new(160);
            for i in 0..80u32 {
                fifo.push(VertexPacket {
                    u: i,
                    prop: u64::from(i),
                    dest: (i % 32) as usize,
                })
                .unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                let pkt = VertexPacket {
                    u: i as u32,
                    prop: i,
                    dest: (i % 32) as usize,
                };
                if fifo.push(pkt).is_ok() {
                    let out = fifo.pop().unwrap();
                    sum = sum.wrapping_add(out.prop).wrapping_add(u64::from(out.u));
                }
            }
            black_box(sum)
        })
    });
    group.bench_function("arena_handle_cap160", |b| {
        b.iter(|| {
            let mut fifo: Fifo<VertexRef> = Fifo::new(160);
            let mut arena: PairArena<u64> = PairArena::with_capacity(160);
            for i in 0..80u32 {
                let handle = arena.alloc(i, u64::from(i));
                fifo.push(VertexRef {
                    handle,
                    dest: i % 32,
                })
                .unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                let handle = arena.alloc(i as u32, i);
                let pkt = VertexRef {
                    handle,
                    dest: (i % 32) as u32,
                };
                if fifo.push(pkt).is_ok() {
                    let out = fifo.pop().unwrap();
                    sum = sum
                        .wrapping_add(arena.payload(out.handle))
                        .wrapping_add(u64::from(arena.key(out.handle)));
                    arena.free(out.handle);
                } else {
                    arena.free(handle);
                }
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(
    hostperf_micro,
    bench_fifo,
    bench_crossbar_tick,
    bench_memory_channel_tick,
    bench_event_wheel,
    bench_packet_fifo
);
criterion_main!(hostperf_micro);
