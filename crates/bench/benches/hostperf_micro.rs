//! Host-performance microbenchmarks of the per-cycle hot-path
//! primitives: `Fifo` push/pop (the ring buffer under every buffered
//! datapath), a loaded crossbar tick, and a loaded `MemoryChannel`
//! tick. The `repro hostperf` target measures whole runs; these isolate
//! the data-structure layer so a ring-buffer or scratch-buffer
//! regression is visible on its own, without a simulation around it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use higraph::sim::{
    ClockedComponent, CrossbarNetwork, DramTiming, Fifo, MemoryChannel, Network, Packet,
};
use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
struct P(usize);
impl Packet for P {
    fn dest(&self) -> usize {
        self.0
    }
}

/// Steady-state FIFO traffic: fill half, then push+pop around the ring
/// so every operation wraps eventually.
fn bench_fifo(c: &mut Criterion) {
    const OPS: u64 = 200_000;
    let mut group = c.benchmark_group("fifo");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("push_pop_cap8", |b| {
        b.iter(|| {
            let mut fifo: Fifo<u64> = Fifo::new(8);
            for i in 0..4u64 {
                fifo.push(i).unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                if fifo.push(i).is_ok() {
                    sum = sum.wrapping_add(fifo.pop().unwrap());
                }
            }
            black_box(sum)
        })
    });
    group.bench_function("push_pop_cap160", |b| {
        b.iter(|| {
            let mut fifo: Fifo<u64> = Fifo::new(160);
            for i in 0..80u64 {
                fifo.push(i).unwrap();
            }
            let mut sum = 0u64;
            for i in 0..OPS {
                if fifo.push(i).is_ok() {
                    sum = sum.wrapping_add(fifo.pop().unwrap());
                }
            }
            black_box(sum)
        })
    });
    group.bench_function("peek_as_slices_cap160", |b| {
        let mut fifo: Fifo<u64> = Fifo::new(160);
        for i in 0..100u64 {
            fifo.push(i).unwrap();
        }
        // wrap the ring so both slices are non-empty
        for _ in 0..60 {
            let v = fifo.pop().unwrap();
            fifo.push(v).unwrap();
        }
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..(OPS / 100) {
                let (a, z) = fifo.as_slices();
                sum = sum.wrapping_add(a.iter().chain(z).sum::<u64>());
            }
            black_box(sum)
        })
    });
    group.finish();
}

/// A 32×32 crossbar ticked under saturating load: the arbitration loop
/// plus the reused grant scratch.
fn bench_crossbar_tick(c: &mut Criterion) {
    const CYCLES: u64 = 20_000;
    let channels = 32;
    let mut group = c.benchmark_group("crossbar_tick");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("loaded_32x32", |b| {
        b.iter(|| {
            let mut xbar: CrossbarNetwork<P> = CrossbarNetwork::new(channels, channels, 8);
            let mut rng = 0x2545F491u64;
            let mut delivered = 0u64;
            for _ in 0..CYCLES {
                for o in 0..channels {
                    if xbar.pop(o).is_some() {
                        delivered += 1;
                    }
                }
                for i in 0..channels {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let _ = xbar.push(i, P((rng >> 33) as usize % channels));
                }
                xbar.tick();
            }
            black_box(delivered)
        })
    });
    group.finish();
}

/// A 16-bank memory channel ticked under a saturating request stream:
/// the issue scan plus the reused per-bank scratch.
fn bench_memory_channel_tick(c: &mut Criterion) {
    const CYCLES: u64 = 20_000;
    let mut group = c.benchmark_group("memory_channel_tick");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("loaded_16banks", |b| {
        b.iter(|| {
            let mut channel = MemoryChannel::new(16, 16, DramTiming::default());
            let mut line = 0u64;
            let mut completed = 0u64;
            for _ in 0..CYCLES {
                while channel.can_accept() {
                    // walk rows slowly so hits, misses, and conflicts mix
                    let bank = (line % 16) as usize;
                    let row = line / 64;
                    if !channel.try_request(line, bank, row) {
                        break;
                    }
                    line += 1;
                }
                channel.tick();
                while channel.pop_ready().is_some() {
                    completed += 1;
                }
            }
            black_box(completed)
        })
    });
    group.finish();
}

criterion_group!(
    hostperf_micro,
    bench_fifo,
    bench_crossbar_tick,
    bench_memory_channel_tick
);
criterion_main!(hostperf_micro);
