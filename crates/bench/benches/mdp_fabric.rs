//! Microbenchmarks of the propagation fabrics themselves (packets/second
//! of simulation), plus Algorithm 1 topology generation and the Verilog
//! emitter — the components a downstream user is most likely to reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higraph::mdp::verilog::{self, VerilogOptions};
use higraph::prelude::*;
use higraph::sim::{CrossbarNetwork, Packet};
use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
struct P(usize);
impl Packet for P {
    fn dest(&self) -> usize {
        self.0
    }
}

const CYCLES: u64 = 2_000;

fn drive<N: Network<P>>(mut net: N, channels: usize) -> u64 {
    let mut delivered = 0u64;
    let mut rng = 0x9E37u64;
    for _ in 0..CYCLES {
        for o in 0..channels {
            if net.pop(o).is_some() {
                delivered += 1;
            }
        }
        for i in 0..channels {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let _ = net.push(i, P((rng >> 33) as usize % channels));
        }
        net.tick();
    }
    delivered
}

fn bench_fabrics(c: &mut Criterion) {
    let channels = 32;
    let mut group = c.benchmark_group("fabric_sim_throughput");
    group.throughput(Throughput::Elements(CYCLES * channels as u64));
    group.bench_function("mdp_32ch", |b| {
        b.iter(|| {
            let topo = Topology::new(channels, 2).expect("valid");
            black_box(drive(MdpNetwork::with_channel_budget(topo, 160), channels))
        })
    });
    group.bench_function("crossbar_32ch", |b| {
        b.iter(|| {
            black_box(drive(
                CrossbarNetwork::new(channels, channels, 128),
                channels,
            ))
        })
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp_generator");
    for n in [32usize, 256] {
        group.bench_with_input(BenchmarkId::new("topology", n), &n, |b, &n| {
            b.iter(|| black_box(Topology::new(black_box(n), 2).expect("valid")))
        });
        group.bench_with_input(BenchmarkId::new("verilog", n), &n, |b, &n| {
            let topo = Topology::new(n, 2).expect("valid");
            b.iter(|| black_box(verilog::generate(&topo, &VerilogOptions::default()).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fabrics, bench_generator);
criterion_main!(benches);
