//! Fig. 8/9 (speedup & throughput): benchmark one simulated scatter/apply
//! execution per design on a representative workload, so `cargo bench`
//! tracks the relative cost (and the `repro` binary prints the actual
//! figure series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_designs(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let mut group = c.benchmark_group("fig8_designs");
    group.sample_size(10);
    for cfg in [
        AcceleratorConfig::graphdyns(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::higraph(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&cfg.name), &cfg, |b, cfg| {
            b.iter(|| {
                let m = Algo::Bfs.run(black_box(cfg), black_box(&graph), scale.pr_iters);
                black_box(m.cycles)
            })
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let cfg = AcceleratorConfig::higraph();
    let mut group = c.benchmark_group("fig8_algorithms");
    group.sample_size(10);
    for algo in Algo::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.label()), &algo, |b, a| {
            b.iter(|| black_box(a.run(&cfg, black_box(&graph), scale.pr_iters).cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_designs, bench_algorithms);
criterion_main!(benches);
