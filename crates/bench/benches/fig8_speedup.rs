//! Fig. 8/9 (speedup & throughput): benchmark one simulated scatter/apply
//! execution per design on a representative workload, plus the whole
//! three-design sweep as one batch through the parallel `BatchRunner` —
//! so `cargo bench` tracks both single-simulation cost and batch wall
//! time (the `repro` binary prints the actual figure series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_designs(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let mut group = c.benchmark_group("fig8_designs");
    group.sample_size(10);
    for cfg in [
        AcceleratorConfig::graphdyns(),
        AcceleratorConfig::higraph_mini(),
        AcceleratorConfig::higraph(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&cfg.name), &cfg, |b, cfg| {
            b.iter(|| {
                let m = Algo::Bfs
                    .run(black_box(cfg), black_box(&graph), scale.pr_iters)
                    .expect("well-sized bench configuration");
                black_box(m.cycles)
            })
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let cfg = AcceleratorConfig::higraph();
    let mut group = c.benchmark_group("fig8_algorithms");
    group.sample_size(10);
    for algo in Algo::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.label()), &algo, |b, a| {
            b.iter(|| {
                black_box(
                    a.run(&cfg, black_box(&graph), scale.pr_iters)
                        .expect("well-sized bench configuration")
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

fn bench_design_batch(c: &mut Criterion) {
    // The Fig. 8 three-design comparison as one parallel batch: wall time
    // here against the single-design times above shows the realized batch
    // speedup on this host.
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Vote);
    let mut group = c.benchmark_group("fig8_batch");
    group.sample_size(10);
    group.bench_function("three_designs_parallel", |b| {
        b.iter(|| {
            let jobs = vec![
                BatchJob::new(
                    "gd",
                    &graph,
                    Bfs::from_source(0),
                    AcceleratorConfig::graphdyns(),
                ),
                BatchJob::new(
                    "mini",
                    &graph,
                    Bfs::from_source(0),
                    AcceleratorConfig::higraph_mini(),
                ),
                BatchJob::new(
                    "hi",
                    &graph,
                    Bfs::from_source(0),
                    AcceleratorConfig::higraph(),
                ),
            ];
            let (results, report) = BatchRunner::parallel().run(jobs);
            black_box((results.len(), report.total_simulated_cycles))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_designs, bench_algorithms, bench_design_batch);
criterion_main!(benches);
