//! Fig. 11 (scalability): benchmark HiGraph at growing channel counts.
//! GraphDynS appears only at 32/64 channels, as in the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_channels(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig11_channels");
    group.sample_size(10);
    for channels in [32usize, 64, 128, 256] {
        let cfg = AcceleratorConfig::higraph().scaled_to(channels);
        group.bench_with_input(BenchmarkId::new("HiGraph", channels), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    Algo::Pr
                        .run(cfg, &graph, scale.pr_iters)
                        .expect("well-sized bench configuration")
                        .cycles,
                )
            })
        });
        if channels <= 64 {
            let gd = AcceleratorConfig::graphdyns().scaled_to(channels);
            group.bench_with_input(BenchmarkId::new("GraphDynS", channels), &gd, |b, cfg| {
                b.iter(|| {
                    black_box(
                        Algo::Pr
                            .run(cfg, &graph, scale.pr_iters)
                            .expect("well-sized bench configuration")
                            .cycles,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_channel_batch(c: &mut Criterion) {
    // The scalability sweep as one batch, including a sliced large-graph
    // schedule at the widest design.
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig11_batch");
    group.sample_size(10);
    group.bench_function("channel_sweep_parallel", |b| {
        b.iter(|| {
            let mut jobs: Vec<_> = [32usize, 64, 128]
                .into_iter()
                .map(|ch| {
                    BatchJob::new(
                        &format!("hi{ch}"),
                        &graph,
                        PageRank::new(scale.pr_iters),
                        AcceleratorConfig::higraph().scaled_to(ch),
                    )
                })
                .collect();
            jobs.push(
                BatchJob::new(
                    "hi256/sliced",
                    &graph,
                    PageRank::new(scale.pr_iters),
                    AcceleratorConfig::higraph().scaled_to(256),
                )
                .sliced(4, 64),
            );
            let (results, _) = BatchRunner::parallel().run(jobs);
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_channels, bench_channel_batch);
criterion_main!(benches);
