//! Fig. 12 (buffer sweep): MDP-network vs FIFO-plus-crossbar in the
//! dataflow-propagation stage across per-channel buffer sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_buffers(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig12_buffers");
    group.sample_size(10);
    for buffer in [40usize, 160, 320] {
        for (name, kind) in [
            ("MDP-network", NetworkKind::Mdp),
            ("FIFO+Crossbar", NetworkKind::Crossbar),
        ] {
            let mut cfg = AcceleratorConfig::higraph();
            cfg.dataflow_network = kind;
            cfg.dataflow_buffer_per_channel = buffer;
            group.bench_with_input(BenchmarkId::new(name, buffer), &cfg, |b, cfg| {
                b.iter(|| {
                    black_box(
                        Algo::Pr
                            .run(cfg, &graph, scale.pr_iters)
                            .expect("well-sized bench configuration")
                            .cycles,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_buffers);
criterion_main!(benches);
