//! Fig. 10 (optimization ablation): benchmark the RMAT14 PR run at each
//! Opt-O/Opt-E/Opt-D step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_opt_levels(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig10_opts");
    group.sample_size(10);
    for opts in OptLevel::ALL {
        let cfg = AcceleratorConfig::higraph_with_opts(opts);
        group.bench_with_input(BenchmarkId::from_parameter(opts.label()), &cfg, |b, cfg| {
            b.iter(|| {
                let m = Algo::Pr
                    .run(black_box(cfg), black_box(&graph), scale.pr_iters)
                    .expect("well-sized bench configuration");
                black_box((m.cycles, m.vpe_starvation_cycles))
            })
        });
    }
    group.finish();
}

fn bench_opt_batch(c: &mut Criterion) {
    // The whole ablation column as one batch through the parallel runner.
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig10_batch");
    group.sample_size(10);
    group.bench_function("four_opt_levels_parallel", |b| {
        b.iter(|| {
            let jobs: Vec<_> = OptLevel::ALL
                .into_iter()
                .map(|opts| {
                    BatchJob::new(
                        opts.label(),
                        &graph,
                        PageRank::new(scale.pr_iters),
                        AcceleratorConfig::higraph_with_opts(opts),
                    )
                })
                .collect();
            let (results, _) = BatchRunner::parallel().run(jobs);
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_opt_levels, bench_opt_batch);
criterion_main!(benches);
