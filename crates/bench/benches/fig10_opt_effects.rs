//! Fig. 10 (optimization ablation): benchmark the RMAT14 PR run at each
//! Opt-O/Opt-E/Opt-D step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higraph::prelude::*;
use higraph_bench::{Algo, Scale};
use std::hint::black_box;

fn bench_opt_levels(c: &mut Criterion) {
    let scale = Scale::tiny();
    let graph = scale.build(Dataset::Rmat14);
    let mut group = c.benchmark_group("fig10_opts");
    group.sample_size(10);
    for opts in OptLevel::ALL {
        let cfg = AcceleratorConfig::higraph_with_opts(opts);
        group.bench_with_input(BenchmarkId::from_parameter(opts.label()), &cfg, |b, cfg| {
            b.iter(|| {
                let m = Algo::Pr.run(black_box(cfg), black_box(&graph), scale.pr_iters);
                black_box((m.cycles, m.vpe_starvation_cycles))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_opt_levels);
criterion_main!(benches);
