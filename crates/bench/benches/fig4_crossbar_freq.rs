//! Fig. 4 (frequency model) and the Sec. 5.4 area/power models: these are
//! analytical, so the bench tracks model-evaluation cost and, more
//! usefully, asserts the calibration stays on the published points.

use criterion::{criterion_group, criterion_main, Criterion};
use higraph::model;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    // calibration guard: a bench run fails loudly if the model drifts
    assert!((model::mdp_area_mm2(32, 160) - 0.375).abs() < 1e-3);
    assert!((model::crossbar_power_mw(32, 128) - 508.1).abs() < 0.5);
    assert!(model::crossbar_frequency_ghz(64) < 1.0);
    assert!((model::mdp_critical_path_ns(256) - 0.97).abs() < 1e-6);

    c.bench_function("fig4_model_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for ports in [4usize, 8, 16, 32, 64, 128, 256] {
                acc += model::crossbar_frequency_ghz(black_box(ports));
                acc +=
                    model::effective_frequency_ghz(model::NetworkKindModel::Mdp, black_box(ports));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
