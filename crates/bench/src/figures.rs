//! One harness function per table/figure of the paper.
//!
//! Every multi-point sweep executes through the
//! [`BatchRunner`] — each (algorithm × dataset ×
//! design) point is an independent deterministic simulation, so the
//! sweeps parallelize across cores with bit-identical results (see
//! `higraph_accel::runner`). See `DESIGN.md`'s experiment index for the
//! figure mapping, and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.

use crate::workload::{Algo, Scale, ShardedSummary};
use higraph::model;
use higraph::prelude::*;
use higraph::sim::DramTiming;
// lint:allow(determinism): host-performance measurement (cycles per host-second); never feeds simulated state
use std::time::Instant;

/// One sweep cell's outcome: metrics, or the stall diagnostic of the
/// configuration that failed its own cell (the sweep itself continues).
pub type CellResult = Result<Metrics, StallDiagnostic>;

/// One row of Table 1 (design configurations).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Design name.
    pub name: String,
    /// Clock in GHz (all designs: 1 GHz).
    pub frequency_ghz: f64,
    /// Front-end channels.
    pub front_channels: usize,
    /// Back-end channels.
    pub back_channels: usize,
    /// On-chip memory in MB (16 for HiGraph variants, 32 for GraphDynS).
    pub onchip_mb: u64,
}

/// Table 1: configurations used for HiGraph and baselines.
pub fn table1() -> Vec<Table1Row> {
    let mb = |layout: model::MemoryLayout| layout.total_bytes() / (1024 * 1024);
    [
        (
            AcceleratorConfig::higraph(),
            mb(model::MemoryLayout::higraph()),
        ),
        (
            AcceleratorConfig::higraph_mini(),
            mb(model::MemoryLayout::higraph()),
        ),
        (
            AcceleratorConfig::graphdyns(),
            mb(model::MemoryLayout::graphdyns()),
        ),
    ]
    .into_iter()
    .map(|(c, onchip_mb)| Table1Row {
        frequency_ghz: c.effective_frequency_ghz(),
        front_channels: c.front_channels,
        back_channels: c.back_channels,
        name: c.name,
        onchip_mb,
    })
    .collect()
}

/// One row of Table 2 (benchmark datasets), spec plus measured build.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Spec vertices (paper's Table 2).
    pub spec_vertices: u32,
    /// Spec edges.
    pub spec_edges: u64,
    /// Spec mean degree.
    pub spec_degree: u32,
    /// Vertices actually built (at the harness scale).
    pub built_vertices: u32,
    /// Edges actually built.
    pub built_edges: u64,
    /// Measured mean degree of the build.
    pub built_degree: f64,
}

/// Table 2: the benchmark datasets, built and measured at `scale`.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    Dataset::ALL
        .into_iter()
        .map(|d| {
            let spec = d.spec();
            let g = scale.build(d);
            Table2Row {
                dataset: d,
                spec_vertices: spec.num_vertices,
                spec_edges: spec.num_edges,
                spec_degree: spec.mean_degree,
                built_vertices: g.num_vertices(),
                built_edges: g.num_edges(),
                built_degree: g.mean_degree(),
            }
        })
        .collect()
}

/// Fig. 4: crossbar frequency (GHz) versus port count.
pub fn fig4() -> Vec<(usize, f64)> {
    [4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|p| (p, model::crossbar_frequency_ghz(p)))
        .collect()
}

/// Fig. 7: the on-chip memory layout regions in bytes, plus per-dataset
/// fit checks.
pub fn fig7() -> (model::MemoryLayout, Vec<(Dataset, bool)>) {
    let layout = model::MemoryLayout::higraph();
    let fits = Dataset::ALL
        .into_iter()
        .map(|d| {
            let s = d.spec();
            (d, layout.fits(s.num_vertices, s.num_edges))
        })
        .collect();
    (layout, fits)
}

/// One cell of the Fig. 8/9 sweep: all three designs on one
/// (algorithm, dataset) workload.
#[derive(Debug, Clone)]
pub struct OverallRow {
    /// Algorithm.
    pub algo: Algo,
    /// Dataset.
    pub dataset: Dataset,
    /// GraphDynS metrics (or its own stall diagnostic).
    pub graphdyns: CellResult,
    /// HiGraph-mini metrics.
    pub higraph_mini: CellResult,
    /// HiGraph metrics.
    pub higraph: CellResult,
}

impl OverallRow {
    /// Fig. 8's HiGraph-mini bar: speedup over GraphDynS (`None` if
    /// either design stalled on this workload).
    pub fn mini_speedup(&self) -> Option<f64> {
        match (&self.higraph_mini, &self.graphdyns) {
            (Ok(mini), Ok(gd)) => Some(mini.speedup_over(gd)),
            _ => None,
        }
    }

    /// Fig. 8's HiGraph bar: speedup over GraphDynS.
    pub fn higraph_speedup(&self) -> Option<f64> {
        match (&self.higraph, &self.graphdyns) {
            (Ok(hi), Ok(gd)) => Some(hi.speedup_over(gd)),
            _ => None,
        }
    }
}

/// Figs. 8 and 9: the full 4-algorithm × 6-dataset × 3-design sweep,
/// batched across cores. This is the headline experiment; expect minutes
/// at full scale on one core, much less on many.
pub fn overall(scale: Scale) -> Vec<OverallRow> {
    let runner = BatchRunner::parallel();
    // Build each dataset once (itself parallel), share across algorithms.
    let graphs: Vec<(Dataset, Csr)> = runner.execute(&Dataset::ALL, |&d| (d, scale.build(d)));
    let points: Vec<(Algo, usize)> = Algo::ALL
        .into_iter()
        .flat_map(|algo| (0..graphs.len()).map(move |g| (algo, g)))
        .collect();
    runner.execute(&points, |&(algo, g)| {
        let (dataset, ref graph) = graphs[g];
        OverallRow {
            algo,
            dataset,
            graphdyns: algo.run(&AcceleratorConfig::graphdyns(), graph, scale.pr_iters),
            higraph_mini: algo.run(&AcceleratorConfig::higraph_mini(), graph, scale.pr_iters),
            higraph: algo.run(&AcceleratorConfig::higraph(), graph, scale.pr_iters),
        }
    })
}

/// One bar group of Fig. 10: one algorithm at one optimization step.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Algorithm.
    pub algo: Algo,
    /// Optimization step.
    pub opts: OptLevel,
    /// Measured metrics (Fig. 10a reads `gteps()`, Fig. 10b reads
    /// `vpe_starvation_cycles`), or the cell's own stall diagnostic.
    pub metrics: CellResult,
}

/// Fig. 10 (a & b): effect of Opt-O / Opt-E / Opt-D on RMAT14.
///
/// Always uses the *full-scale* R14: scaled-down R-MAT graphs concentrate
/// so much traffic on their hottest vertex that per-bank serialization
/// caps every design identically and hides the fabric effects this figure
/// exists to show (see EXPERIMENTS.md, "dataset-scale notes").
pub fn fig10(scale: Scale) -> Vec<AblationRow> {
    let graph = Dataset::Rmat14.build();
    let points: Vec<(Algo, OptLevel)> = Algo::ALL
        .into_iter()
        .flat_map(|algo| OptLevel::ALL.into_iter().map(move |opts| (algo, opts)))
        .collect();
    BatchRunner::parallel().execute(&points, |&(algo, opts)| AblationRow {
        algo,
        opts,
        metrics: algo.run(
            &AcceleratorConfig::higraph_with_opts(opts),
            &graph,
            scale.pr_iters,
        ),
    })
}

/// One point of Fig. 11: a design at a back-end channel count.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Design name ("HiGraph" / "GraphDynS").
    pub design: &'static str,
    /// Channel count.
    pub channels: usize,
    /// The cell's outcome; `None` where the design is unsupported
    /// (GraphDynS beyond 64 channels — Fig. 4's frequency wall).
    pub result: Option<CellResult>,
}

/// Fig. 11: throughput versus number of back-end channels (PR, RMAT14).
/// Like [`fig10`], always runs full-scale R14.
pub fn fig11(scale: Scale) -> Vec<ScalabilityRow> {
    let graph = Dataset::Rmat14.build();
    let points: Vec<(&'static str, usize)> = [32, 64, 128, 256]
        .into_iter()
        .flat_map(|ch| [("HiGraph", ch), ("GraphDynS", ch)])
        .collect();
    BatchRunner::parallel().execute(&points, |&(design, channels)| {
        // GraphDynS "does not support more than 64 channels due to
        // significant frequency decline" (Sec. 5.3).
        let result = if design == "HiGraph" {
            let hi = AcceleratorConfig::higraph().scaled_to(channels);
            Some(Algo::Pr.run(&hi, &graph, scale.pr_iters))
        } else if channels <= 64 {
            let gd = AcceleratorConfig::graphdyns().scaled_to(channels);
            Some(Algo::Pr.run(&gd, &graph, scale.pr_iters))
        } else {
            None
        };
        ScalabilityRow {
            design,
            channels,
            result,
        }
    })
}

/// The measured values of one multi-chip sweep cell.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Aggregate critical-path cycles (lock-step scatter + slowest apply).
    pub cycles: u64,
    /// Edge traversals across all chips.
    pub edges: u64,
    /// Aggregate modeled throughput in GTEPS.
    pub gteps: f64,
    /// Aggregate cycles per processed edge (scale-out efficiency).
    pub cycles_per_edge: f64,
    /// Update packets that crossed the inter-chip link.
    pub cross_chip_packets: u64,
    /// Compute-only cycles of the slowest chip (before communication).
    pub max_chip_scatter_cycles: u64,
    /// Per-chip total cycles, indexed by chip.
    pub per_chip_cycles: Vec<u64>,
}

impl From<ShardedSummary> for ShardPoint {
    fn from(r: ShardedSummary) -> Self {
        ShardPoint {
            cycles: r.metrics.cycles,
            edges: r.metrics.edges_processed,
            gteps: r.metrics.gteps(),
            cycles_per_edge: r.cycles_per_edge,
            cross_chip_packets: r.cross_chip_packets,
            max_chip_scatter_cycles: r.max_chip_scatter_cycles,
            per_chip_cycles: r.chips.iter().map(|c| c.cycles).collect(),
        }
    }
}

/// One point of the multi-chip scalability sweep (the Fig. 11 harness
/// extended past a single accelerator).
#[derive(Debug, Clone)]
pub struct ShardSweepRow {
    /// Algorithm.
    pub algo: Algo,
    /// Chip count.
    pub chips: usize,
    /// The cell's measurements, or its own stall diagnostic.
    pub result: Result<ShardPoint, StallDiagnostic>,
}

/// Multi-chip scalability over an arbitrary algorithm set: each
/// algorithm runs on the Twitter stand-in across the given chip counts
/// with the default board-level link model. P = 1 is bit-identical to
/// the serial engine (the integration tests assert this), so that row
/// doubles as each algorithm's serial baseline. A stalled cell fails
/// alone — its row carries the diagnostic.
pub fn shard_sweep_algos(
    scale: Scale,
    algos: &[Algo],
    chip_counts: &[usize],
) -> Vec<ShardSweepRow> {
    let graph = scale.build(Dataset::Twitter);
    let points: Vec<(Algo, usize)> = algos
        .iter()
        .flat_map(|&algo| chip_counts.iter().map(move |&chips| (algo, chips)))
        .collect();
    BatchRunner::parallel().execute(&points, |&(algo, chips)| ShardSweepRow {
        algo,
        chips,
        result: algo
            .run_sharded(
                &AcceleratorConfig::higraph(),
                ShardConfig::new(chips),
                &graph,
                scale.pr_iters,
            )
            .map(ShardPoint::from),
    })
}

/// The smoke-test shard sweep: PageRank across P ∈ {1, 2, 4, 8}.
pub fn shard_sweep(scale: Scale) -> Vec<ShardSweepRow> {
    shard_sweep_algos(scale, &[Algo::Pr], &[1, 2, 4, 8])
}

/// The full six-algorithm sharded sweep (the nightly `shardfull`
/// target): every [`Algo`] at the serial-equivalent P = 1 and a
/// representative multi-chip P = 4.
pub fn shard_sweep_full(scale: Scale) -> Vec<ShardSweepRow> {
    shard_sweep_algos(scale, &Algo::ALL, &[1, 4])
}

/// The measured values of one off-chip memory sweep cell.
#[derive(Debug, Clone)]
pub struct MemPoint {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Modeled throughput.
    pub gteps: f64,
    /// Cache hit rate (lines served on chip).
    pub cache_hit_rate: f64,
    /// Cache lines fetched from DRAM.
    pub cache_misses: u64,
    /// DRAM row-buffer hit rate (locality behind the cache).
    pub dram_row_hit_rate: f64,
    /// Pipeline cycles stalled on off-chip data, summed over channels.
    pub mem_stall_cycles: u64,
}

/// One point of the off-chip memory sweep (`repro mem`).
#[derive(Debug, Clone)]
pub struct MemSweepRow {
    /// Edge/offset cache capacity in KiB.
    pub cache_kb: usize,
    /// The cell's measurements, or its own stall diagnostic.
    pub result: Result<MemPoint, StallDiagnostic>,
}

/// The cache-size axis of [`mem_sweep`], smallest to largest.
pub const MEM_SWEEP_CACHE_KB: [usize; 4] = [16, 64, 256, 1024];

/// Off-chip memory sweep: PageRank on the Twitter stand-in under the
/// HBM2-class memory model ([`MemoryConfig::hbm2`]), sweeping the
/// edge/offset cache capacity. Hit rate rises and memory-stall cycles
/// fall monotonically with cache size — the `repro mem` target gates
/// both against the checked-in baseline. The infinite-bandwidth default
/// (`memory: None`) is untouched by this sweep.
pub fn mem_sweep(scale: Scale) -> Vec<MemSweepRow> {
    mem_sweep_on(&scale.build(Dataset::Twitter), scale.pr_iters)
}

/// [`mem_sweep`] over an arbitrary graph (unit tests run it on a small
/// one — memory-stalled cycle counts make the Twitter stand-in a
/// release-build-only workload).
fn mem_sweep_on(graph: &Csr, pr_iters: u32) -> Vec<MemSweepRow> {
    BatchRunner::parallel().execute(&MEM_SWEEP_CACHE_KB, |&cache_kb| {
        let mut cfg = AcceleratorConfig::higraph();
        cfg.name = format!("HiGraph[mem,c{cache_kb}KB]");
        cfg.memory = Some(MemoryConfig::hbm2().with_cache_kb(cache_kb));
        MemSweepRow {
            cache_kb,
            result: Algo::Pr.run(&cfg, graph, pr_iters).map(|m| MemPoint {
                cycles: m.cycles,
                gteps: m.gteps(),
                cache_hit_rate: m.memory.cache_hit_rate(),
                cache_misses: m.memory.cache_misses,
                dram_row_hit_rate: m.memory.row_hit_rate(),
                mem_stall_cycles: m.memory.stall_cycles,
            }),
        }
    })
}

/// One leg of the `simspeed` host-performance measurement.
#[derive(Debug, Clone)]
pub struct SimSpeedRow {
    /// "naive" (per-cycle ticking) or "fast-forward".
    pub mode: &'static str,
    /// Host wall-clock seconds for the whole memory sweep.
    pub host_seconds: f64,
    /// Simulated cycles summed over the sweep (bit-identical across
    /// modes — the harness asserts it).
    pub simulated_cycles: u64,
    /// Simulated cycles per host second — the simulator's speed figure.
    pub cycles_per_host_second: f64,
}

/// The memory configuration `simspeed` measures: the `mem` sweep's
/// cache axis over a single bandwidth-starved memory stack with
/// DDR-class (10x slower than HBM2) timings. This is the
/// stall-dominated regime the event-driven scheduler exists for — with
/// the plentiful-bandwidth [`MemoryConfig::hbm2`] default the deep
/// range-network buffering keeps some channel trickling almost every
/// cycle, which cycle-exact fast-forward honestly cannot skip (and does
/// not: it stays within a few percent of the naive loop there).
pub fn simspeed_memory(cache_kb: usize) -> MemoryConfig {
    MemoryConfig {
        channels: 1,
        banks_per_channel: 4,
        queue_depth: 8,
        timing: DramTiming {
            t_cas: 140,
            t_rcd: 140,
            t_rp: 140,
        },
        ..MemoryConfig::hbm2().with_cache_kb(cache_kb)
    }
}

/// Host-performance comparison of the event-driven fast-forward
/// scheduler (`repro simspeed`): runs the `mem` cache-size sweep under
/// [`simspeed_memory`] — once with per-cycle ticking and once with
/// fast-forward — and reports simulated cycles per host second for both
/// plus the host-time speedup. Like Fig. 10's fixed full-scale R14,
/// the workload is pinned (PR x2 on the /32 Twitter stand-in)
/// independent of `--full` so the naive leg stays CI-sized. The
/// simulated cycle counts must be bit-identical; the harness panics
/// otherwise (that would be a scheduler bug, not a measurement).
pub fn simspeed(_scale: Scale) -> (Vec<SimSpeedRow>, f64) {
    simspeed_on(&Dataset::Twitter.build_scaled(32), 2)
}

/// [`simspeed`] over an arbitrary graph (unit tests run the harness on a
/// small one — see [`mem_sweep`]'s note on the Twitter stand-in).
fn simspeed_on(graph: &Csr, pr_iters: u32) -> (Vec<SimSpeedRow>, f64) {
    let sweep = |fast_forward: bool| {
        // lint:allow(determinism): host-performance measurement (cycles per host-second); never feeds simulated state
        let start = Instant::now();
        let rows = BatchRunner::parallel().execute(&MEM_SWEEP_CACHE_KB, |&cache_kb| {
            let mut cfg = AcceleratorConfig::higraph();
            cfg.name = format!("HiGraph[simspeed,c{cache_kb}KB]");
            cfg.memory = Some(simspeed_memory(cache_kb));
            Algo::Pr.run_with(&cfg, graph, pr_iters, fast_forward)
        });
        let host_seconds = start.elapsed().as_secs_f64();
        let simulated_cycles = rows
            .iter()
            .map(|r| r.as_ref().map_or(0, |m| m.cycles))
            .sum::<u64>();
        (host_seconds, simulated_cycles)
    };
    let (naive_s, naive_cycles) = sweep(false);
    let (fast_s, fast_cycles) = sweep(true);
    assert_eq!(
        naive_cycles, fast_cycles,
        "fast-forward must be cycle-exact"
    );
    let row = |mode, host_seconds: f64, simulated_cycles: u64| SimSpeedRow {
        mode,
        host_seconds,
        simulated_cycles,
        cycles_per_host_second: simulated_cycles as f64 / host_seconds.max(1e-9),
    };
    let speedup = naive_s / fast_s.max(1e-9);
    (
        vec![
            row("naive", naive_s, naive_cycles),
            row("fast-forward", fast_s, fast_cycles),
        ],
        speedup,
    )
}

/// One leg of the `repro hostperf` host-throughput measurement.
#[derive(Debug, Clone)]
pub struct HostPerfRow {
    /// Which leg: `shardfull_p4` (intra-run-parallel multi-chip suite)
    /// or `memstarved` (bandwidth-starved single-chip sweep).
    pub name: &'static str,
    /// Host wall-clock seconds for the leg.
    pub host_seconds: f64,
    /// Simulated cycles the leg produced (deterministic; only the host
    /// time varies run to run).
    pub simulated_cycles: u64,
    /// Simulated cycles per host second — the simulator's speed figure.
    pub cycles_per_host_second: f64,
    /// Intra-run worker threads the leg used per simulation.
    pub workers: usize,
    /// Runs in this leg that stalled (their cycles are missing from the
    /// total while their host time still accrued — recorded so a
    /// regression cannot silently corrupt the trajectory).
    pub stalled: usize,
    /// Fast-forward window selections this leg answered through an
    /// indexed event wheel (`higraph_sim::selection` delta across the
    /// leg) — recorded next to `cycles_per_host_second` so the
    /// trajectory shows *how* windows were found, not just how fast.
    pub wheel_windows: u64,
    /// Window selections answered by the legacy O(components) poll.
    pub poll_windows: u64,
}

/// Shared-pool activity across the whole `repro hostperf` measurement
/// (`hostperf.pool.*` keys): how much of the work flowed through the
/// [`higraph::pool::CorePool`] and how busy its resident workers were.
#[derive(Debug, Clone, Copy)]
pub struct PoolActivityRow {
    /// Resident workers in the shared pool.
    pub workers: usize,
    /// Queued pool tasks executed by workers (batch runners + teams).
    pub tasks_executed: u64,
    /// Subset of `tasks_executed` stolen from another worker's deque.
    pub tasks_stolen: u64,
    /// Queued tasks reclaimed and run inline by the submitting thread.
    pub tasks_inline: u64,
    /// Drain leases served during the measurement.
    pub lease_requests: u64,
    /// Resident workers handed to those leases.
    pub lease_workers_granted: u64,
    /// Temporary threads attached by exact leases beyond the idle supply.
    pub lease_workers_oversubscribed: u64,
    /// Busy nanoseconds per resident worker-nanosecond over the window
    /// (0.0 when the pool has no resident workers).
    pub occupancy: f64,
}

/// Host-performance trajectory (`repro hostperf`): absolute simulated
/// cycles per host second on two fixed workloads, recorded so future
/// PRs can see the trend. Informational — never gated (host speed is
/// machine-dependent), unlike `simspeed`'s fast-forward ratio.
///
/// * `shardfull_p4` — the six-algorithm sharded suite at P = 4, one run
///   at a time with intra-run chip parallelism enabled
///   ([`crate::Algo::run_sharded_threads`] with `threads = None`): the
///   single-run-latency view of the multi-chip executor.
/// * `memstarved` — the `simspeed` cache sweep (bandwidth-starved
///   single stack, fast-forward on, pinned at TW/32 × 2 PR iterations):
///   the per-cycle hot path under memory stalls.
pub fn hostperf(scale: Scale) -> (Vec<HostPerfRow>, PoolActivityRow) {
    hostperf_on(
        &scale.build(Dataset::Twitter),
        &Dataset::Twitter.build_scaled(32),
        scale.pr_iters,
    )
}

/// [`hostperf`] over explicit graphs (unit tests run it on small ones).
fn hostperf_on(
    shard_graph: &Csr,
    mem_graph: &Csr,
    pr_iters: u32,
) -> (Vec<HostPerfRow>, PoolActivityRow) {
    use higraph::pool::CorePool;
    use higraph::sim::selection::{self, SelectionCounts};
    let pool = CorePool::global();
    let pool_before = pool.snapshot();
    // lint:allow(determinism): host-performance measurement (cycles per host-second); never feeds simulated state
    let pool_window = Instant::now();
    let row = |name,
               host_seconds: f64,
               simulated_cycles: u64,
               workers,
               stalled,
               selections: SelectionCounts| HostPerfRow {
        name,
        host_seconds,
        simulated_cycles,
        cycles_per_host_second: simulated_cycles as f64 / host_seconds.max(1e-9),
        workers,
        stalled,
        wheel_windows: selections.wheel_windows,
        poll_windows: selections.poll_windows,
    };

    let chips = 4;
    let shard_workers = higraph::accel::sharded::auto_worker_threads().min(chips);
    let shard_selections_before = selection::snapshot();
    // lint:allow(determinism): host-performance measurement (cycles per host-second); never feeds simulated state
    let start = Instant::now();
    let mut shard_cycles = 0u64;
    let mut shard_stalled = 0usize;
    for algo in Algo::ALL {
        match algo.run_sharded_threads(
            &AcceleratorConfig::higraph(),
            ShardConfig::new(chips),
            shard_graph,
            pr_iters,
            None,
        ) {
            // total simulated work: every chip's cycles, not just the
            // critical path — that is what the host actually computes
            Ok(summary) => {
                shard_cycles += summary.chips.iter().map(|c| c.cycles).sum::<u64>();
            }
            Err(stall) => {
                eprintln!("hostperf shardfull_p4 {} STALL: {stall}", algo.label());
                shard_stalled += 1;
            }
        }
    }
    let shard_seconds = start.elapsed().as_secs_f64();
    let shard_selections = selection::snapshot().since(&shard_selections_before);

    let mem_selections_before = selection::snapshot();
    // lint:allow(determinism): host-performance measurement (cycles per host-second); never feeds simulated state
    let start = Instant::now();
    let mut mem_cycles = 0u64;
    let mut mem_stalled = 0usize;
    for &cache_kb in &MEM_SWEEP_CACHE_KB {
        let mut cfg = AcceleratorConfig::higraph();
        cfg.name = format!("HiGraph[hostperf,c{cache_kb}KB]");
        cfg.memory = Some(simspeed_memory(cache_kb));
        match Algo::Pr.run(&cfg, mem_graph, pr_iters.min(2)) {
            Ok(m) => mem_cycles += m.cycles,
            Err(stall) => {
                eprintln!("hostperf memstarved c{cache_kb}KB STALL: {stall}");
                mem_stalled += 1;
            }
        }
    }
    let mem_seconds = start.elapsed().as_secs_f64();
    let mem_selections = selection::snapshot().since(&mem_selections_before);

    let window_ns = pool_window.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let delta = pool.snapshot().since(&pool_before);
    let pool_row = PoolActivityRow {
        workers: pool.workers(),
        tasks_executed: delta.tasks_executed,
        tasks_stolen: delta.tasks_stolen,
        tasks_inline: delta.tasks_inline,
        lease_requests: delta.lease_requests,
        lease_workers_granted: delta.lease_workers_granted,
        lease_workers_oversubscribed: delta.lease_workers_oversubscribed,
        occupancy: delta.occupancy(window_ns, pool.workers()),
    };

    let rows = vec![
        row(
            "shardfull_p4",
            shard_seconds,
            shard_cycles,
            shard_workers,
            shard_stalled,
            shard_selections,
        ),
        row(
            "memstarved",
            mem_seconds,
            mem_cycles,
            1,
            mem_stalled,
            mem_selections,
        ),
    ];
    (rows, pool_row)
}

/// One point of Fig. 12: a dataflow fabric at a per-channel buffer size.
#[derive(Debug, Clone)]
pub struct BufferSweepRow {
    /// "MDP-network" or "FIFO+Crossbar".
    pub design: &'static str,
    /// Buffer entries per channel.
    pub buffer: usize,
    /// PR/RMAT14 throughput, or the cell's own stall diagnostic (tiny
    /// buffers genuinely deadlock some fabrics — that is a result, not
    /// a crash).
    pub gteps: Result<f64, StallDiagnostic>,
}

/// Fig. 12: throughput versus per-channel FIFO buffer size, MDP-network
/// against FIFO-plus-crossbar in the dataflow-propagation stage (all else
/// identical — Sec. 5.4).
/// Like [`fig10`], always runs full-scale R14.
pub fn fig12(scale: Scale) -> Vec<BufferSweepRow> {
    let graph = Dataset::Rmat14.build();
    let points: Vec<(&'static str, NetworkKind, usize)> = [10, 20, 40, 80, 160, 240, 320]
        .into_iter()
        .flat_map(|buffer| {
            [
                ("MDP-network", NetworkKind::Mdp, buffer),
                ("FIFO+Crossbar", NetworkKind::Crossbar, buffer),
            ]
        })
        .collect();
    BatchRunner::parallel().execute(&points, |&(design, kind, buffer)| {
        let mut cfg = AcceleratorConfig::higraph();
        cfg.name = format!("HiGraph[df={design},buf={buffer}]");
        cfg.dataflow_network = kind;
        cfg.dataflow_buffer_per_channel = buffer;
        BufferSweepRow {
            design,
            buffer,
            gteps: Algo::Pr
                .run(&cfg, &graph, scale.pr_iters)
                .map(|m| m.gteps()),
        }
    })
}

/// One point of the Sec. 5.4 radix sweep.
#[derive(Debug, Clone)]
pub struct RadixRow {
    /// FIFO write-port count.
    pub radix: usize,
    /// Achieved clock under the radix-centralization model.
    pub frequency_ghz: f64,
    /// PR/RMAT14 throughput, or the cell's own stall diagnostic.
    pub gteps: Result<f64, StallDiagnostic>,
}

/// Sec. 5.4 design option: MDP-network radix sweep (on a 64-channel
/// design, where radices 2/4/8/64 all divide evenly).
/// Like [`fig10`], always runs full-scale R14.
pub fn radix_sweep(scale: Scale) -> Vec<RadixRow> {
    let graph = Dataset::Rmat14.build();
    BatchRunner::parallel().execute(&[2usize, 4, 8, 64], |&radix| {
        let mut cfg = AcceleratorConfig::higraph().scaled_to(64);
        cfg.radix = radix;
        cfg.name = format!("HiGraph-64[r{radix}]");
        let gteps = Algo::Pr
            .run(&cfg, &graph, scale.pr_iters)
            .map(|m| m.gteps());
        RadixRow {
            radix,
            frequency_ghz: cfg.effective_frequency_ghz(),
            gteps,
        }
    })
}

/// One point of the Fig. 5 design-theory comparison.
#[derive(Debug, Clone)]
pub struct DesignTheoryRow {
    /// Dataflow fabric used ("Crossbar" / "nW1R FIFO" / "MDP-network").
    pub fabric: &'static str,
    /// Buffer entries per channel.
    pub buffer: usize,
    /// PR/RMAT14 metrics, or the cell's own stall diagnostic.
    pub metrics: CellResult,
}

/// Fig. 5 design theory: the three candidate solutions to the
/// interaction-across-channels problem — arbitration (crossbar), the naive
/// nW1R FIFO, and the MDP-network — swapped into the dataflow-propagation
/// stage. Always runs full-scale R14 (see [`fig10`]).
/// The two buffer sizes contrast the naive FIFO's "large requirement and
/// low utilization of buffer capacity" (a 32-writer FIFO only admits
/// writes while 32+ slots are free, so small buffers are mostly wasted)
/// against the MDP-network, which works from small per-stage FIFOs.
pub fn fig5_design_theory(scale: Scale) -> Vec<DesignTheoryRow> {
    let graph = Dataset::Rmat14.build();
    let points: Vec<(&'static str, NetworkKind, usize)> = [40usize, 160]
        .into_iter()
        .flat_map(|buffer| {
            [
                ("Crossbar", NetworkKind::Crossbar, buffer),
                ("nW1R FIFO", NetworkKind::NaiveFifo, buffer),
                ("MDP-network", NetworkKind::Mdp, buffer),
            ]
        })
        .collect();
    BatchRunner::parallel().execute(&points, |&(fabric, kind, buffer)| {
        let mut cfg = AcceleratorConfig::higraph();
        cfg.name = format!("HiGraph[df={fabric},buf={buffer}]");
        cfg.dataflow_network = kind;
        cfg.dataflow_buffer_per_channel = buffer;
        DesignTheoryRow {
            fabric,
            buffer,
            metrics: Algo::Pr.run(&cfg, &graph, scale.pr_iters),
        }
    })
}

/// One point of the dispatcher read-port ablation (a design choice
/// DESIGN.md calls out: the final edge-network stage is a 2W2R module, so
/// each Dispatcher has two read ports).
#[derive(Debug, Clone)]
pub struct DispatcherAblationRow {
    /// Dispatcher read ports.
    pub read_ports: usize,
    /// PR metrics on the Epinions stand-in (front-end/edge bound, where
    /// dispatcher bandwidth matters), or the cell's stall diagnostic.
    pub metrics: CellResult,
}

/// Ablation: dispatcher read ports 1 vs 2 vs 4 on an edge-bound workload.
pub fn dispatcher_ablation(scale: Scale) -> Vec<DispatcherAblationRow> {
    let graph = scale.build(Dataset::Epinions);
    BatchRunner::parallel().execute(&[1usize, 2, 4], |&read_ports| {
        let mut cfg = AcceleratorConfig::higraph_mini();
        cfg.name = format!("HiGraph-mini[{read_ports}R]");
        cfg.dispatcher_read_ports = read_ports;
        DispatcherAblationRow {
            read_ports,
            metrics: Algo::Pr.run(&cfg, &graph, scale.pr_iters),
        }
    })
}

/// Sec. 5.4 area/power comparison at the paper's synthesis points.
#[derive(Debug, Clone)]
pub struct AreaPowerRow {
    /// Design name.
    pub design: &'static str,
    /// Buffer entries per channel.
    pub buffer: usize,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Sec. 5.4: area and power of the dataflow-propagation fabric.
pub fn area_power() -> Vec<AreaPowerRow> {
    vec![
        AreaPowerRow {
            design: "MDP-network",
            buffer: 160,
            area_mm2: model::mdp_area_mm2(32, 160),
            power_mw: model::mdp_power_mw(32, 160),
        },
        AreaPowerRow {
            design: "FIFO+Crossbar",
            buffer: 128,
            area_mm2: model::crossbar_area_mm2(32, 128),
            power_mw: model::crossbar_power_mw(32, 128),
        },
    ]
}

/// One row of the batch-runner throughput demonstration.
#[derive(Debug, Clone)]
pub struct BatchSweepRow {
    /// Job label.
    pub label: String,
    /// Simulated throughput of that design point.
    pub gteps: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Whether the job used the sliced large-graph schedule.
    pub sliced: bool,
}

/// The batch-runner demonstration: one typed batch of PageRank jobs —
/// all three Table 1 designs, a buffer-starved variant, and two sliced
/// large-graph schedules — executed in parallel, with the aggregate
/// report. Results are bit-identical to serial execution
/// (`tests/batch_runner.rs` asserts this for the same job shapes).
pub fn batch_throughput(scale: Scale) -> (Vec<BatchSweepRow>, BatchReport) {
    let graph = scale.build(Dataset::Slashdot);
    let pr = scale.pr_iters;
    let mut small_buffer = AcceleratorConfig::higraph();
    small_buffer.name = "HiGraph[buf=20]".to_string();
    small_buffer.dataflow_buffer_per_channel = 20;
    let jobs = vec![
        BatchJob::new(
            "GraphDynS",
            &graph,
            PageRank::new(pr),
            AcceleratorConfig::graphdyns(),
        ),
        BatchJob::new(
            "HiGraph-mini",
            &graph,
            PageRank::new(pr),
            AcceleratorConfig::higraph_mini(),
        ),
        BatchJob::new(
            "HiGraph",
            &graph,
            PageRank::new(pr),
            AcceleratorConfig::higraph(),
        ),
        BatchJob::new("HiGraph[buf=20]", &graph, PageRank::new(pr), small_buffer),
        BatchJob::new(
            "HiGraph/4 slices",
            &graph,
            PageRank::new(pr),
            AcceleratorConfig::higraph(),
        )
        .sliced(4, 64),
        BatchJob::new(
            "HiGraph/8 slices",
            &graph,
            PageRank::new(pr),
            AcceleratorConfig::higraph(),
        )
        .sliced(8, 64),
    ];
    let (results, report) = BatchRunner::parallel().run(jobs);
    let rows = results
        .into_iter()
        .map(|r| BatchSweepRow {
            label: r.label,
            gteps: r.metrics.gteps(),
            cycles: r.metrics.cycles,
            sliced: r.sliced.is_some(),
        })
        .collect();
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].front_channels, 32);
        assert_eq!(rows[1].front_channels, 4);
        assert_eq!(rows[2].onchip_mb, 32); // Table 1: GraphDynS has 32 MB
        assert!(rows.iter().all(|r| (r.frequency_ghz - 1.0).abs() < 1e-9));
    }

    #[test]
    fn fig4_declines() {
        let pts = fig4();
        assert_eq!(pts.len(), 7);
        assert!(pts.windows(2).all(|w| w[0].1 > w[1].1));
    }

    #[test]
    fn fig7_all_datasets_fit() {
        let (_, fits) = fig7();
        assert!(fits.iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn area_power_matches_sec54() {
        let rows = area_power();
        assert!((rows[0].area_mm2 - 0.375).abs() < 1e-3);
        assert!((rows[0].power_mw - 621.2).abs() < 0.5);
        assert!((rows[1].area_mm2 - 0.292).abs() < 1e-3);
        assert!((rows[1].power_mw - 508.1).abs() < 0.5);
    }

    #[test]
    fn shard_sweep_reports_traffic_and_efficiency() {
        let rows = shard_sweep(Scale::tiny());
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows.iter().map(|r| r.chips).collect::<Vec<_>>(),
            [1, 2, 4, 8]
        );
        let points: Vec<&ShardPoint> = rows
            .iter()
            .map(|r| r.result.as_ref().expect("well-sized config"))
            .collect();
        // every chip count traverses the same edges
        assert!(points.iter().all(|p| p.edges == points[0].edges));
        // a single chip never crosses the link; partitions do
        assert_eq!(points[0].cross_chip_packets, 0);
        assert!(points[1..].iter().all(|p| p.cross_chip_packets > 0));
        for (r, p) in rows.iter().zip(&points) {
            assert_eq!(p.per_chip_cycles.len(), r.chips);
            assert!(p.cycles_per_edge > 0.0);
            assert!(p.max_chip_scatter_cycles <= p.cycles);
        }
    }

    #[test]
    fn full_shard_sweep_covers_six_algorithms() {
        let rows = shard_sweep_full(Scale::tiny());
        assert_eq!(rows.len(), Algo::ALL.len() * 2);
        for algo in Algo::ALL {
            let mine: Vec<_> = rows.iter().filter(|r| r.algo == algo).collect();
            assert_eq!(mine.len(), 2, "{}", algo.label());
            for r in mine {
                let p = r.result.as_ref().expect("well-sized config");
                assert!(p.edges > 0, "{} x{}", algo.label(), r.chips);
            }
        }
    }

    #[test]
    fn mem_sweep_is_monotone_in_cache_size() {
        // the smallest Table 2 dataset: debug builds must finish fast
        let rows = mem_sweep_on(&Scale::tiny().build(Dataset::Vote), 2);
        assert_eq!(rows.len(), MEM_SWEEP_CACHE_KB.len());
        let points: Vec<(usize, &MemPoint)> = rows
            .iter()
            .map(|r| (r.cache_kb, r.result.as_ref().expect("well-sized config")))
            .collect();
        for pair in points.windows(2) {
            assert!(
                pair[0].1.cache_hit_rate <= pair[1].1.cache_hit_rate,
                "{}KB {} vs {}KB {}",
                pair[0].0,
                pair[0].1.cache_hit_rate,
                pair[1].0,
                pair[1].1.cache_hit_rate
            );
            assert!(
                pair[0].1.mem_stall_cycles >= pair[1].1.mem_stall_cycles,
                "{}KB {} vs {}KB {}",
                pair[0].0,
                pair[0].1.mem_stall_cycles,
                pair[1].0,
                pair[1].1.mem_stall_cycles
            );
        }
        for (cache_kb, p) in &points {
            assert!(p.cache_hit_rate.is_finite() && p.dram_row_hit_rate.is_finite());
            assert!(p.cache_misses > 0, "{cache_kb}KB must still miss cold");
        }
    }

    #[test]
    fn radix_sweep_shows_centralization_penalty() {
        let rows = radix_sweep(Scale::tiny());
        let small: Vec<_> = rows.iter().filter(|r| r.radix <= 8).collect();
        let large = rows.iter().find(|r| r.radix == 64).expect("radix 64");
        // small radices hold the 1 GHz target; radix 64 does not
        assert!(small.iter().all(|r| (r.frequency_ghz - 1.0).abs() < 1e-9));
        assert!(large.frequency_ghz < 1.0);
    }

    #[test]
    fn hostperf_reports_both_legs() {
        let g = Scale::tiny().build(Dataset::Vote);
        let (rows, pool) = hostperf_on(&g, &g, 2);
        assert_eq!(rows.len(), 2);
        // the P = 4 leg drains through pool leases whenever the host has
        // cores to lend; on a single-core host the counters stay zero
        assert!(pool.occupancy >= 0.0 && pool.occupancy.is_finite());
        if pool.workers > 0 {
            assert!(pool.lease_requests > 0, "shardfull_p4 leases per drain");
            assert!(pool.lease_workers_granted > 0);
        }
        assert_eq!(rows[0].name, "shardfull_p4");
        assert_eq!(rows[1].name, "memstarved");
        for r in &rows {
            assert!(r.simulated_cycles > 0, "{}", r.name);
            assert!(r.cycles_per_host_second > 0.0, "{}", r.name);
            assert!(r.cycles_per_host_second.is_finite(), "{}", r.name);
            assert!(r.workers >= 1, "{}", r.name);
            assert_eq!(r.stalled, 0, "{}: well-sized presets never stall", r.name);
        }
        assert!(rows[0].workers <= 4, "capped at the chip count");
    }

    #[test]
    fn simspeed_reports_identical_cycles_for_both_modes() {
        // a small graph: this is the harness-shape test, not the perf
        // gate (the repro binary gates the measured ratio in release)
        let (rows, speedup) = simspeed_on(&Scale::tiny().build(Dataset::Vote), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].mode, "naive");
        assert_eq!(rows[1].mode, "fast-forward");
        assert_eq!(rows[0].simulated_cycles, rows[1].simulated_cycles);
        assert!(rows[0].simulated_cycles > 0);
        assert!(speedup > 0.0 && speedup.is_finite());
        for r in &rows {
            assert!(r.cycles_per_host_second > 0.0);
        }
    }
}
