//! A bounded least-recently-used memo cache.
//!
//! Both memoization layers in this crate — `higraph-serve`'s job memo
//! and the DSE's evaluation memo — key bit-deterministic simulation
//! results by *(graph content hash, canonical configuration encoding)*
//! strings. Unbounded `BTreeMap`s there grow with every distinct design
//! a long-lived session touches; [`LruCache`] bounds them to a fixed
//! entry count, evicting the least-recently-touched key, and counts
//! hits and evictions for the `stats`/outcome surfaces
//! (`docs/robustness.md`).
//!
//! The implementation favours determinism and zero dependencies over
//! asymptotics: recency is a monotonic stamp per entry and eviction is
//! an `O(n)` min-stamp scan. Caches here hold hundreds of entries and
//! each one memoizes a multi-millisecond simulation, so the scan never
//! shows up in a profile — and iteration order (hence eviction choice)
//! is fully deterministic, which the repro gates rely on.

use std::collections::BTreeMap;

/// A bounded string-keyed cache with least-recently-used eviction.
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    map: BTreeMap<String, (u64, V)>,
    /// Monotonic touch counter; larger = more recently used.
    stamp: u64,
    capacity: usize,
    hits: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: BTreeMap::new(),
            stamp: 0,
            capacity: capacity.max(1),
            hits: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, refreshing its recency and counting a hit when
    /// present.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let stamp = self.stamp + 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                self.stamp = stamp;
                slot.0 = stamp;
                self.hits += 1;
                Some(&slot.1)
            }
            None => None,
        }
    }

    /// Whether `key` is cached, without refreshing recency or counting
    /// a hit.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        self.stamp += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // O(n) min-stamp scan over a deterministic (sorted) order.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entry bound this cache was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries displaced to stay within the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains("a"));
        assert_eq!(c.hits(), 1, "contains must not count a hit");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.get("a"), Some(&1)); // refresh a; b is now LRU
        c.insert("c".into(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.contains("a") && c.contains("c") && !c.contains("b"));
    }

    #[test]
    fn reinserting_refreshes_without_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.insert("a".into(), 10); // refresh, not a new entry
        assert_eq!(c.evictions(), 0);
        c.insert("c".into(), 3); // b is LRU now
        assert!(!c.contains("b"));
        assert_eq!(c.get("a"), Some(&10));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 1);
    }
}
