//! Machine-readable benchmark reporting and the CI perf gate.
//!
//! `repro --json` records every figure it runs into a [`Report`] — a flat
//! map of dotted metric keys (`"table1.HiGraph.frequency_ghz"`,
//! `"shard.p4.cross_chip_packets"`, …) to numbers — and writes it to
//! `bench-report.json`. CI uploads that file as an artifact and gates the
//! job by comparing it against the checked-in `bench-baseline.json` with
//! [`check_against_baseline`].
//!
//! The workspace is hermetic (no crates.io, hence no `serde`), so this
//! module carries its own JSON writer and a deliberately minimal parser:
//! baselines are flat `{"key": number, …}` objects, nothing more. The
//! writer emits exactly that shape under the report's `"metrics"` key, so
//! promoting a report to a baseline is a `jq .metrics` away (or just a
//! copy — the checker only reads the keys it is given).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative deviation tolerated by the CI gate (10%).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// A flat collection of named benchmark metrics plus the targets that
/// produced them. `BTreeMap` keeps the serialized output stable across
/// runs, so report diffs are meaningful.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Dotted metric key → value.
    pub metrics: BTreeMap<String, f64>,
    /// Repro targets that contributed to this report, in run order.
    pub targets: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records one metric under a dotted key.
    pub fn record(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.insert(key.into(), value);
    }

    /// Notes that `target` ran (dedup-preserving insertion order).
    pub fn ran(&mut self, target: &str) {
        if !self.targets.iter().any(|t| t == target) {
            self.targets.push(target.to_string());
        }
    }

    /// Serializes the report: schema header, targets, flat metrics map.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"targets\": [");
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, t);
        }
        out.push_str("],\n  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            out.push_str("    ");
            write_json_string(&mut out, k);
            out.push_str(": ");
            write_json_number(&mut out, *v);
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes and control
/// characters escaped). Shared with the `higraph-serve` binary, which
/// writes event lines in the same flat-JSON dialect.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_json_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN. `null` keeps the report parseable — the
        // parser reads it back as NaN, which the gate flags as a
        // violation rather than silently passing.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parses a flat JSON object of string keys to numbers — the baseline
/// format. Nested values, arrays, and booleans are rejected: a baseline
/// is a list of gated numbers, nothing else. `null` parses as NaN (the
/// writer's encoding of a non-finite metric), which the gate then flags.
///
/// # Errors
///
/// Returns a message naming the first offending byte offset.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let map = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(map)
}

/// A scalar value in a flat JSON object. The number-only baseline format
/// uses [`parse_flat_json`]; `higraph-serve` job lines mix strings (ids,
/// dataset and algorithm names) with numbers (priorities, knobs) and go
/// through [`parse_flat_json_values`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (`null` reads back as NaN, as in the number parser).
    Num(f64),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Num(_) => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Str(_) => None,
            JsonValue::Num(v) => Some(*v),
        }
    }
}

/// Parses a flat JSON object whose values are strings *or* numbers — the
/// `higraph-serve` job-line shape. Nested objects, arrays, and booleans
/// are still rejected: the wire protocol is one flat object per line.
///
/// # Errors
///
/// Returns a message naming the first offending byte offset.
pub fn parse_flat_json_values(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let map = p.object_values()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, f64>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.number()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn object_values(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            let value = if self.bytes.get(self.pos) == Some(&b'"') {
                JsonValue::Str(self.string()?)
            } else {
                JsonValue::Num(self.number()?)
            };
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    s.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        _ => {
                            return Err(format!(
                                "unsupported escape '\\{}' at byte {}",
                                *esc as char, self.pos
                            ))
                        }
                    });
                    self.pos += 1;
                }
                Some(&b) => {
                    // keys are ASCII-dotted identifiers in practice, but
                    // pass UTF-8 through faithfully regardless
                    let start = self.pos;
                    let ch_len = utf8_len(b);
                    self.pos += ch_len;
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?
                            .chars()
                            .next()
                            .ok_or("empty char".to_string())?
                            .to_string()
                            .as_str(),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        // `null` is how the writer encodes a non-finite metric; read it
        // back as NaN so the gate can flag it instead of choking here.
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map_err(|_| format!("invalid number \"{text}\" at byte {start}"))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Restricts a baseline to the metrics of targets that actually ran.
///
/// Metric keys are dotted with the producing target as their first
/// segment (`"shard.p4.cycles"` ← target `shard`). A baseline may carry
/// keys for the whole sweep, while one invocation runs a subset of
/// targets (`repro table1 shard --check …`): keys whose leading segment
/// is a *known* target that did **not** run are dropped from gating, so
/// a partial run is not failed for metrics it never measured. Keys with
/// an unknown leading segment are kept — a stale or misspelled baseline
/// entry should fail the gate loudly, not vanish.
pub fn filter_baseline_to_targets(
    baseline: &BTreeMap<String, f64>,
    ran: &[String],
    known_targets: &[&str],
) -> BTreeMap<String, f64> {
    baseline
        .iter()
        .filter(|(key, _)| {
            let prefix = key.split('.').next().unwrap_or(key);
            !known_targets.contains(&prefix) || ran.iter().any(|t| t == prefix)
        })
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

/// Compares measured metrics against a baseline: every baseline key must
/// be present, finite, and within `tolerance` relative deviation. Returns
/// the list of human-readable violations (empty = gate passes). Metrics
/// absent from the baseline are not gated — the report may always grow.
pub fn check_against_baseline(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, &expect) in baseline {
        match current.get(key) {
            None => violations.push(format!("{key}: missing from this run (baseline {expect})")),
            Some(&got) if !got.is_finite() => {
                violations.push(format!("{key}: non-finite value {got} (baseline {expect})"))
            }
            Some(&got) => {
                let denom = expect.abs().max(f64::EPSILON);
                let deviation = (got - expect).abs() / denom;
                // a NaN deviation (corrupt baseline value) must fail the
                // gate, not slip past the comparison
                if deviation.is_nan() || deviation > tolerance {
                    violations.push(format!(
                        "{key}: {got} deviates {:.1}% from baseline {expect} (tolerance {:.0}%)",
                        deviation * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut r = Report::new();
        r.ran("table1");
        r.ran("shard");
        r.ran("table1"); // dedup
        r.record("table1.HiGraph.frequency_ghz", 1.0);
        r.record("shard.p4.cross_chip_packets", 12345.0);
        r.record("batch.HiGraph.gteps", 14.25);
        let json = r.to_json();
        assert_eq!(r.targets, ["table1", "shard"]);
        // the metrics sub-object is itself flat parseable
        let metrics_obj = json
            .split("\"metrics\": ")
            .nth(1)
            .unwrap()
            .trim_end()
            .trim_end_matches('}')
            .trim_end();
        let parsed = parse_flat_json(metrics_obj).expect("parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed["shard.p4.cross_chip_packets"], 12345.0);
        assert_eq!(parsed["batch.HiGraph.gteps"], 14.25);
    }

    #[test]
    fn parser_accepts_baseline_shape() {
        let m = parse_flat_json("{\n  \"a.b\": 1,\n  \"c\": -2.5e3,\n  \"d e\": 0.125\n}\n")
            .expect("valid");
        assert_eq!(m["a.b"], 1.0);
        assert_eq!(m["c"], -2500.0);
        assert_eq!(m["d e"], 0.125);
        assert!(parse_flat_json("{}").expect("empty ok").is_empty());
    }

    #[test]
    fn parser_rejects_non_flat_input() {
        assert!(parse_flat_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat_json("{\"a\": [1]}").is_err());
        assert!(parse_flat_json("{\"a\": true}").is_err());
        assert!(parse_flat_json("{\"a\": 1} trailing").is_err());
        assert!(parse_flat_json("{\"a\": 1, \"a\": 2}").is_err());
        assert!(parse_flat_json("").is_err());
    }

    #[test]
    fn value_parser_mixes_strings_and_numbers() {
        let m = parse_flat_json_values(
            "{\"op\": \"submit\", \"id\": \"a\", \"priority\": 5, \"divisor\": 64}",
        )
        .expect("valid job line");
        assert_eq!(m["op"].as_str(), Some("submit"));
        assert_eq!(m["priority"].as_f64(), Some(5.0));
        assert_eq!(m["op"].as_f64(), None);
        assert_eq!(m["priority"].as_str(), None);
        assert!(parse_flat_json_values("{\"a\": [1]}").is_err());
        assert!(parse_flat_json_values("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat_json_values("{\"a\": 1, \"a\": \"x\"}").is_err());
        assert!(parse_flat_json_values("{\"a\": \"x\"} junk").is_err());
    }

    #[test]
    fn gate_flags_deviation_and_missing_keys() {
        let mut base = BTreeMap::new();
        base.insert("x".to_string(), 100.0);
        base.insert("y".to_string(), 1.0);
        let mut cur = BTreeMap::new();
        cur.insert("x".to_string(), 109.0); // 9% — within tolerance
        let v = check_against_baseline(&cur, &base, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}"); // only y missing
        assert!(v[0].contains("y"));
        cur.insert("x".to_string(), 111.0); // 11% — out
        cur.insert("y".to_string(), 1.0);
        let v = check_against_baseline(&cur, &base, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("x"));
        // extra current metrics are never gated
        cur.insert("x".to_string(), 100.0);
        cur.insert("z".to_string(), 9.9);
        assert!(check_against_baseline(&cur, &base, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn gate_flags_non_finite_values() {
        let mut base = BTreeMap::new();
        base.insert("x".to_string(), 100.0);
        let mut cur = BTreeMap::new();
        cur.insert("x".to_string(), f64::NAN);
        let v = check_against_baseline(&cur, &base, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("non-finite"), "{v:?}");
        // a corrupt (NaN) baseline value also fails rather than passing
        base.insert("x".to_string(), f64::NAN);
        cur.insert("x".to_string(), 100.0);
        let v = check_against_baseline(&cur, &base, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
        // and a null in a parsed report reads back as NaN end-to-end
        let parsed = parse_flat_json("{\"x\": null}").expect("null parses");
        assert!(parsed["x"].is_nan());
        let v = check_against_baseline(&parsed, &base, DEFAULT_TOLERANCE);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn baseline_filter_scopes_to_ran_targets() {
        let known = ["table1", "shard", "mem"];
        let mut base = BTreeMap::new();
        base.insert("table1.HiGraph.frequency_ghz".to_string(), 1.0);
        base.insert("shard.p4.cycles".to_string(), 100.0);
        base.insert("mem.c16.cache_hit_rate".to_string(), 0.5);
        base.insert("stale.key".to_string(), 9.0);
        let ran = vec!["table1".to_string(), "shard".to_string()];
        let gated = filter_baseline_to_targets(&base, &ran, &known);
        // mem didn't run → its keys are not gated; unknown keys stay
        assert!(gated.contains_key("table1.HiGraph.frequency_ghz"));
        assert!(gated.contains_key("shard.p4.cycles"));
        assert!(!gated.contains_key("mem.c16.cache_hit_rate"));
        assert!(gated.contains_key("stale.key"));
        // with mem run, its keys gate again
        let all = vec!["table1".into(), "shard".into(), "mem".into()];
        assert_eq!(filter_baseline_to_targets(&base, &all, &known).len(), 4);
    }

    #[test]
    fn round_trip_preserves_formerly_nan_metric_after_fix() {
        // Before the finiteness fixes a degenerate run serialized e.g.
        // gteps as null; now the same metric is a finite 0 and survives
        // the writer → parser → gate round trip.
        let mut r = Report::new();
        r.ran("mem");
        r.record("mem.degenerate.gteps", 0.0); // formerly NaN
        r.record("mem.c16.cache_hit_rate", 0.75);
        let json = r.to_json();
        assert!(!json.contains("null"), "fixed metrics serialize as numbers");
        let metrics_obj = json
            .split("\"metrics\": ")
            .nth(1)
            .unwrap()
            .trim_end()
            .trim_end_matches('}')
            .trim_end();
        let parsed = parse_flat_json(metrics_obj).expect("parses");
        assert_eq!(parsed["mem.degenerate.gteps"], 0.0);
        // gating such a report against itself passes
        assert!(check_against_baseline(&parsed, &parsed.clone(), DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn numbers_serialize_compactly() {
        let mut s = String::new();
        write_json_number(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_json_number(&mut s, 0.5);
        assert_eq!(s, "0.5");
        s.clear();
        write_json_number(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
