//! `repro dse` — Pareto-front design-space exploration over the cost
//! model (see `docs/dse.md`).
//!
//! The driver searches `higraph-accel`'s [`DesignSpace`] lattice with a
//! successive-halving schedule: a seeded cohort is screened on a small
//! workload, the Pareto-best fraction survives to a mid-size workload,
//! and the finalists are scored on the pinned full-fidelity workload
//! that defines the reported objectives. A short stochastic hill-climb
//! then mutates front members at full fidelity. Every simulated cycle
//! count is combined with the calibrated area/power/frequency models
//! into an [`Objectives`] tuple, and [`ParetoFront`] keeps the
//! non-dominated set.
//!
//! Two properties make the outcome CI-gateable:
//!
//! * **Determinism** — all randomness comes from one seeded [`StdRng`]
//!   drawn sequentially on the driver thread; simulations are
//!   bit-deterministic and the batch runner preserves job order, so the
//!   same [`DseSettings`] always produce the same [`DseOutcome`]
//!   (parallel or serial).
//! * **Budget-independent anchors** — the paper's two Sec. 5.4 synthesis
//!   configurations ([`DesignSpace::anchors`]) are always evaluated on
//!   the final fidelity rung, which does not depend on the search
//!   budget. Their objective values can therefore be pinned in
//!   `bench-baseline.json`, while their distance to the discovered
//!   front ([`AnchorRow::front_excess`]) is gated by the fixed
//!   [`MAX_ANCHOR_FRONT_EXCESS`] threshold.

use higraph::accel::space::{DesignPoint, DesignSpace};
use higraph::model::{Objectives, ParetoFront};
use higraph::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Largest tolerated [`AnchorRow::front_excess`] for the paper's anchor
/// configurations under `--check`: some front member may beat an anchor
/// by at most this factor on its weakest objective. The search explores
/// designs the paper never synthesized (smaller buffers, narrower
/// staging, multi-chip trades), so the anchors need not be exactly
/// optimal — but if they fall this far behind the front, either the
/// cost model or the simulator has drifted.
pub const MAX_ANCHOR_FRONT_EXCESS: f64 = 2.5;

/// Fewest survivors carried into any halving rung, so tiny budgets keep
/// a meaningful cohort.
const MIN_SURVIVORS: usize = 4;

/// Most front members mutated per refinement round.
const MAX_PROPOSALS_PER_ROUND: usize = 8;

/// One fidelity rung: the workload every candidate in that rung runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fidelity {
    /// Table 2 dataset.
    pub dataset: Dataset,
    /// Power-of-two edge-count divisor applied to the Table 2 size.
    pub divisor: u32,
    /// PageRank power iterations.
    pub pr_iters: u32,
}

impl Fidelity {
    /// Builds the rung's graph.
    pub fn build(&self) -> Csr {
        self.dataset.build_scaled(self.divisor)
    }

    /// The pinned default schedule: screen on a small Vote slice, keep
    /// the Pareto-best through a mid-size Twitter slice, and score the
    /// finalists (plus anchors and refinement mutants) on the largest
    /// rung. The final rung is what defines every reported objective;
    /// it must stay fixed across budgets for the anchor baseline keys
    /// to be comparable.
    pub fn default_rungs() -> Vec<Fidelity> {
        vec![
            Fidelity {
                dataset: Dataset::Vote,
                divisor: 8,
                pr_iters: 2,
            },
            Fidelity {
                dataset: Dataset::Twitter,
                divisor: 32,
                pr_iters: 3,
            },
            Fidelity {
                dataset: Dataset::Twitter,
                divisor: 16,
                pr_iters: 4,
            },
        ]
    }
}

/// Search-schedule knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSettings {
    /// Seed for the candidate sampler and mutation draws.
    pub seed: u64,
    /// Rung-0 cohort size (the `--dse-budget` flag).
    pub budget: usize,
    /// Halving factor: each rung keeps ~`1/eta` of its cohort.
    pub eta: usize,
    /// Hill-climb rounds at full fidelity after the halving schedule.
    pub refine_rounds: usize,
    /// Spread simulations across cores (results are identical either
    /// way; `dse::tests` asserts it).
    pub parallel: bool,
    /// Fidelity schedule, cheapest first; the last rung defines the
    /// reported objectives.
    pub rungs: Vec<Fidelity>,
}

impl DseSettings {
    /// The CI smoke schedule: 48 seeded candidates, halving by 4, two
    /// refinement rounds, the pinned default rungs.
    pub fn smoke() -> Self {
        DseSettings {
            seed: 2022,
            budget: 48,
            eta: 4,
            refine_rounds: 2,
            parallel: true,
            rungs: Fidelity::default_rungs(),
        }
    }

    /// This schedule with a different rung-0 cohort size (clamped to at
    /// least `MIN_SURVIVORS`, which is crate-private).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(MIN_SURVIVORS);
        self
    }
}

/// One member of the discovered front.
#[derive(Debug, Clone)]
pub struct FrontRow {
    /// The design's name (genome summary, or an anchor label).
    pub name: String,
    /// Full-fidelity objectives.
    pub objectives: Objectives,
}

/// One paper anchor, scored at full fidelity against the front.
#[derive(Debug, Clone)]
pub struct AnchorRow {
    /// `"MDP-160"` or `"FIFO+Crossbar-128"`.
    pub label: String,
    /// Full-fidelity objectives (budget-independent; pinned in the
    /// baseline).
    pub objectives: Objectives,
    /// Distance to the discovered front as a factor ≥ 1
    /// ([`ParetoFront::front_excess`]); `1.0` = on or extending the
    /// front.
    pub front_excess: f64,
}

impl AnchorRow {
    /// Whether the anchor sits on (or extends) the discovered front.
    pub fn on_front(&self) -> bool {
        self.front_excess == 1.0
    }
}

/// Everything `repro dse` reports.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The non-dominated set, in discovery order (anchors join at the
    /// end when competitive).
    pub front: Vec<FrontRow>,
    /// The paper anchors, scored against the front *before* they join.
    pub anchors: Vec<AnchorRow>,
    /// Candidate evaluations performed across all rungs, refinement and
    /// anchors.
    pub points_evaluated: usize,
    /// Evaluations served from the memo cache (keyed on graph content
    /// hash + canonical config encoding) instead of simulating — valid
    /// because every run is bit-deterministic. Counted inside
    /// `points_evaluated`.
    pub memo_hits: usize,
    /// Memo entries displaced by the LRU bound
    /// ([`crate::memo::LruCache`]); non-zero only when an exploration
    /// touches more distinct designs than the cache capacity.
    pub memo_evictions: u64,
    /// Size of the genome lattice being searched.
    pub space_size: usize,
}

/// Per-scatter-phase cycle budget for one DSE candidate: generous slack
/// over any viable design's cycles-per-edge on PageRank (observed ≲ 2
/// idealized, ≲ 12 with a narrow DRAM), but far below the engine's
/// workload-derived default. A deadlocking design (the naive nW1R FIFO
/// past 32 channels — the paper's Fig. 5 point) then fails its entry in
/// `O(guard)` simulated cycles instead of burning the default guard.
fn stall_guard_for(point: &DesignPoint, graph: &Csr) -> u64 {
    let per_edge = if point.config.memory.is_some() {
        64
    } else {
        16
    };
    10_000 + graph.num_edges() * per_edge * point.chips as u64
}

/// The memo cache shared across one exploration: job identity → cycle
/// count (`None` = the design stalled or failed). Keyed on the graph's
/// content hash plus the *canonical* configuration encoding, so two
/// lattice points that decode to the same hardware — or a later rung
/// re-scoring a survivor on an already-seen workload — simulate once.
/// Sound because runs are bit-deterministic (same key ⇒ same cycles).
/// Bounded LRU ([`crate::memo::LruCache`]) so an exploration's memo
/// footprint stays fixed no matter how large the budget is.
type EvalMemo = crate::memo::LruCache<Option<u64>>;

/// Entry bound of the exploration memo: comfortably above any one
/// cohort (budget × duplicates) so within-rung reuse always hits, while
/// bounding a long exploration's footprint.
const EVAL_MEMO_CAPACITY: usize = 4096;

fn memo_key(point: &DesignPoint, fidelity: &Fidelity, graph_hash: u64) -> String {
    format!(
        "{:016x}|chips={}|pr={}|{}",
        graph_hash,
        point.chips,
        fidelity.pr_iters,
        point.config.canonical_encoding()
    )
}

/// Runs every design in `points` on one rung's workload and pairs the
/// survivors with their objectives. A design that stalls or fails
/// validation loses its slot (`None`) without aborting the cohort.
/// Previously-seen (graph, config) pairs are answered from `memo`;
/// `memo_hits` counts them.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    points: &[DesignPoint],
    fidelity: &Fidelity,
    graph: &Csr,
    graph_hash: u64,
    parallel: bool,
    memo: &mut EvalMemo,
    memo_hits: &mut usize,
) -> Vec<Option<(DesignPoint, Objectives)>> {
    let keys: Vec<String> = points
        .iter()
        .map(|p| memo_key(p, fidelity, graph_hash))
        .collect();
    // Simulate only the first occurrence of each unseen key; batch order
    // (hence determinism) is preserved because results are re-joined by
    // key afterwards.
    let mut fresh: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        if memo.contains(key) {
            *memo_hits += 1;
        } else if fresh.iter().any(|&j| keys[j] == *key) {
            *memo_hits += 1; // duplicate within this cohort
        } else {
            fresh.push(i);
        }
    }
    if !fresh.is_empty() {
        let jobs: Vec<BatchJob<'_, PageRank>> = fresh
            .iter()
            .map(|&i| {
                let p = &points[i];
                let mut job = BatchJob::new(
                    &p.config.name,
                    graph,
                    PageRank::new(fidelity.pr_iters),
                    p.config.clone(),
                )
                .with_stall_guard(stall_guard_for(p, graph));
                if let Some(shard) = p.shard_config() {
                    job = job.sharded(shard);
                }
                job
            })
            .collect();
        let runner = if parallel {
            BatchRunner::parallel()
        } else {
            BatchRunner::serial()
        };
        let (results, _) = runner.run(jobs);
        for (&i, r) in fresh.iter().zip(results) {
            let cycles = r.is_ok().then_some(r.metrics.cycles);
            memo.insert(keys[i].clone(), cycles);
        }
    }
    points
        .iter()
        .zip(&keys)
        .map(|(p, key)| {
            let cycles = (*memo.get(key).unwrap_or(&None))?;
            let objectives = p.objectives(cycles);
            objectives.is_finite().then(|| (p.clone(), objectives))
        })
        .collect()
}

/// Scalarization used only to order designs *within* one non-dominated
/// rank: the log-volume of the objective box (sum of logs ≡ product).
fn log_volume(o: &Objectives) -> f64 {
    o.as_array()
        .iter()
        .map(|v| v.max(f64::MIN_POSITIVE).ln())
        .sum()
}

/// Non-dominated sorting: indices of `scored` in selection order —
/// rank 0 (the cohort's own Pareto front) first, each rank ordered by
/// ascending [`log_volume`] with the insertion index as the final
/// deterministic tie-break.
fn selection_order(scored: &[(DesignPoint, Objectives)]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..scored.len()).collect();
    let mut order = Vec::with_capacity(scored.len());
    while !remaining.is_empty() {
        let mut rank: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && scored[i].1.dominated_by(&scored[j].1))
            })
            .collect();
        rank.sort_by(|&a, &b| {
            log_volume(&scored[a].1)
                .partial_cmp(&log_volume(&scored[b].1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        remaining.retain(|i| !rank.contains(i));
        order.extend(rank);
    }
    order
}

/// Runs the full exploration. Deterministic for fixed settings.
///
/// # Panics
///
/// Panics if `settings.rungs` is empty, or if an anchor configuration
/// fails to simulate (both would be driver bugs, not data-dependent
/// conditions).
pub fn explore(settings: &DseSettings) -> DseOutcome {
    assert!(
        !settings.rungs.is_empty(),
        "need at least one fidelity rung"
    );
    let graphs: Vec<Csr> = settings.rungs.iter().map(Fidelity::build).collect();
    let graph_hashes: Vec<u64> = graphs.iter().map(Csr::content_hash).collect();
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut points_evaluated = 0usize;
    let mut memo: EvalMemo = EvalMemo::new(EVAL_MEMO_CAPACITY);
    let mut memo_hits = 0usize;

    // Seeded rung-0 cohort. Every lattice point builds (space::tests
    // sweeps this), so no draw is wasted.
    let mut cohort: Vec<DesignPoint> = (0..settings.budget.max(MIN_SURVIVORS))
        .map(|_| DesignSpace::sample(&mut rng))
        .map(|g| DesignSpace::build(&g).expect("lattice points build"))
        .collect();

    // Successive halving up the fidelity schedule.
    let mut final_scored: Vec<(DesignPoint, Objectives)> = Vec::new();
    for (i, (fidelity, graph)) in settings.rungs.iter().zip(&graphs).enumerate() {
        let evals = evaluate(
            &cohort,
            fidelity,
            graph,
            graph_hashes[i],
            settings.parallel,
            &mut memo,
            &mut memo_hits,
        );
        points_evaluated += cohort.len();
        let scored: Vec<(DesignPoint, Objectives)> = evals.into_iter().flatten().collect();
        if i + 1 == settings.rungs.len() {
            final_scored = scored;
        } else {
            let order = selection_order(&scored);
            let keep = (settings.budget / settings.eta.max(2).pow(i as u32 + 1))
                .max(MIN_SURVIVORS)
                .min(order.len());
            cohort = order[..keep]
                .iter()
                .map(|&ix| scored[ix].0.clone())
                .collect();
        }
    }

    let mut front: ParetoFront<DesignPoint> = ParetoFront::new();
    for (p, o) in &final_scored {
        front.try_insert(p.clone(), *o);
    }

    // Stochastic hill-climb: mutate front members at full fidelity.
    let (final_fidelity, final_graph) = (
        settings.rungs.last().expect("non-empty rungs"),
        graphs.last().expect("non-empty rungs"),
    );
    let final_hash = *graph_hashes.last().expect("non-empty rungs");
    for _ in 0..settings.refine_rounds {
        let parents: Vec<_> = front
            .points()
            .iter()
            .take(MAX_PROPOSALS_PER_ROUND)
            .map(|(p, _)| p.genome)
            .collect();
        let mutants: Vec<DesignPoint> = parents
            .iter()
            .map(|g| DesignSpace::mutate(g, &mut rng))
            .filter_map(|g| DesignSpace::build(&g).ok())
            .collect();
        if mutants.is_empty() {
            break;
        }
        let evals = evaluate(
            &mutants,
            final_fidelity,
            final_graph,
            final_hash,
            settings.parallel,
            &mut memo,
            &mut memo_hits,
        );
        points_evaluated += mutants.len();
        for (p, o) in evals.into_iter().flatten() {
            front.try_insert(p, o);
        }
    }

    // Paper anchors: score at full fidelity, measure distance to the
    // discovered front, then let them join it if competitive.
    let anchor_points: Vec<(&str, DesignPoint)> = DesignSpace::anchors()
        .iter()
        .map(|(label, genome)| {
            let mut point = DesignSpace::build(genome).expect("anchors build");
            point.config.name = label.to_string();
            (*label, point)
        })
        .collect();
    let designs: Vec<DesignPoint> = anchor_points.iter().map(|(_, p)| p.clone()).collect();
    let evals = evaluate(
        &designs,
        final_fidelity,
        final_graph,
        final_hash,
        settings.parallel,
        &mut memo,
        &mut memo_hits,
    );
    points_evaluated += designs.len();
    let mut anchors = Vec::new();
    for ((label, _), eval) in anchor_points.iter().zip(evals) {
        let (point, objectives) = eval.expect("anchor configurations simulate");
        let front_excess = front.front_excess(&objectives);
        front.try_insert(point, objectives);
        anchors.push(AnchorRow {
            label: label.to_string(),
            objectives,
            front_excess,
        });
    }

    DseOutcome {
        front: front
            .points()
            .iter()
            .map(|(p, o)| FrontRow {
                name: p.config.name.clone(),
                objectives: *o,
            })
            .collect(),
        anchors,
        points_evaluated,
        memo_hits,
        memo_evictions: memo.evictions(),
        space_size: DesignSpace::size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schedule small enough for unit tests: one tiny rung twice.
    fn tiny_settings() -> DseSettings {
        let rung = Fidelity {
            dataset: Dataset::Vote,
            divisor: 64,
            pr_iters: 2,
        };
        DseSettings {
            seed: 7,
            budget: 6,
            eta: 2,
            refine_rounds: 1,
            parallel: true,
            rungs: vec![rung, rung],
        }
    }

    fn flatten(outcome: &DseOutcome) -> Vec<(String, [f64; 3])> {
        outcome
            .front
            .iter()
            .map(|r| (r.name.clone(), r.objectives.as_array()))
            .collect()
    }

    #[test]
    fn exploration_yields_a_nonempty_front_with_gated_anchors() {
        let outcome = explore(&tiny_settings());
        assert!(!outcome.front.is_empty());
        assert!(outcome.points_evaluated >= outcome.front.len());
        // tiny_settings runs the same rung twice: the second pass
        // re-scores survivors on an already-seen (graph, config) pair,
        // which must be served from the memo cache
        assert!(outcome.memo_hits > 0);
        assert!(outcome.memo_hits <= outcome.points_evaluated);
        assert!(outcome.space_size > 100_000);
        for a in &outcome.front {
            assert!(a.objectives.is_finite(), "{}", a.name);
            for b in &outcome.front {
                assert!(
                    !a.objectives.dominated_by(&b.objectives),
                    "{} dominated by {}",
                    a.name,
                    b.name
                );
            }
        }
        // the paper anchors are scored against the same front
        assert_eq!(outcome.anchors.len(), 2);
        let labels: Vec<_> = outcome.anchors.iter().map(|a| a.label.as_str()).collect();
        assert_eq!(labels, ["MDP-160", "FIFO+Crossbar-128"]);
        for a in &outcome.anchors {
            assert!(a.objectives.is_finite());
            assert!(a.front_excess >= 1.0);
            assert!(
                a.front_excess <= MAX_ANCHOR_FRONT_EXCESS,
                "{} excess {}",
                a.label,
                a.front_excess
            );
        }
    }

    #[test]
    fn exploration_is_deterministic_and_thread_independent() {
        let settings = tiny_settings();
        let a = explore(&settings);
        let b = explore(&settings);
        assert_eq!(flatten(&a), flatten(&b), "same seed, same front");
        assert_eq!(a.points_evaluated, b.points_evaluated);
        assert_eq!(a.memo_hits, b.memo_hits, "memoization is deterministic");
        let serial = explore(&DseSettings {
            parallel: false,
            ..settings.clone()
        });
        assert_eq!(flatten(&a), flatten(&serial), "parallelism changes nothing");
        let other = explore(&DseSettings {
            seed: 8,
            ..settings
        });
        assert_ne!(
            flatten(&a),
            flatten(&other),
            "a different seed explores differently"
        );
    }

    #[test]
    fn selection_order_puts_the_cohort_front_first() {
        let obj = |t: f64, a: f64, e: f64| Objectives {
            cycles: t as u64,
            time_ns: t,
            area_mm2: a,
            energy_mj: e,
        };
        let [(_, genome), _] = DesignSpace::anchors();
        let p = DesignSpace::build(&genome).unwrap();
        let scored = vec![
            (p.clone(), obj(100.0, 2.0, 10.0)), // rank 1 (dominated by #2)
            (p.clone(), obj(50.0, 1.0, 5.0)),   // rank 0
            (p.clone(), obj(40.0, 3.0, 5.0)),   // rank 0 (trade-off)
            (p, obj(200.0, 4.0, 20.0)),         // rank 1
        ];
        let order = selection_order(&scored);
        assert_eq!(order.len(), 4);
        assert_eq!(&order[..2], &[1, 2], "non-dominated pair first");
        assert_eq!(&order[2..], &[0, 3], "then the dominated rank");
    }
}
