//! Shared harness for the reproduction benchmarks: every table and figure
//! of the paper maps to one function here, invoked by the `repro` binary
//! (`cargo run --release -p higraph-bench --bin repro -- all`) and by the
//! Criterion benches.
//!
//! Functions return printable row structures so the binary, the benches
//! and the integration tests share one code path. Default runs use
//! scaled-down datasets (`Scale::quick`) to stay laptop-friendly; pass
//! `--full` to the binary for Table 2 sizes.

#![forbid(unsafe_code)]

pub mod dse;
pub mod figures;
pub mod memo;
pub mod report;
pub mod serve;
pub mod workload;

pub use dse::{DseOutcome, DseSettings};
pub use figures::*;
pub use memo::LruCache;
pub use report::Report;
pub use serve::ServeSession;
pub use workload::{Algo, ControlledOutcome, Scale};
