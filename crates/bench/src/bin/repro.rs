//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p higraph-bench --bin repro -- all
//! cargo run --release -p higraph-bench --bin repro -- fig8 fig9 --full
//! cargo run --release -p higraph-bench --bin repro -- table1 shard --json
//! ```
//!
//! Targets: `table1 table2 fig4 fig5 fig7 fig8 fig9 fig10a fig10b fig11
//! fig12 radix areapower ablation batch shard mem all`. Default scale divides
//! Table 2 datasets by 4 (Figs. 5/10/11/12 and the radix sweep always run
//! full-scale R14); `--full` uses the paper's exact sizes everywhere.
//! Every sweep executes through the parallel batch runner, so wall time
//! scales down with core count.
//!
//! Flags:
//!
//! * `--json` — additionally write the machine-readable metrics to
//!   `bench-report.json` for CI artifacts and offline comparison.
//!   Recording targets: `table1`, `fig4`, `fig8`/`fig9` (the shared
//!   sweep records both), `fig11`, `batch`, `shard`, `mem` — per-figure
//!   cycles, throughput, shard traffic, and memory-hierarchy rates. The
//!   remaining targets print human-readable output only;
//! * `--check <baseline.json>` — compare this run against a flat
//!   `{"metric.key": number}` baseline and exit non-zero if any baseline
//!   metric is missing or deviates more than 10%. Baseline keys owned by
//!   targets that did not run this invocation are skipped, so partial
//!   runs gate only what they measured;
//! * `--full` — paper-exact dataset sizes.

use higraph_bench::report::{
    check_against_baseline, filter_baseline_to_targets, parse_flat_json, DEFAULT_TOLERANCE,
};
use higraph_bench::{figures, Algo, Report, Scale};
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Path `--json` writes to, and the artifact name CI uploads.
const REPORT_PATH: &str = "bench-report.json";

/// Every runnable target, plus the `all` alias.
const KNOWN_TARGETS: [&str; 17] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "radix",
    "areapower",
    "ablation",
    "batch",
    "shard",
    "mem",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut json = false;
    let mut check: Option<String> = None;
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--json" => json = true,
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(path) => check = Some(path.clone()),
                    None => {
                        eprintln!("--check needs a baseline path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag} (known: --full --json --check <path>)");
                return ExitCode::FAILURE;
            }
            target => {
                let target = target.to_lowercase();
                if target != "all" && !KNOWN_TARGETS.contains(&target.as_str()) {
                    eprintln!(
                        "unknown target {target} (known: all {})",
                        KNOWN_TARGETS.join(" ")
                    );
                    return ExitCode::FAILURE;
                }
                targets.insert(target);
            }
        }
        i += 1;
    }
    let scale = if full { Scale::full() } else { Scale::quick() };
    if targets.is_empty() || targets.contains("all") {
        targets = KNOWN_TARGETS.into_iter().map(String::from).collect();
    }

    // Read and parse the baseline up front: a bad path or malformed file
    // must fail in milliseconds, not after the whole sweep has run.
    let baseline = match &check {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(text) => match parse_flat_json(&text) {
                Err(e) => {
                    eprintln!("malformed baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(map) => Some((path.clone(), map)),
            },
        },
    };

    println!(
        "== HiGraph reproduction harness (scale: ÷{}, PR iterations: {}) ==",
        scale.divisor, scale.pr_iters
    );
    println!("   (Figs. 5 and 10-12 + radix always use full-scale R14; see EXPERIMENTS.md)\n");

    let mut report = Report::new();
    if targets.contains("table1") {
        report.ran("table1");
        table1(&mut report);
    }
    if targets.contains("table2") {
        report.ran("table2");
        table2(scale);
    }
    if targets.contains("fig4") {
        report.ran("fig4");
        fig4(&mut report);
    }
    if targets.contains("fig5") {
        report.ran("fig5");
        fig5(scale);
    }
    if targets.contains("fig7") {
        report.ran("fig7");
        fig7();
    }
    // fig8 and fig9 share the expensive sweep
    if targets.contains("fig8") || targets.contains("fig9") {
        let rows = figures::overall(scale);
        record_overall(&mut report, &rows);
        if targets.contains("fig8") {
            report.ran("fig8");
            fig8(&rows);
        }
        if targets.contains("fig9") {
            report.ran("fig9");
            fig9(&rows);
        }
    }
    if targets.contains("fig10a") || targets.contains("fig10b") {
        let rows = figures::fig10(scale);
        if targets.contains("fig10a") {
            report.ran("fig10a");
            fig10a(&rows);
        }
        if targets.contains("fig10b") {
            report.ran("fig10b");
            fig10b(&rows);
        }
    }
    if targets.contains("fig11") {
        report.ran("fig11");
        fig11(scale, &mut report);
    }
    if targets.contains("fig12") {
        report.ran("fig12");
        fig12(scale);
    }
    if targets.contains("radix") {
        report.ran("radix");
        radix(scale);
    }
    if targets.contains("areapower") {
        report.ran("areapower");
        areapower();
    }
    if targets.contains("ablation") {
        report.ran("ablation");
        ablation(scale);
    }
    if targets.contains("batch") {
        report.ran("batch");
        batch(scale, &mut report);
    }
    if targets.contains("shard") {
        report.ran("shard");
        shard(scale, &mut report);
    }
    if targets.contains("mem") {
        report.ran("mem");
        mem(scale, &mut report);
    }

    if json {
        if let Err(e) = std::fs::write(REPORT_PATH, report.to_json()) {
            eprintln!("failed to write {REPORT_PATH}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} metrics to {REPORT_PATH}", report.metrics.len());
    }
    if let Some((baseline_path, baseline)) = baseline {
        let gated = filter_baseline_to_targets(&baseline, &report.targets, &KNOWN_TARGETS);
        let violations = check_against_baseline(&report.metrics, &gated, DEFAULT_TOLERANCE);
        if violations.is_empty() {
            println!(
                "perf gate: {} of {} baseline metrics gated (targets that ran) — all within {:.0}% of {baseline_path}",
                gated.len(),
                baseline.len(),
                DEFAULT_TOLERANCE * 100.0
            );
        } else {
            eprintln!("perf gate FAILED against {baseline_path}:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn batch(scale: Scale, out: &mut Report) {
    println!("-- Batch runner: parallel (program × config) sweep (PR, Slashdot) --");
    let (rows, report) = figures::batch_throughput(scale);
    for r in &rows {
        println!(
            "{:<18} {:5.1} GTEPS over {:>11} cycles{}",
            r.label,
            r.gteps,
            r.cycles,
            if r.sliced { "  (sliced)" } else { "" }
        );
        out.record(format!("batch.{}.cycles", r.label), r.cycles as f64);
        out.record(format!("batch.{}.gteps", r.label), r.gteps);
    }
    println!(
        "{} sims on {} workers: {:.2}s wall, {:.2} sims/s, {:.1}M simulated edges/s host-side,\n\
         aggregate modeled throughput {:.1} GTEPS\n",
        report.jobs,
        report.workers,
        report.wall_seconds,
        report.sims_per_second(),
        report.simulated_meps(),
        report.aggregate_gteps()
    );
}

fn shard(scale: Scale, out: &mut Report) {
    println!("-- Multi-chip sharding: PR on the Twitter stand-in, P = 1/2/4/8 chips --");
    println!(
        "{:>6} {:>12} {:>8} {:>12} {:>13} {:>14} {:>14}",
        "chips", "cycles", "GTEPS", "cycles/edge", "compute-max", "x-chip pkts", "pkts/edge"
    );
    let rows = figures::shard_sweep(scale);
    for r in &rows {
        println!(
            "{:>6} {:>12} {:>8.1} {:>12.3} {:>13} {:>14} {:>13.1}%",
            r.chips,
            r.cycles,
            r.gteps,
            r.cycles_per_edge,
            r.max_chip_scatter_cycles,
            r.cross_chip_packets,
            100.0 * r.cross_chip_packets as f64 / r.edges.max(1) as f64
        );
        let p = format!("shard.p{}", r.chips);
        out.record(format!("{p}.cycles"), r.cycles as f64);
        out.record(format!("{p}.gteps"), r.gteps);
        out.record(format!("{p}.cycles_per_edge"), r.cycles_per_edge);
        out.record(
            format!("{p}.cross_chip_packets"),
            r.cross_chip_packets as f64,
        );
        out.record(
            format!("{p}.max_chip_scatter_cycles"),
            r.max_chip_scatter_cycles as f64,
        );
    }
    println!(
        "(P=1 is bit-identical to the serial engine; cross-chip packets are modeled\n\
         through the latency/bandwidth link fabric — see docs/sharding.md)\n"
    );
}

fn mem(scale: Scale, out: &mut Report) {
    println!("-- Off-chip memory: cache-size sweep under the HBM2 model (PR, Twitter stand-in) --");
    println!(
        "{:>8} {:>12} {:>8} {:>10} {:>12} {:>10} {:>13}",
        "cache", "cycles", "GTEPS", "hit-rate", "misses", "row-hits", "stall-cycles"
    );
    for r in figures::mem_sweep(scale) {
        println!(
            "{:>5}KiB {:>12} {:>8.1} {:>9.1}% {:>12} {:>9.1}% {:>13}",
            r.cache_kb,
            r.cycles,
            r.gteps,
            100.0 * r.cache_hit_rate,
            r.cache_misses,
            100.0 * r.dram_row_hit_rate,
            r.mem_stall_cycles
        );
        let p = format!("mem.c{}", r.cache_kb);
        out.record(format!("{p}.cycles"), r.cycles as f64);
        out.record(format!("{p}.gteps"), r.gteps);
        out.record(format!("{p}.cache_hit_rate"), r.cache_hit_rate);
        out.record(format!("{p}.cache_misses"), r.cache_misses as f64);
        out.record(format!("{p}.dram_row_hit_rate"), r.dram_row_hit_rate);
        out.record(format!("{p}.mem_stall_cycles"), r.mem_stall_cycles as f64);
    }
    println!(
        "(default configs model no memory — this sweep enables MemoryConfig::hbm2();\n\
         hit rate rises and stall cycles fall monotonically with cache size —\n\
         see docs/memory.md for the timing contract)\n"
    );
}

fn fig5(scale: Scale) {
    println!("-- Fig. 5 design theory: dataflow fabric candidates (PR, RMAT14) --");
    for r in figures::fig5_design_theory(scale) {
        println!(
            "{:<12} buf {:>3}/ch: {:5.1} GTEPS  rejected {:>9}  HoL-blocked {:>9}",
            r.fabric,
            r.buffer,
            r.metrics.gteps(),
            r.metrics.dataflow_net.rejected,
            r.metrics.dataflow_net.hol_blocked
        );
    }
    println!(
        "(the nW1R FIFO is an ideal output-queued switch at cycle level, but its\n\
         n-write-port mux is as centralized as a crossbar: at 128 channels it would\n\
         clock at {:.2} GHz vs the MDP-network's 1.00 GHz — Fig. 5c's real blocker —\n\
         and it rejects writes whenever fewer than n slots are free)\n",
        higraph::model::crossbar_frequency_ghz(128)
    );
}

fn ablation(scale: Scale) {
    println!("-- Ablation: dispatcher read ports (PR, Epinions; 2 = paper's 2W2R) --");
    for r in figures::dispatcher_ablation(scale) {
        println!(
            "{}R dispatcher: {:5.1} GTEPS over {:>9} cycles",
            r.read_ports,
            r.metrics.gteps(),
            r.metrics.cycles
        );
    }
    println!();
}

fn table1(out: &mut Report) {
    println!("-- Table 1: configurations --");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "", "Frequency", "#Front-end", "#Back-end", "On-chip memory"
    );
    for r in figures::table1() {
        println!(
            "{:<14} {:>7.0}GHz {:>12} {:>12} {:>12}MB",
            r.name, r.frequency_ghz, r.front_channels, r.back_channels, r.onchip_mb
        );
        let p = format!("table1.{}", r.name);
        out.record(format!("{p}.frequency_ghz"), r.frequency_ghz);
        out.record(format!("{p}.front_channels"), r.front_channels as f64);
        out.record(format!("{p}.back_channels"), r.back_channels as f64);
        out.record(format!("{p}.onchip_mb"), r.onchip_mb as f64);
    }
    println!();
}

fn table2(scale: Scale) {
    println!("-- Table 2: benchmark datasets (spec | built at this scale) --");
    println!(
        "{:<5} {:>11} {:>11} {:>5} | {:>11} {:>11} {:>7}",
        "Name", "#Vertices", "#Edges", "#Deg", "built V", "built E", "deg"
    );
    for r in figures::table2(scale) {
        println!(
            "{:<5} {:>11} {:>11} {:>5} | {:>11} {:>11} {:>7.1}",
            r.dataset.abbrev(),
            r.spec_vertices,
            r.spec_edges,
            r.spec_degree,
            r.built_vertices,
            r.built_edges,
            r.built_degree
        );
    }
    println!();
}

fn fig4(out: &mut Report) {
    println!("-- Fig. 4: crossbar frequency vs port count --");
    for (ports, ghz) in figures::fig4() {
        println!("{ports:>4} ports: {ghz:5.2} GHz  {}", bar(ghz / 2.5, 40));
        out.record(format!("fig4.ports{ports}.frequency_ghz"), ghz);
    }
    println!();
}

fn record_overall(out: &mut Report, rows: &[figures::OverallRow]) {
    for r in rows {
        let p = format!("fig9.{}.{}", r.algo.label(), r.dataset.abbrev());
        out.record(format!("{p}.graphdyns_gteps"), r.graphdyns.gteps());
        out.record(format!("{p}.higraph_mini_gteps"), r.higraph_mini.gteps());
        out.record(format!("{p}.higraph_gteps"), r.higraph.gteps());
        out.record(format!("{p}.higraph_cycles"), r.higraph.cycles as f64);
        out.record(
            format!(
                "fig8.{}.{}.higraph_speedup",
                r.algo.label(),
                r.dataset.abbrev()
            ),
            r.higraph_speedup(),
        );
    }
}

fn fig7() {
    println!("-- Fig. 7: on-chip memory layout (HiGraph, 16 MB class) --");
    let (layout, fits) = figures::fig7();
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!("Edge Array            {:5.1} MB", mb(layout.edge_bytes));
    println!(
        "Edge Info Array       {:5.1} MB",
        mb(layout.edge_info_bytes)
    );
    println!("Offset Array          {:5.1} MB", mb(layout.offset_bytes));
    println!("Property Array        {:5.1} MB", mb(layout.property_bytes));
    println!(
        "ActiveVertex + tProp  {:5.1} MB",
        mb(layout.active_tprop_bytes)
    );
    println!(
        "capacity: {} vertices, {} edges",
        layout.max_vertices(),
        layout.max_edges()
    );
    for (d, ok) in fits {
        println!(
            "  {d:<4} fits on chip: {}",
            if ok { "yes" } else { "NO (needs slicing)" }
        );
    }
    println!();
}

fn fig8(rows: &[figures::OverallRow]) {
    println!("-- Fig. 8: speedup over GraphDynS --");
    println!(
        "{:<5} {:<4} {:>14} {:>10}",
        "algo", "data", "HiGraph-mini", "HiGraph"
    );
    let (mut sum_mini, mut sum_hi, mut n) = (0.0, 0.0, 0);
    for r in rows {
        println!(
            "{:<5} {:<4} {:>13.2}x {:>9.2}x",
            r.algo.label(),
            r.dataset.abbrev(),
            r.mini_speedup(),
            r.higraph_speedup()
        );
        sum_mini += r.mini_speedup();
        sum_hi += r.higraph_speedup();
        n += 1;
    }
    println!(
        "avg: HiGraph-mini {:.2}x, HiGraph {:.2}x (paper: 1.46x / 1.54x; max {:.2}x, paper 2.23x)\n",
        sum_mini / n as f64,
        sum_hi / n as f64,
        rows.iter().map(figures::OverallRow::higraph_speedup).fold(0.0, f64::max)
    );
}

fn fig9(rows: &[figures::OverallRow]) {
    println!("-- Fig. 9: throughput (GTEPS, ideal 32) --");
    println!(
        "{:<5} {:<4} {:>10} {:>13} {:>8}",
        "algo", "data", "GraphDynS", "HiGraph-mini", "HiGraph"
    );
    for r in rows {
        println!(
            "{:<5} {:<4} {:>10.1} {:>13.1} {:>8.1}",
            r.algo.label(),
            r.dataset.abbrev(),
            r.graphdyns.gteps(),
            r.higraph_mini.gteps(),
            r.higraph.gteps()
        );
    }
    let best = rows.iter().map(|r| r.higraph.gteps()).fold(0.0, f64::max);
    println!(
        "peak HiGraph: {best:.1} GTEPS = {:.1}% of ideal (paper: 25.0 / 78.1%)\n",
        100.0 * best / 32.0
    );
}

fn fig10a(rows: &[figures::AblationRow]) {
    println!("-- Fig. 10a: throughput under optimization steps (RMAT14) --");
    print_ablation(rows, |m| format!("{:6.1}", m.gteps()));
}

fn fig10b(rows: &[figures::AblationRow]) {
    println!("-- Fig. 10b: vPE starvation cycles (RMAT14, x10000) --");
    print_ablation(rows, |m| {
        format!("{:6.1}", m.vpe_starvation_cycles as f64 / 1e4)
    });
}

fn print_ablation(
    rows: &[figures::AblationRow],
    cell: impl Fn(&higraph::prelude::Metrics) -> String,
) {
    print!("{:<22}", "");
    for a in Algo::ALL {
        print!(" {:>7}", a.label());
    }
    println!();
    for opts in higraph::prelude::OptLevel::ALL {
        print!("{:<22}", opts.label());
        for a in Algo::ALL {
            let r = rows
                .iter()
                .find(|r| r.algo == a && r.opts == opts)
                .expect("complete sweep");
            print!(" {:>7}", cell(&r.metrics));
        }
        println!();
    }
    println!();
}

fn fig11(scale: Scale, out: &mut Report) {
    println!("-- Fig. 11: throughput vs #back-end channels (PR, RMAT14) --");
    let rows = figures::fig11(scale);
    println!("{:<10} {:>8} {:>8} {:>8} {:>8}", "", 32, 64, 128, 256);
    for design in ["GraphDynS", "HiGraph"] {
        print!("{design:<10}");
        for ch in [32usize, 64, 128, 256] {
            let r = rows
                .iter()
                .find(|r| r.design == design && r.channels == ch)
                .expect("complete sweep");
            match r.gteps {
                Some(g) => {
                    print!(" {g:>8.1}");
                    out.record(format!("fig11.{design}.ch{ch}.gteps"), g);
                }
                None => print!(" {:>8}", "n/a"),
            }
        }
        println!();
    }
    println!("(GraphDynS unsupported past 64 channels — Fig. 4 frequency wall)\n");
}

fn fig12(scale: Scale) {
    println!("-- Fig. 12: throughput vs per-channel buffer size (PR, RMAT14) --");
    let rows = figures::fig12(scale);
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "", 10, 20, 40, 80, 160, 240, 320
    );
    for design in ["FIFO+Crossbar", "MDP-network"] {
        print!("{design:<14}");
        for buf in [10usize, 20, 40, 80, 160, 240, 320] {
            let r = rows
                .iter()
                .find(|r| r.design == design && r.buffer == buf)
                .expect("complete sweep");
            print!(" {:>6.1}", r.gteps);
        }
        println!();
    }
    println!();
}

fn radix(scale: Scale) {
    println!("-- Sec. 5.4: MDP-network radix sweep (PR, RMAT14, 64 channels) --");
    for r in figures::radix_sweep(scale) {
        println!(
            "radix {:>2}: {:5.2} GHz  {:5.1} GTEPS  {}",
            r.radix,
            r.frequency_ghz,
            r.gteps,
            if r.radix == 2 {
                "<- paper's choice"
            } else {
                ""
            }
        );
    }
    println!();
}

fn areapower() {
    println!("-- Sec. 5.4: dataflow fabric area & power (TSMC 12nm model) --");
    for r in figures::area_power() {
        println!(
            "{:<14} buffer {:>3}/channel: {:5.3} mm2, {:6.1} mW",
            r.design, r.buffer, r.area_mm2, r.power_mw
        );
    }
    println!();
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64) as usize;
    "#".repeat(filled)
}
