//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p higraph-bench --bin repro -- all
//! cargo run --release -p higraph-bench --bin repro -- fig8 fig9 --full
//! cargo run --release -p higraph-bench --bin repro -- table1 shard --json
//! ```
//!
//! Targets: `table1 table2 fig4 fig5 fig7 fig8 fig9 fig10a fig10b fig11
//! fig12 radix areapower ablation batch shard shardfull mem simspeed
//! hostperf dse faults all`. Default scale divides Table 2 datasets by 4
//! (Figs. 5/10/11/12 and the radix sweep always run full-scale R14);
//! `--full` uses the paper's exact sizes everywhere. Every sweep
//! executes through the parallel batch runner, so wall time scales down
//! with core count.
//!
//! `shardfull` runs the six-algorithm sharded sweep (nightly);
//! `simspeed` measures the host-time speedup of the event-driven
//! fast-forward scheduler on the memory sweep and, under `--check`,
//! gates it against a generous 1.5x minimum (host time is noisy; the
//! real win is larger); `hostperf` records absolute simulated cycles
//! per host second on two fixed workloads (the P=4 `shardfull` suite
//! with intra-run chip parallelism, and the bandwidth-starved memory
//! sweep) — informational only, never gated, so future PRs have a
//! host-performance trajectory; `dse` runs the seeded Pareto-front
//! design-space exploration over the cost model (`docs/dse.md`) on its
//! own pinned fidelity schedule (ignores `--full`), sized by
//! `--dse-budget` and gated under `--check` by the anchor
//! `front_excess` threshold plus the budget-independent
//! `dse.anchor.*` baseline keys. A design point that stalls fails its
//! own row — printed as `STALL` and recorded as a `…stalled` metric —
//! without aborting the sweep; `faults` soaks the engines under seeded
//! fault plans (link stalls, DRAM brown-outs, chip pauses —
//! `docs/robustness.md`): faulty runs must complete with the same
//! results as clean ones at a cycle cost, rerun bit-identically,
//! park/restore mid-fault into the same final metrics, and an
//! overloaded run must surface a `StallDiagnostic` instead of hanging —
//! all gated under `--check`.
//!
//! Flags:
//!
//! * `--json` — additionally write the machine-readable metrics to
//!   `bench-report.json` for CI artifacts and offline comparison.
//!   Recording targets: `table1`, `fig4`, `fig8`/`fig9` (the shared
//!   sweep records both), `fig11`, `batch`, `shard`, `shardfull`,
//!   `mem`, `simspeed` — per-figure cycles, throughput, shard traffic,
//!   memory-hierarchy rates, and simulator host speed. The remaining
//!   targets print human-readable output only;
//! * `--check <baseline.json>` — compare this run against a flat
//!   `{"metric.key": number}` baseline and exit non-zero if any baseline
//!   metric is missing or deviates more than 10%. Baseline keys owned by
//!   targets that did not run this invocation are skipped, so partial
//!   runs gate only what they measured;
//! * `--full` — paper-exact dataset sizes;
//! * `--dse-budget <n>` — rung-0 cohort size for the `dse` target
//!   (default 48; the nightly leg uses 224).

#![forbid(unsafe_code)]

use higraph::prelude::{
    AcceleratorConfig, Bfs, Dataset, Engine, FaultPlan, Metrics, RunControl, ShardConfig,
};
use higraph_bench::dse::{DseOutcome, DseSettings, MAX_ANCHOR_FRONT_EXCESS};
use higraph_bench::report::{
    check_against_baseline, filter_baseline_to_targets, parse_flat_json, DEFAULT_TOLERANCE,
};
use higraph_bench::{figures, Algo, ControlledOutcome, Report, Scale};
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Path `--json` writes to, and the artifact name CI uploads.
const REPORT_PATH: &str = "bench-report.json";

/// Every runnable target, plus the `all` alias.
const KNOWN_TARGETS: [&str; 22] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "radix",
    "areapower",
    "ablation",
    "batch",
    "shard",
    "shardfull",
    "mem",
    "simspeed",
    "hostperf",
    "dse",
    "faults",
];

/// Minimum host-time speedup the fast-forward scheduler must deliver on
/// the memory sweep for the `simspeed --check` gate — deliberately
/// generous (the measured ratio is much larger) so host-load noise
/// cannot flake CI.
const MIN_SIMSPEED_RATIO: f64 = 1.5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut json = false;
    let mut check: Option<String> = None;
    let mut dse_budget: Option<usize> = None;
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--json" => json = true,
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(path) => check = Some(path.clone()),
                    None => {
                        eprintln!("--check needs a baseline path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dse-budget" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => dse_budget = Some(n),
                    _ => {
                        eprintln!("--dse-budget needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag} (known: --full --json --check <path> --dse-budget <n>)"
                );
                return ExitCode::FAILURE;
            }
            target => {
                let target = target.to_lowercase();
                if target != "all" && !KNOWN_TARGETS.contains(&target.as_str()) {
                    eprintln!(
                        "unknown target {target} (known: all {})",
                        KNOWN_TARGETS.join(" ")
                    );
                    return ExitCode::FAILURE;
                }
                targets.insert(target);
            }
        }
        i += 1;
    }
    let scale = if full { Scale::full() } else { Scale::quick() };
    if targets.is_empty() || targets.contains("all") {
        targets = KNOWN_TARGETS.into_iter().map(String::from).collect();
    }

    // Read and parse the baseline up front: a bad path or malformed file
    // must fail in milliseconds, not after the whole sweep has run.
    let baseline = match &check {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(text) => match parse_flat_json(&text) {
                Err(e) => {
                    eprintln!("malformed baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(map) => Some((path.clone(), map)),
            },
        },
    };

    println!(
        "== HiGraph reproduction harness (scale: ÷{}, PR iterations: {}) ==",
        scale.divisor, scale.pr_iters
    );
    println!("   (Figs. 5 and 10-12 + radix always use full-scale R14; see EXPERIMENTS.md)\n");

    let mut report = Report::new();
    if targets.contains("table1") {
        report.ran("table1");
        table1(&mut report);
    }
    if targets.contains("table2") {
        report.ran("table2");
        table2(scale);
    }
    if targets.contains("fig4") {
        report.ran("fig4");
        fig4(&mut report);
    }
    if targets.contains("fig5") {
        report.ran("fig5");
        fig5(scale);
    }
    if targets.contains("fig7") {
        report.ran("fig7");
        fig7();
    }
    // fig8 and fig9 share the expensive sweep
    if targets.contains("fig8") || targets.contains("fig9") {
        let rows = figures::overall(scale);
        record_overall(&mut report, &rows);
        if targets.contains("fig8") {
            report.ran("fig8");
            fig8(&rows);
        }
        if targets.contains("fig9") {
            report.ran("fig9");
            fig9(&rows);
        }
    }
    if targets.contains("fig10a") || targets.contains("fig10b") {
        let rows = figures::fig10(scale);
        if targets.contains("fig10a") {
            report.ran("fig10a");
            fig10a(&rows);
        }
        if targets.contains("fig10b") {
            report.ran("fig10b");
            fig10b(&rows);
        }
    }
    if targets.contains("fig11") {
        report.ran("fig11");
        fig11(scale, &mut report);
    }
    if targets.contains("fig12") {
        report.ran("fig12");
        fig12(scale);
    }
    if targets.contains("radix") {
        report.ran("radix");
        radix(scale);
    }
    if targets.contains("areapower") {
        report.ran("areapower");
        areapower();
    }
    if targets.contains("ablation") {
        report.ran("ablation");
        ablation(scale);
    }
    if targets.contains("batch") {
        report.ran("batch");
        batch(scale, &mut report);
    }
    if targets.contains("shard") {
        report.ran("shard");
        shard(scale, &mut report);
    }
    if targets.contains("shardfull") {
        report.ran("shardfull");
        shardfull(scale, &mut report);
    }
    if targets.contains("mem") {
        report.ran("mem");
        mem(scale, &mut report);
    }
    let mut simspeed_ratio = None;
    if targets.contains("simspeed") {
        report.ran("simspeed");
        simspeed_ratio = Some(simspeed(scale, &mut report));
    }
    if targets.contains("hostperf") {
        report.ran("hostperf");
        hostperf(scale, &mut report);
    }
    let mut dse_outcome = None;
    if targets.contains("dse") {
        report.ran("dse");
        dse_outcome = Some(dse(dse_budget, &mut report));
    }
    let mut faults_outcome = None;
    if targets.contains("faults") {
        report.ran("faults");
        faults_outcome = Some(faults(scale, &mut report));
    }

    if json {
        if let Err(e) = std::fs::write(REPORT_PATH, report.to_json()) {
            eprintln!("failed to write {REPORT_PATH}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} metrics to {REPORT_PATH}", report.metrics.len());
    }
    if let Some((baseline_path, baseline)) = baseline {
        // The simspeed gate is a fixed threshold, not a baseline value:
        // host-time ratios vary with machine load, so the baseline file
        // carries no simspeed entries and the gate only demands the
        // generous minimum.
        if let Some(ratio) = simspeed_ratio {
            if ratio < MIN_SIMSPEED_RATIO {
                eprintln!(
                    "perf gate FAILED: fast-forward host speedup {ratio:.2}x \
                     below the {MIN_SIMSPEED_RATIO:.1}x minimum"
                );
                return ExitCode::FAILURE;
            }
            println!(
                "perf gate: fast-forward host speedup {ratio:.2}x >= {MIN_SIMSPEED_RATIO:.1}x minimum"
            );
        }
        // The DSE anchor gate is likewise a fixed threshold: the front's
        // exact membership shifts with the candidate budget, so the gate
        // only demands that the paper's two synthesised designs are on or
        // near the Pareto front, however many candidates were explored.
        if let Some(outcome) = &dse_outcome {
            if outcome.front.is_empty() {
                eprintln!("dse gate FAILED: exploration produced an empty Pareto front");
                return ExitCode::FAILURE;
            }
            for anchor in &outcome.anchors {
                if anchor.front_excess > MAX_ANCHOR_FRONT_EXCESS {
                    eprintln!(
                        "dse gate FAILED: anchor {} has front excess {:.2}, \
                         above the {MAX_ANCHOR_FRONT_EXCESS:.1} maximum",
                        anchor.label, anchor.front_excess
                    );
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "dse gate: {} anchors within {MAX_ANCHOR_FRONT_EXCESS:.1}x of the {}-point front",
                outcome.anchors.len(),
                outcome.front.len()
            );
        }
        // The fault-injection gates are boolean invariants, not noisy
        // measurements: faulty runs must be reproducible, restorable
        // mid-fault, and must stall loudly under overload.
        if let Some(outcome) = &faults_outcome {
            if !outcome.deterministic {
                eprintln!("faults gate FAILED: a faulty run was not bit-reproducible");
                return ExitCode::FAILURE;
            }
            if !outcome.degraded_gracefully {
                eprintln!(
                    "faults gate FAILED: a faulty run finished faster than its clean \
                     reference or changed its results"
                );
                return ExitCode::FAILURE;
            }
            if !outcome.park_resume_identical {
                eprintln!(
                    "faults gate FAILED: a mid-fault checkpoint did not restore into \
                     the uninterrupted run's metrics"
                );
                return ExitCode::FAILURE;
            }
            if !outcome.overload_stalled {
                eprintln!(
                    "faults gate FAILED: an overloaded faulty run did not surface a \
                     StallDiagnostic"
                );
                return ExitCode::FAILURE;
            }
            println!(
                "faults gate: faulty runs deterministic, degradation graceful, \
                 mid-fault park/restore bit-identical, overload stalls loudly"
            );
        }
        let gated = filter_baseline_to_targets(&baseline, &report.targets, &KNOWN_TARGETS);
        let violations = check_against_baseline(&report.metrics, &gated, DEFAULT_TOLERANCE);
        if violations.is_empty() {
            println!(
                "perf gate: {} of {} baseline metrics gated (targets that ran) — all within {:.0}% of {baseline_path}",
                gated.len(),
                baseline.len(),
                DEFAULT_TOLERANCE * 100.0
            );
        } else {
            eprintln!("perf gate FAILED against {baseline_path}:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn batch(scale: Scale, out: &mut Report) {
    println!("-- Batch runner: parallel (program × config) sweep (PR, Slashdot) --");
    let (rows, report) = figures::batch_throughput(scale);
    for r in &rows {
        println!(
            "{:<18} {:5.1} GTEPS over {:>11} cycles{}",
            r.label,
            r.gteps,
            r.cycles,
            if r.sliced { "  (sliced)" } else { "" }
        );
        out.record(format!("batch.{}.cycles", r.label), r.cycles as f64);
        out.record(format!("batch.{}.gteps", r.label), r.gteps);
    }
    println!(
        "{} sims on {} workers: {:.2}s wall, {:.2} sims/s, {:.1}M simulated edges/s host-side,\n\
         aggregate modeled throughput {:.1} GTEPS\n",
        report.jobs,
        report.workers,
        report.wall_seconds,
        report.sims_per_second(),
        report.simulated_meps(),
        report.aggregate_gteps()
    );
}

/// Prints one sharded sweep row and records it under `prefix`; a stalled
/// cell prints its diagnostic and records a `…stalled` marker instead.
fn shard_row(r: &figures::ShardSweepRow, prefix: &str, out: &mut Report) {
    match &r.result {
        Ok(p) => {
            println!(
                "{:<6} {:>5} {:>12} {:>8.1} {:>12.3} {:>13} {:>14} {:>13.1}%",
                r.algo.label(),
                r.chips,
                p.cycles,
                p.gteps,
                p.cycles_per_edge,
                p.max_chip_scatter_cycles,
                p.cross_chip_packets,
                100.0 * p.cross_chip_packets as f64 / p.edges.max(1) as f64
            );
            out.record(format!("{prefix}.cycles"), p.cycles as f64);
            out.record(format!("{prefix}.gteps"), p.gteps);
            out.record(format!("{prefix}.cycles_per_edge"), p.cycles_per_edge);
            out.record(
                format!("{prefix}.cross_chip_packets"),
                p.cross_chip_packets as f64,
            );
            out.record(
                format!("{prefix}.max_chip_scatter_cycles"),
                p.max_chip_scatter_cycles as f64,
            );
        }
        Err(stall) => {
            println!("{:<6} {:>5} STALL: {stall}", r.algo.label(), r.chips);
            out.record(format!("{prefix}.stalled"), 1.0);
        }
    }
}

fn shard(scale: Scale, out: &mut Report) {
    println!("-- Multi-chip sharding: PR on the Twitter stand-in, P = 1/2/4/8 chips --");
    println!(
        "{:<6} {:>5} {:>12} {:>8} {:>12} {:>13} {:>14} {:>14}",
        "algo",
        "chips",
        "cycles",
        "GTEPS",
        "cycles/edge",
        "compute-max",
        "x-chip pkts",
        "pkts/edge"
    );
    for r in figures::shard_sweep(scale) {
        // legacy key shape (no algo segment): the smoke sweep is PR-only
        let prefix = format!("shard.p{}", r.chips);
        shard_row(&r, &prefix, out);
    }
    println!(
        "(P=1 is bit-identical to the serial engine; cross-chip packets are modeled\n\
         through the latency/bandwidth link fabric — see docs/sharding.md)\n"
    );
}

fn shardfull(scale: Scale, out: &mut Report) {
    println!("-- Multi-chip sharding, full workload suite: six algorithms, P = 1/4 chips --");
    println!(
        "{:<6} {:>5} {:>12} {:>8} {:>12} {:>13} {:>14} {:>14}",
        "algo",
        "chips",
        "cycles",
        "GTEPS",
        "cycles/edge",
        "compute-max",
        "x-chip pkts",
        "pkts/edge"
    );
    for r in figures::shard_sweep_full(scale) {
        let prefix = format!("shardfull.{}.p{}", r.algo.label(), r.chips);
        shard_row(&r, &prefix, out);
    }
    println!("(the nightly six-algorithm coverage of the sharded executor)\n");
}

fn simspeed(scale: Scale, out: &mut Report) -> f64 {
    println!("-- Simulator speed: event-driven fast-forward vs per-cycle ticking (mem sweep) --");
    let (rows, speedup) = figures::simspeed(scale);
    for r in &rows {
        println!(
            "{:<13} {:>8.2}s host, {:>11} simulated cycles, {:>12.0} cycles/s",
            r.mode, r.host_seconds, r.simulated_cycles, r.cycles_per_host_second
        );
        let p = format!("simspeed.{}", r.mode);
        out.record(format!("{p}.host_seconds"), r.host_seconds);
        out.record(
            format!("{p}.cycles_per_host_second"),
            r.cycles_per_host_second,
        );
        out.record(format!("{p}.simulated_cycles"), r.simulated_cycles as f64);
    }
    out.record("simspeed.speedup", speedup);
    println!(
        "fast-forward host speedup: {speedup:.2}x (cycle counts bit-identical; \
         see docs/simulation.md)\n"
    );
    speedup
}

fn hostperf(scale: Scale, out: &mut Report) {
    println!("-- Host performance: simulated cycles per host second (informational) --");
    let (rows, pool) = figures::hostperf(scale);
    for r in rows {
        println!(
            "{:<13} {:>8.2}s host, {:>13} simulated cycles, {:>12.0} cycles/s, {} worker(s), \
             {} wheel / {} poll window selections{}",
            r.name,
            r.host_seconds,
            r.simulated_cycles,
            r.cycles_per_host_second,
            r.workers,
            r.wheel_windows,
            r.poll_windows,
            if r.stalled > 0 {
                format!(", {} STALLED", r.stalled)
            } else {
                String::new()
            }
        );
        let p = format!("hostperf.{}", r.name);
        out.record(format!("{p}.host_seconds"), r.host_seconds);
        out.record(
            format!("{p}.cycles_per_host_second"),
            r.cycles_per_host_second,
        );
        out.record(format!("{p}.simulated_cycles"), r.simulated_cycles as f64);
        out.record(format!("{p}.workers"), r.workers as f64);
        out.record(format!("{p}.wheel_windows"), r.wheel_windows as f64);
        out.record(format!("{p}.poll_windows"), r.poll_windows as f64);
        if r.stalled > 0 {
            out.record(format!("{p}.stalled"), r.stalled as f64);
        }
    }
    println!(
        "pool          {} resident worker(s), {:.1}% occupancy; {} task(s) ({} stolen, \
         {} inline), {} lease(s) for {} worker(s) (+{} oversubscribed)",
        pool.workers,
        pool.occupancy * 100.0,
        pool.tasks_executed,
        pool.tasks_stolen,
        pool.tasks_inline,
        pool.lease_requests,
        pool.lease_workers_granted,
        pool.lease_workers_oversubscribed,
    );
    out.record("hostperf.pool.workers".to_string(), pool.workers as f64);
    out.record(
        "hostperf.pool.tasks_executed".to_string(),
        pool.tasks_executed as f64,
    );
    out.record(
        "hostperf.pool.tasks_stolen".to_string(),
        pool.tasks_stolen as f64,
    );
    out.record(
        "hostperf.pool.tasks_inline".to_string(),
        pool.tasks_inline as f64,
    );
    out.record(
        "hostperf.pool.lease_requests".to_string(),
        pool.lease_requests as f64,
    );
    out.record(
        "hostperf.pool.lease_workers_granted".to_string(),
        pool.lease_workers_granted as f64,
    );
    out.record(
        "hostperf.pool.lease_workers_oversubscribed".to_string(),
        pool.lease_workers_oversubscribed as f64,
    );
    out.record("hostperf.pool.occupancy".to_string(), pool.occupancy);
    println!(
        "(absolute host speed is machine-dependent — recorded for the trajectory,\n\
         never gated; cycle counts are deterministic. Wheel-vs-poll selection\n\
         counts show how fast-forward windows were found — see docs/simulation.md)\n"
    );
}

/// Pareto-front design-space exploration over the cost model
/// (`docs/dse.md`). Runs on its own pinned fidelity schedule — the
/// `--full` scale flag does not apply — so the anchor objective values
/// are budget- and scale-independent and can live in the baseline.
fn dse(budget: Option<usize>, out: &mut Report) -> DseOutcome {
    let mut settings = DseSettings::smoke();
    if let Some(budget) = budget {
        settings = settings.with_budget(budget);
    }
    println!(
        "-- Design-space exploration: time x area x energy Pareto front (PR) --\n\
         seed {}, rung-0 cohort {}, eta {}, {} refinement rounds, {} fidelity rungs",
        settings.seed,
        settings.budget,
        settings.eta,
        settings.refine_rounds,
        settings.rungs.len()
    );
    let outcome = higraph_bench::dse::explore(&settings);
    println!(
        "evaluated {} design points out of a {}-point lattice ({} memo hits)\n",
        outcome.points_evaluated, outcome.space_size, outcome.memo_hits
    );
    println!(
        "{:<52} {:>10} {:>11} {:>9} {:>11}",
        "front member", "cycles", "time (us)", "mm^2", "energy (mJ)"
    );
    for (i, row) in outcome.front.iter().enumerate() {
        let o = &row.objectives;
        println!(
            "{:<52} {:>10} {:>11.2} {:>9.3} {:>11.4}",
            row.name,
            o.cycles,
            o.time_ns / 1e3,
            o.area_mm2,
            o.energy_mj
        );
        let p = format!("dse.front.{i}");
        out.record(format!("{p}.cycles"), o.cycles as f64);
        out.record(format!("{p}.time_ns"), o.time_ns);
        out.record(format!("{p}.area_mm2"), o.area_mm2);
        out.record(format!("{p}.energy_mj"), o.energy_mj);
    }
    println!();
    for anchor in &outcome.anchors {
        let o = &anchor.objectives;
        println!(
            "anchor {:<20} {:>10} cycles, {:>8.2} us, {:>7.3} mm^2, {:>9.4} mJ — \
             front excess {:.2}{}",
            anchor.label,
            o.cycles,
            o.time_ns / 1e3,
            o.area_mm2,
            o.energy_mj,
            anchor.front_excess,
            if anchor.on_front() { " (on front)" } else { "" }
        );
        let p = format!("dse.anchor.{}", anchor.label);
        out.record(format!("{p}.cycles"), o.cycles as f64);
        out.record(format!("{p}.time_ns"), o.time_ns);
        out.record(format!("{p}.area_mm2"), o.area_mm2);
        out.record(format!("{p}.energy_mj"), o.energy_mj);
        out.record(format!("{p}.front_excess"), anchor.front_excess);
    }
    out.record("dse.front.size".to_string(), outcome.front.len() as f64);
    out.record(
        "dse.points_evaluated".to_string(),
        outcome.points_evaluated as f64,
    );
    out.record("dse.memo_hits".to_string(), outcome.memo_hits as f64);
    out.record(
        "dse.memo_evictions".to_string(),
        outcome.memo_evictions as f64,
    );
    println!(
        "(front membership and size vary with --dse-budget; only the anchor\n\
         objectives are baselined. Anchors must sit within {MAX_ANCHOR_FRONT_EXCESS:.1}x of the\n\
         front under --check — see docs/dse.md)\n"
    );
    outcome
}

fn mem(scale: Scale, out: &mut Report) {
    println!("-- Off-chip memory: cache-size sweep under the HBM2 model (PR, Twitter stand-in) --");
    println!(
        "{:>8} {:>12} {:>8} {:>10} {:>12} {:>10} {:>13}",
        "cache", "cycles", "GTEPS", "hit-rate", "misses", "row-hits", "stall-cycles"
    );
    for r in figures::mem_sweep(scale) {
        let p = format!("mem.c{}", r.cache_kb);
        match &r.result {
            Ok(m) => {
                println!(
                    "{:>5}KiB {:>12} {:>8.1} {:>9.1}% {:>12} {:>9.1}% {:>13}",
                    r.cache_kb,
                    m.cycles,
                    m.gteps,
                    100.0 * m.cache_hit_rate,
                    m.cache_misses,
                    100.0 * m.dram_row_hit_rate,
                    m.mem_stall_cycles
                );
                out.record(format!("{p}.cycles"), m.cycles as f64);
                out.record(format!("{p}.gteps"), m.gteps);
                out.record(format!("{p}.cache_hit_rate"), m.cache_hit_rate);
                out.record(format!("{p}.cache_misses"), m.cache_misses as f64);
                out.record(format!("{p}.dram_row_hit_rate"), m.dram_row_hit_rate);
                out.record(format!("{p}.mem_stall_cycles"), m.mem_stall_cycles as f64);
            }
            Err(stall) => {
                println!("{:>5}KiB STALL: {stall}", r.cache_kb);
                out.record(format!("{p}.stalled"), 1.0);
            }
        }
    }
    println!(
        "(default configs model no memory — this sweep enables MemoryConfig::hbm2();\n\
         hit rate rises and stall cycles fall monotonically with cache size —\n\
         see docs/memory.md for the timing contract)\n"
    );
}

/// Formats one sweep cell: the renderer for a successful run, a stall
/// marker otherwise (the diagnostic was already the cell's result).
fn cell<T>(r: &Result<T, higraph::prelude::StallDiagnostic>, f: impl Fn(&T) -> String) -> String {
    match r {
        Ok(v) => f(v),
        Err(_) => "STALL".to_string(),
    }
}

fn fig5(scale: Scale) {
    println!("-- Fig. 5 design theory: dataflow fabric candidates (PR, RMAT14) --");
    for r in figures::fig5_design_theory(scale) {
        println!(
            "{:<12} buf {:>3}/ch: {}",
            r.fabric,
            r.buffer,
            cell(&r.metrics, |m| format!(
                "{:5.1} GTEPS  rejected {:>9}  HoL-blocked {:>9}",
                m.gteps(),
                m.dataflow_net.rejected,
                m.dataflow_net.hol_blocked
            ))
        );
    }
    println!(
        "(the nW1R FIFO is an ideal output-queued switch at cycle level, but its\n\
         n-write-port mux is as centralized as a crossbar: at 128 channels it would\n\
         clock at {:.2} GHz vs the MDP-network's 1.00 GHz — Fig. 5c's real blocker —\n\
         and it rejects writes whenever fewer than n slots are free)\n",
        higraph::model::crossbar_frequency_ghz(128)
    );
}

fn ablation(scale: Scale) {
    println!("-- Ablation: dispatcher read ports (PR, Epinions; 2 = paper's 2W2R) --");
    for r in figures::dispatcher_ablation(scale) {
        println!(
            "{}R dispatcher: {}",
            r.read_ports,
            cell(&r.metrics, |m| format!(
                "{:5.1} GTEPS over {:>9} cycles",
                m.gteps(),
                m.cycles
            ))
        );
    }
    println!();
}

fn table1(out: &mut Report) {
    println!("-- Table 1: configurations --");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "", "Frequency", "#Front-end", "#Back-end", "On-chip memory"
    );
    for r in figures::table1() {
        println!(
            "{:<14} {:>7.0}GHz {:>12} {:>12} {:>12}MB",
            r.name, r.frequency_ghz, r.front_channels, r.back_channels, r.onchip_mb
        );
        let p = format!("table1.{}", r.name);
        out.record(format!("{p}.frequency_ghz"), r.frequency_ghz);
        out.record(format!("{p}.front_channels"), r.front_channels as f64);
        out.record(format!("{p}.back_channels"), r.back_channels as f64);
        out.record(format!("{p}.onchip_mb"), r.onchip_mb as f64);
    }
    println!();
}

fn table2(scale: Scale) {
    println!("-- Table 2: benchmark datasets (spec | built at this scale) --");
    println!(
        "{:<5} {:>11} {:>11} {:>5} | {:>11} {:>11} {:>7}",
        "Name", "#Vertices", "#Edges", "#Deg", "built V", "built E", "deg"
    );
    for r in figures::table2(scale) {
        println!(
            "{:<5} {:>11} {:>11} {:>5} | {:>11} {:>11} {:>7.1}",
            r.dataset.abbrev(),
            r.spec_vertices,
            r.spec_edges,
            r.spec_degree,
            r.built_vertices,
            r.built_edges,
            r.built_degree
        );
    }
    println!();
}

fn fig4(out: &mut Report) {
    println!("-- Fig. 4: crossbar frequency vs port count --");
    for (ports, ghz) in figures::fig4() {
        println!("{ports:>4} ports: {ghz:5.2} GHz  {}", bar(ghz / 2.5, 40));
        out.record(format!("fig4.ports{ports}.frequency_ghz"), ghz);
    }
    println!();
}

fn record_overall(out: &mut Report, rows: &[figures::OverallRow]) {
    for r in rows {
        let p = format!("fig9.{}.{}", r.algo.label(), r.dataset.abbrev());
        let mut design = |key: &str, m: &figures::CellResult, f: &dyn Fn(&Metrics) -> f64| match m {
            Ok(m) => out.record(format!("{p}.{key}"), f(m)),
            Err(_) => out.record(format!("{p}.{key}_stalled"), 1.0),
        };
        design("graphdyns_gteps", &r.graphdyns, &Metrics::gteps);
        design("higraph_mini_gteps", &r.higraph_mini, &Metrics::gteps);
        design("higraph_gteps", &r.higraph, &Metrics::gteps);
        design("higraph_cycles", &r.higraph, &|m| m.cycles as f64);
        if let Some(speedup) = r.higraph_speedup() {
            out.record(
                format!(
                    "fig8.{}.{}.higraph_speedup",
                    r.algo.label(),
                    r.dataset.abbrev()
                ),
                speedup,
            );
        }
    }
}

fn fig7() {
    println!("-- Fig. 7: on-chip memory layout (HiGraph, 16 MB class) --");
    let (layout, fits) = figures::fig7();
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!("Edge Array            {:5.1} MB", mb(layout.edge_bytes));
    println!(
        "Edge Info Array       {:5.1} MB",
        mb(layout.edge_info_bytes)
    );
    println!("Offset Array          {:5.1} MB", mb(layout.offset_bytes));
    println!("Property Array        {:5.1} MB", mb(layout.property_bytes));
    println!(
        "ActiveVertex + tProp  {:5.1} MB",
        mb(layout.active_tprop_bytes)
    );
    println!(
        "capacity: {} vertices, {} edges",
        layout.max_vertices(),
        layout.max_edges()
    );
    for (d, ok) in fits {
        println!(
            "  {d:<4} fits on chip: {}",
            if ok { "yes" } else { "NO (needs slicing)" }
        );
    }
    println!();
}

fn fig8(rows: &[figures::OverallRow]) {
    println!("-- Fig. 8: speedup over GraphDynS --");
    println!(
        "{:<6} {:<4} {:>14} {:>10}",
        "algo", "data", "HiGraph-mini", "HiGraph"
    );
    let fmt = |s: Option<f64>| match s {
        Some(s) => format!("{s:.2}x"),
        None => "STALL".to_string(),
    };
    let (mut sum_mini, mut sum_hi, mut n) = (0.0, 0.0, 0);
    for r in rows {
        println!(
            "{:<6} {:<4} {:>14} {:>10}",
            r.algo.label(),
            r.dataset.abbrev(),
            fmt(r.mini_speedup()),
            fmt(r.higraph_speedup())
        );
        if let (Some(mini), Some(hi)) = (r.mini_speedup(), r.higraph_speedup()) {
            sum_mini += mini;
            sum_hi += hi;
            n += 1;
        }
    }
    if n > 0 {
        println!(
            "avg: HiGraph-mini {:.2}x, HiGraph {:.2}x (paper, 4-algo suite: 1.46x / 1.54x; \
             max {:.2}x, paper 2.23x)\n",
            sum_mini / n as f64,
            sum_hi / n as f64,
            rows.iter()
                .filter_map(figures::OverallRow::higraph_speedup)
                .fold(0.0, f64::max)
        );
    }
}

fn fig9(rows: &[figures::OverallRow]) {
    println!("-- Fig. 9: throughput (GTEPS, ideal 32) --");
    println!(
        "{:<6} {:<4} {:>10} {:>13} {:>8}",
        "algo", "data", "GraphDynS", "HiGraph-mini", "HiGraph"
    );
    let gteps = |m: &figures::CellResult| cell(m, |m| format!("{:.1}", m.gteps()));
    for r in rows {
        println!(
            "{:<6} {:<4} {:>10} {:>13} {:>8}",
            r.algo.label(),
            r.dataset.abbrev(),
            gteps(&r.graphdyns),
            gteps(&r.higraph_mini),
            gteps(&r.higraph)
        );
    }
    let best = rows
        .iter()
        .filter_map(|r| r.higraph.as_ref().ok().map(Metrics::gteps))
        .fold(0.0, f64::max);
    println!(
        "peak HiGraph: {best:.1} GTEPS = {:.1}% of ideal (paper: 25.0 / 78.1%)\n",
        100.0 * best / 32.0
    );
}

fn fig10a(rows: &[figures::AblationRow]) {
    println!("-- Fig. 10a: throughput under optimization steps (RMAT14) --");
    print_ablation(rows, |m| format!("{:6.1}", m.gteps()));
}

fn fig10b(rows: &[figures::AblationRow]) {
    println!("-- Fig. 10b: vPE starvation cycles (RMAT14, x10000) --");
    print_ablation(rows, |m| {
        format!("{:6.1}", m.vpe_starvation_cycles as f64 / 1e4)
    });
}

fn print_ablation(rows: &[figures::AblationRow], value: impl Fn(&Metrics) -> String) {
    print!("{:<22}", "");
    for a in Algo::ALL {
        print!(" {:>7}", a.label());
    }
    println!();
    for opts in higraph::prelude::OptLevel::ALL {
        print!("{:<22}", opts.label());
        for a in Algo::ALL {
            let r = rows
                .iter()
                .find(|r| r.algo == a && r.opts == opts)
                .expect("complete sweep");
            print!(" {:>7}", cell(&r.metrics, &value));
        }
        println!();
    }
    println!();
}

fn fig11(scale: Scale, out: &mut Report) {
    println!("-- Fig. 11: throughput vs #back-end channels (PR, RMAT14) --");
    let rows = figures::fig11(scale);
    println!("{:<10} {:>8} {:>8} {:>8} {:>8}", "", 32, 64, 128, 256);
    for design in ["GraphDynS", "HiGraph"] {
        print!("{design:<10}");
        for ch in [32usize, 64, 128, 256] {
            let r = rows
                .iter()
                .find(|r| r.design == design && r.channels == ch)
                .expect("complete sweep");
            match &r.result {
                Some(Ok(m)) => {
                    print!(" {:>8.1}", m.gteps());
                    out.record(format!("fig11.{design}.ch{ch}.gteps"), m.gteps());
                }
                Some(Err(_)) => {
                    print!(" {:>8}", "STALL");
                    out.record(format!("fig11.{design}.ch{ch}.stalled"), 1.0);
                }
                None => print!(" {:>8}", "n/a"),
            }
        }
        println!();
    }
    println!("(GraphDynS unsupported past 64 channels — Fig. 4 frequency wall)\n");
}

fn fig12(scale: Scale) {
    println!("-- Fig. 12: throughput vs per-channel buffer size (PR, RMAT14) --");
    let rows = figures::fig12(scale);
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "", 10, 20, 40, 80, 160, 240, 320
    );
    for design in ["FIFO+Crossbar", "MDP-network"] {
        print!("{design:<14}");
        for buf in [10usize, 20, 40, 80, 160, 240, 320] {
            let r = rows
                .iter()
                .find(|r| r.design == design && r.buffer == buf)
                .expect("complete sweep");
            print!(" {:>6}", cell(&r.gteps, |g| format!("{g:.1}")));
        }
        println!();
    }
    println!();
}

fn radix(scale: Scale) {
    println!("-- Sec. 5.4: MDP-network radix sweep (PR, RMAT14, 64 channels) --");
    for r in figures::radix_sweep(scale) {
        println!(
            "radix {:>2}: {:5.2} GHz  {} GTEPS  {}",
            r.radix,
            r.frequency_ghz,
            cell(&r.gteps, |g| format!("{g:5.1}")),
            if r.radix == 2 {
                "<- paper's choice"
            } else {
                ""
            }
        );
    }
    println!();
}

fn areapower() {
    println!("-- Sec. 5.4: dataflow fabric area & power (TSMC 12nm model) --");
    for r in figures::area_power() {
        println!(
            "{:<14} buffer {:>3}/channel: {:5.3} mm2, {:6.1} mW",
            r.design, r.buffer, r.area_mm2, r.power_mw
        );
    }
    println!();
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64) as usize;
    "#".repeat(filled)
}

/// Boolean gate inputs from the `faults` soak (`--check` enforces them).
struct FaultsOutcome {
    /// Every faulty run reproduced bit-identically on a second run.
    deterministic: bool,
    /// Faults cost cycles but never changed results or convergence.
    degraded_gracefully: bool,
    /// A mid-fault checkpoint restored into the uninterrupted metrics.
    park_resume_identical: bool,
    /// A pathologically overloaded run stalled loudly instead of hanging.
    overload_stalled: bool,
}

fn faults(scale: Scale, out: &mut Report) -> FaultsOutcome {
    println!("-- Fault injection: seeded link stalls, DRAM brown-outs, chip pauses --");
    let plan = FaultPlan {
        seed: 0xD15EA5E,
        events: 6,
        max_duration: 96,
        horizon: 4096,
    };
    let clean_cfg = AcceleratorConfig::higraph();
    let mut faulty_cfg = AcceleratorConfig::higraph();
    faulty_cfg.fault_plan = Some(plan);
    let graph = Dataset::Vote.build_scaled(scale.divisor);
    out.record("faults.plan.events".to_string(), f64::from(plan.events));

    println!(
        "{:<6} {:>5} {:>12} {:>13} {:>9} {:>13} {:>9}",
        "algo", "chips", "clean cyc", "faulty cyc", "overhead", "park@cyc", "restore"
    );
    let mut deterministic = true;
    let mut degraded_gracefully = true;
    let mut park_resume_identical = true;
    for (algo, chips) in [(Algo::Bfs, 1), (Algo::Wcc, 2), (Algo::Pr, 4)] {
        let shard = ShardConfig::new(chips);
        let clean = algo
            .run_sharded(&clean_cfg, shard, &graph, scale.pr_iters)
            .expect("clean reference run");
        let faulty = algo
            .run_sharded(&faulty_cfg, shard, &graph, scale.pr_iters)
            .expect("faulty run must complete (graceful degradation)");
        let again = algo
            .run_sharded(&faulty_cfg, shard, &graph, scale.pr_iters)
            .expect("faulty rerun");
        deterministic &= faulty.metrics == again.metrics;
        degraded_gracefully &= faulty.metrics.cycles >= clean.metrics.cycles
            && faulty.metrics.edges_processed == clean.metrics.edges_processed
            && faulty.metrics.iterations == clean.metrics.iterations;

        // Park under fault, restore, and demand the uninterrupted result.
        let control = RunControl::new();
        control.set_budget_cycles(Some((faulty.metrics.cycles / 2).max(1)));
        let partial = algo
            .run_sharded_controlled(&faulty_cfg, shard, &graph, scale.pr_iters, &control, None)
            .expect("controlled faulty run");
        let (park_cycles, restored) = match partial {
            ControlledOutcome::Parked(ck) => {
                let resume = RunControl::new();
                match algo
                    .run_sharded_controlled(
                        &faulty_cfg,
                        shard,
                        &graph,
                        scale.pr_iters,
                        &resume,
                        Some(&ck.bytes),
                    )
                    .expect("resume from mid-fault checkpoint")
                {
                    ControlledOutcome::Done(resumed) => {
                        (ck.cycles, resumed.metrics == faulty.metrics)
                    }
                    _ => (ck.cycles, false),
                }
            }
            // A half-budget that fails to park means the budget plumbing
            // broke; fail the gate rather than skip it.
            _ => (0, false),
        };
        park_resume_identical &= restored;

        let overhead = faulty.metrics.cycles as f64 / clean.metrics.cycles.max(1) as f64;
        println!(
            "{:<6} {:>5} {:>12} {:>13} {:>8.2}x {:>13} {:>9}",
            algo.label(),
            chips,
            clean.metrics.cycles,
            faulty.metrics.cycles,
            overhead,
            park_cycles,
            if restored { "exact" } else { "MISMATCH" }
        );
        let p = format!("faults.{}.p{}", algo.label(), chips);
        out.record(format!("{p}.clean_cycles"), clean.metrics.cycles as f64);
        out.record(format!("{p}.faulty_cycles"), faulty.metrics.cycles as f64);
    }

    // Overload: a one-cycle stall guard under the same fault plan must
    // produce a StallDiagnostic, never a hang or a panic.
    let mut engine = Engine::new(faulty_cfg, &graph);
    engine.set_stall_guard(Some(1));
    let overload_stalled = engine.run(&Bfs::from_source(0)).is_err();
    out.record(
        "faults.overload.stalled".to_string(),
        f64::from(u8::from(overload_stalled)),
    );
    println!(
        "overload: stall guard 1 under faults -> {}\n\
         (fault windows are drawn from the plan's seeded splitmix64 stream; faulty\n\
         runs disable fast-forward and drain serially — see docs/robustness.md)\n",
        if overload_stalled {
            "StallDiagnostic (graceful)"
        } else {
            "NO DIAGNOSTIC"
        }
    );
    FaultsOutcome {
        deterministic,
        degraded_gracefully,
        park_resume_identical,
        overload_stalled,
    }
}
