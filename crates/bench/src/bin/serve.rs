//! `higraph-serve` — a resident simulation job service.
//!
//! Reads one flat-JSON operation per stdin line, writes one flat-JSON
//! event per stdout line (see `docs/serve.md` for the protocol and
//! `higraph_bench::serve` for the semantics). EOF flushes the pending
//! queue and exits cleanly, so the service works equally well
//! interactively and as the sink of a here-doc in CI:
//!
//! ```text
//! cargo run --release -p higraph-bench --bin higraph-serve <<'EOF'
//! {"op": "submit", "id": "a", "algo": "wcc", "divisor": 16}
//! {"op": "run"}
//! {"op": "shutdown"}
//! EOF
//! ```

use higraph_bench::ServeSession;
use std::io::{BufRead, Write};

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut session = ServeSession::new();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        for event in session.handle_line(&line) {
            if writeln!(out, "{event}").is_err() {
                return; // reader hung up
            }
        }
        let _ = out.flush();
        if session.shutdown_requested() {
            return;
        }
    }
    // EOF without an explicit shutdown: flush whatever is still queued.
    for event in session.flush() {
        if writeln!(out, "{event}").is_err() {
            return;
        }
    }
    let _ = out.flush();
}
