//! `higraph-serve` — a resident simulation job service.
//!
//! Reads one flat-JSON operation per stdin line, writes one flat-JSON
//! event per stdout line (see `docs/serve.md` for the protocol and
//! `higraph_bench::serve` for the semantics). EOF flushes the pending
//! queue and exits cleanly, so the service works equally well
//! interactively and as the sink of a here-doc in CI:
//!
//! ```text
//! cargo run --release -p higraph-bench --bin higraph-serve <<'EOF'
//! {"op": "submit", "id": "a", "algo": "wcc", "divisor": 16}
//! {"op": "run"}
//! {"op": "shutdown"}
//! EOF
//! ```
//!
//! # Survivability plumbing (`docs/robustness.md`)
//!
//! Three threads cooperate so a wedged or runaway job cannot take the
//! service down with it:
//!
//! * the **session thread** (main) owns the [`ServeSession`] and
//!   executes jobs;
//! * a **reader thread** owns stdin. A `cancel` for a job that is
//!   still registered (queued or running) is acknowledged with a
//!   `cancelling` event and served immediately through the shared
//!   `RunControl` registry — a *running* job observes it at its next
//!   poll boundary even though the session thread is busy executing
//!   it — while every other line is forwarded in order;
//! * a **watchdog thread** tracks the running job's `budget_ms`
//!   wall-clock deadline: past the deadline it requests a park (the job
//!   checkpoints and can be resumed); past ~10× the deadline it
//!   escalates to a cooperative cancel.
//!
//! `--journal <path>` enables the crash journal: on startup the session
//! recovers accepted-but-unfinished jobs from a previous run (reporting
//! each with a `recovered` event) and re-queues them, resuming from
//! parked checkpoints where they exist. The `halt` op exits without
//! draining the queue, simulating a crash for the recovery tests.
//!
//! Each event line takes the stdout lock only for its own write, so the
//! reader thread's acknowledgements interleave with session output at
//! line granularity instead of deadlocking against a held lock.

use higraph_bench::serve::JobEvent;
use higraph_bench::ServeSession;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
// lint:allow(determinism): the watchdog enforces host wall-clock deadlines; its timing never feeds simulated state
use std::time::{Duration, Instant};

/// What the watchdog is currently supervising.
struct RunningJob {
    // lint:allow(determinism): host wall-clock deadline bookkeeping; never feeds simulated state
    started: Instant,
    budget_ms: u64,
    control: Arc<higraph::prelude::RunControl>,
}

/// Writes one event line, taking the stdout lock for just this line.
/// Returns false when the reader hung up.
fn emit(line: &str) -> bool {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
}

fn main() {
    let mut journal: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => match args.next() {
                Some(p) => journal = Some(p),
                None => {
                    eprintln!("--journal requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other} (usage: higraph-serve [--journal <path>])");
                std::process::exit(2);
            }
        }
    }

    let (mut session, recovered) = match journal {
        Some(path) => ServeSession::with_journal(path),
        None => (ServeSession::new(), Vec::new()),
    };
    for event in recovered {
        if !emit(&event) {
            return;
        }
    }

    let controls = session.controls();
    let running: Arc<Mutex<Option<RunningJob>>> = Arc::new(Mutex::new(None));
    let done = Arc::new(AtomicBool::new(false));

    // Watchdog bookkeeping: the session tells us when a job with a
    // wall-clock budget starts and stops.
    {
        let running = Arc::clone(&running);
        session.set_observer(Box::new(move |event| {
            let mut slot = running.lock().unwrap_or_else(|e| e.into_inner());
            match event {
                JobEvent::Started {
                    budget_ms: Some(ms),
                    control,
                    ..
                } if ms > 0 => {
                    *slot = Some(RunningJob {
                        // lint:allow(determinism): host wall-clock deadline bookkeeping; never feeds simulated state
                        started: Instant::now(),
                        budget_ms: ms,
                        control: Arc::clone(control),
                    });
                }
                _ => *slot = None,
            }
        }));
    }

    // Watchdog thread: park a job past its deadline, cancel a job that
    // ignores the park for ~10× the deadline.
    let watchdog = {
        let running = Arc::clone(&running);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(2));
                let slot = running.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(job) = slot.as_ref() {
                    // Host wall-clock deadline check; never feeds simulated state.
                    let elapsed = job.started.elapsed().as_millis() as u64;
                    if elapsed > job.budget_ms.saturating_mul(10) {
                        job.control.request_cancel();
                    } else if elapsed > job.budget_ms {
                        job.control.request_park();
                    }
                }
            }
        })
    };

    // Reader thread: cancels for registered (queued/running) jobs are
    // acknowledged and served through the registry without waiting for
    // the session thread; everything else is forwarded in order.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if let Some(id) = cancel_target(&line) {
                let registered = {
                    let map = controls.lock().unwrap_or_else(|e| e.into_inner());
                    map.get(&id).map(Arc::clone)
                };
                if let Some(control) = registered {
                    control.request_cancel();
                    // The run (or its dequeue) emits the cancelled line.
                    let mut ack = String::from("{\"event\": \"cancelling\", \"id\": ");
                    higraph_bench::report::write_json_string(&mut ack, &id);
                    ack.push('}');
                    if !emit(&ack) {
                        break;
                    }
                    continue;
                }
            }
            if tx.send(line).is_err() {
                break;
            }
        }
        // Dropping tx signals EOF to the session thread.
    });

    for line in rx {
        for event in session.handle_line(&line) {
            if !emit(&event) {
                done.store(true, Ordering::Release);
                let _ = watchdog.join();
                return; // reader hung up
            }
        }
        if session.halt_requested() {
            // Crash simulation: exit without draining the queue or
            // joining anything — the journal keeps the lost work.
            return;
        }
        if session.shutdown_requested() {
            done.store(true, Ordering::Release);
            let _ = watchdog.join();
            return;
        }
    }
    // EOF without an explicit shutdown: flush whatever is still queued.
    for event in session.flush() {
        if !emit(&event) {
            break;
        }
    }
    done.store(true, Ordering::Release);
    let _ = watchdog.join();
}

/// Parses a line just far enough to spot `{"op": "cancel", "id": …}`;
/// anything else (including malformed JSON) defers to the session.
fn cancel_target(line: &str) -> Option<String> {
    let fields = higraph_bench::report::parse_flat_json_values(line).ok()?;
    let op = fields.get("op")?.as_str()?;
    if op != "cancel" {
        return None;
    }
    Some(fields.get("id")?.as_str()?.to_string())
}
