//! Workload plumbing shared by all figure harnesses.

use higraph::prelude::*;

/// The four evaluated algorithms (Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-First Search.
    Bfs,
    /// Single-Source Shortest Path.
    Sssp,
    /// Single-Source Widest Path.
    Sswp,
    /// PageRank.
    Pr,
}

impl Algo {
    /// Figure order used throughout the paper.
    pub const ALL: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Sswp, Algo::Pr];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Bfs => "BFS",
            Algo::Sssp => "SSSP",
            Algo::Sswp => "SSWP",
            Algo::Pr => "PR",
        }
    }

    /// Runs this algorithm on `graph` under `config` and returns metrics.
    ///
    /// Traversal sources follow Graph500 practice: the deterministic hub
    /// vertex, guaranteed to lie in the reachable core. PageRank runs
    /// `pr_iters` power iterations.
    pub fn run(self, config: &AcceleratorConfig, graph: &Csr, pr_iters: u32) -> Metrics {
        let source = higraph::graph::stats::hub_vertex(graph)
            .map(|v| v.0)
            .unwrap_or(0);
        let mut engine = Engine::new(config.clone(), graph);
        match self {
            Algo::Bfs => {
                engine
                    .run(&Bfs::from_source(source))
                    .expect("no stall")
                    .metrics
            }
            Algo::Sssp => {
                engine
                    .run(&Sssp::from_source(source))
                    .expect("no stall")
                    .metrics
            }
            Algo::Sswp => {
                engine
                    .run(&Sswp::from_source(source))
                    .expect("no stall")
                    .metrics
            }
            Algo::Pr => {
                engine
                    .run(&PageRank::new(pr_iters))
                    .expect("no stall")
                    .metrics
            }
        }
    }
}

/// Dataset scaling for quick vs full runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Power-of-two divisor applied to Table 2 sizes (1 = full scale).
    pub divisor: u32,
    /// PageRank power iterations.
    pub pr_iters: u32,
}

impl Scale {
    /// Laptop-friendly default: datasets ÷4, 5 PR iterations.
    pub fn quick() -> Self {
        Scale {
            divisor: 4,
            pr_iters: 5,
        }
    }

    /// Full Table 2 sizes, 10 PR iterations.
    pub fn full() -> Self {
        Scale {
            divisor: 1,
            pr_iters: 10,
        }
    }

    /// Even smaller than `quick`, for CI tests and Criterion benches.
    pub fn tiny() -> Self {
        Scale {
            divisor: 16,
            pr_iters: 3,
        }
    }

    /// Builds `dataset` at this scale.
    pub fn build(&self, dataset: Dataset) -> Csr {
        dataset.build_scaled(self.divisor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_labels() {
        let labels: Vec<_> = Algo::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, ["BFS", "SSSP", "SSWP", "PR"]);
    }

    #[test]
    fn runs_produce_metrics() {
        let s = Scale::tiny();
        let g = s.build(Dataset::Vote);
        let m = Algo::Bfs.run(&AcceleratorConfig::higraph(), &g, s.pr_iters);
        assert!(m.cycles > 0);
        assert!(m.edges_processed > 0);
    }
}
